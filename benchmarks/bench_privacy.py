"""Experiment E7 — Theorem 10: privacy under collusion, measured.

Mounts the share-pooling reconstruction attack with every coalition size
and verifies the measured exposure thresholds: a bid ``y`` (degree
``tau = sigma - y``) falls to exactly ``tau + 1`` colluders, so coalitions
of size <= c + 1 expose nothing and lower bids survive longer.
"""

import random

from _report import run_once, write_report

from repro.analysis import render_table, run_collusion_experiment
from repro.core import DMWParameters
from repro.scheduling import workloads

N, M, C = 6, 2, 1


def run_attacks():
    parameters = DMWParameters.generate(N, fault_bound=C)
    problem = workloads.random_discrete(N, M, parameters.bid_values,
                                        random.Random(9))
    sweeps = {}
    for size in range(1, N):
        sweeps[size] = run_collusion_experiment(problem, parameters,
                                                coalition=list(range(size)))
    return parameters, sweeps


def test_privacy(benchmark):
    parameters, sweeps = run_once(benchmark, run_attacks)

    rows = []
    for size, results in sorted(sweeps.items()):
        exposed = [r for r in results if r.exposed]
        # The measured threshold equals the theory exactly:
        for result in results:
            assert result.exposed == (size >= result.required_colluders), \
                result
        # All exposures recover the true bid.
        assert all(r.inferred_bid == r.true_bid for r in exposed)
        rows.append([size, len(exposed), len(results),
                     "%.0f%%" % (100 * len(exposed) / len(results))])

    # Coalitions within the threshold expose nothing.
    assert rows[0][1] == 0
    assert sweeps[C + 1] and all(not r.exposed for r in sweeps[C + 1])
    # Larger coalitions expose weakly more (as a fraction).
    fractions = [row[1] / row[2] for row in rows]
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    threshold_rows = [
        [bid, parameters.degree_for_bid(bid),
         parameters.degree_for_bid(bid) + 1]
        for bid in parameters.bid_values
    ]

    report = ("Theorem 10 as an experiment (n=%d, c=%d): collusion attack\n"
              % (N, C))
    report += render_table(
        ["coalition size", "bids exposed", "bids attacked", "exposure"],
        rows)
    report += "\n\nper-bid exposure thresholds (inverse in the bid):\n"
    report += render_table(
        ["bid y", "degree tau = sigma - y", "colluders needed"],
        threshold_rows)
    write_report("privacy", report)
