"""Extension experiments beyond the paper's tables.

1. **Open Problem 11 threshold** (`repro.analysis.resilience`): the exact
   number of deviators each minimum-bid level tolerates, measured against
   the closed-form prediction ``n - (sigma - y_min + 1)``.
2. **The faithfulness boundary** (`repro.analysis.cartel`): a measured
   profitable *group* deviation (price-inflation cartel), delimiting what
   the ex post Nash guarantee does not cover.
3. **Latency**: wall-clock completion time of DMW vs the centralized
   mechanism under a uniform link-latency model — the round-count
   constant (4m + 1 vs 2) behind Theorem 11's message asymptotics.
"""

import random

from _report import run_once, write_report

from repro.analysis import render_table
from repro.analysis.cartel import best_cartel_gain
from repro.analysis.resilience import resilience_sweep
from repro.core import DMWParameters
from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.network.latency import LatencyModel, estimate_protocol_latency
from repro.network.simulator import SynchronousNetwork
from repro.scheduling.problem import SchedulingProblem


def run_all():
    parameters = DMWParameters.generate(6, fault_bound=1)
    resilience = resilience_sweep(parameters)

    cartel_instance = SchedulingProblem([
        [1, 1], [2, 2], [4, 4], [4, 4], [4, 4], [4, 4],
    ])
    cartel = best_cartel_gain(cartel_instance, parameters)

    # Latency: DMW (recorded) vs centralized, same link model.
    problem = SchedulingProblem([
        [2, 1], [1, 3], [3, 2], [2, 2], [3, 3], [2, 3],
    ])
    master = random.Random(0)
    agents = [
        DMWAgent(i, parameters,
                 [int(problem.time(i, j)) for j in range(2)],
                 rng=random.Random(master.getrandbits(64)))
        for i in range(6)
    ]
    protocol = DMWProtocol(parameters, agents, record_deliveries=True)
    outcome = protocol.execute(2)
    assert outcome.completed
    model = LatencyModel(random.Random(1), base=0.010, jitter=0.005)
    dmw_timeline = estimate_protocol_latency(protocol.network, model)

    central = SynchronousNetwork(6, extra_participants=1,
                                 record_deliveries=True)
    for agent in range(6):
        for task in range(2):
            central.send(agent, 6, "bid", None)
    central.deliver()
    for agent in range(6):
        central.send(6, agent, "outcome", None)
    central.deliver()
    central_timeline = estimate_protocol_latency(central, model)
    return parameters, resilience, cartel, dmw_timeline, central_timeline


def test_extensions(benchmark):
    (parameters, resilience, cartel, dmw_timeline,
     central_timeline) = run_once(benchmark, run_all)

    # Open Problem 11: measured == predicted everywhere.
    assert all(row.matches for row in resilience)
    resilience_rows = [[row.minimum_bid, row.aggregate_degree,
                        row.predicted_threshold, row.measured_threshold,
                        row.matches] for row in resilience]

    # The cartel profits (the documented boundary of Theorem 5).
    assert cartel is not None and cartel.joint_gain > 0

    # Latency: ratio is the round-count ratio (9 rounds for m=2 vs 2).
    ratio = dmw_timeline.total_seconds / central_timeline.total_seconds
    assert 2.0 < ratio < 9.0

    report = ("Open Problem 11: deviation-tolerance thresholds "
              "(n=%d, withholding aggregates)\n" % parameters.num_agents)
    report += render_table(
        ["min bid", "deg E", "predicted max deviators",
         "measured max deviators", "match"], resilience_rows)
    report += ("\n\nFaithfulness boundary: best price-inflation cartel "
               "%s gains %+.0f jointly (unilateral gain remains <= 0)"
               % (cartel.members, cartel.joint_gain))
    report += ("\n\nLatency (10-15ms links): DMW %.3fs over %d rounds vs "
               "centralized %.3fs over 2 rounds (ratio %.2f)"
               % (dmw_timeline.total_seconds,
                  len(dmw_timeline.round_durations),
                  central_timeline.total_seconds, ratio))
    write_report("extensions", report)
