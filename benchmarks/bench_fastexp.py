"""Per-primitive and end-to-end speedups of the execution fast paths.

Measures each :mod:`repro.crypto.fastexp` primitive against the naive
implementation it replaces (at the ``small`` fixture sizes the protocol
actually uses), plus a full DMW run with the fast paths on versus
:func:`repro.crypto.fastexp.naive_mode`.  The outcome and every agent's
operation-counter snapshot must be identical between the two runs — the
fast paths change wall-clock only (see ``docs/PERFORMANCE.md``).
"""

import random
import time

from _report import obs_summary, run_once, write_json_record, write_report

from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.crypto import fastexp
from repro.crypto.groups import fixture_group
from repro.crypto.modular import mod_inv
from repro.scheduling import workloads


def _best_of(fn, repeats, rounds=3):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            result = fn()
        elapsed = (time.perf_counter() - start) / repeats
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def measure_primitives():
    parameters = fixture_group("small")
    group = parameters.group
    rng = random.Random(2024)
    rows = []

    # Fixed-base exponentiation: z1^e via the windowed table vs pow().
    exponents = [rng.randrange(1, group.q) for _ in range(64)]
    table = fastexp.fixed_base_table(parameters.z1, group.p,
                                     group.q.bit_length())
    naive_t, naive_v = _best_of(
        lambda: [pow(parameters.z1, e, group.p) for e in exponents], 20)
    fast_t, fast_v = _best_of(
        lambda: [table.pow(e) for e in exponents], 20)
    assert naive_v == fast_v
    rows.append(("fixed_base_pow", naive_t / 64, fast_t / 64))

    # Straus multi-exponentiation vs a per-term pow() product.
    bases = [rng.randrange(2, group.p) for _ in range(13)]
    exps = [rng.randrange(1, group.q) for _ in range(13)]

    def naive_product():
        result = 1
        for base, exponent in zip(bases, exps):
            result = (result * pow(base, exponent, group.p)) % group.p
        return result

    naive_t, naive_v = _best_of(naive_product, 200)
    fast_t, fast_v = _best_of(
        lambda: fastexp.multi_exp(bases, exps, group.p), 200)
    assert naive_v == fast_v
    rows.append(("multi_exp_13_terms", naive_t, fast_t))

    # Straus with precomputed digit tables (the cached-evaluation path).
    tables = fastexp.straus_tables(bases, group.p, window=5)
    fast_t, fast_v = _best_of(
        lambda: fastexp.multi_exp_with_tables(tables, exps, group.p,
                                              window=5), 200)
    assert naive_v == fast_v
    rows.append(("multi_exp_cached_tables", naive_t, fast_t))

    # Montgomery batch inversion vs per-element inversion.
    values = [rng.randrange(1, group.q) for _ in range(24)]
    naive_t, naive_v = _best_of(
        lambda: [mod_inv(value, group.q) for value in values], 200)
    fast_t, fast_v = _best_of(
        lambda: fastexp.batch_mod_inv(values, group.q), 200)
    assert naive_v == fast_v
    rows.append(("batch_mod_inv_24", naive_t, fast_t))
    return rows


def measure_protocol():
    parameters = DMWParameters.generate(8, fault_bound=1, group_size="small")
    problem = workloads.random_discrete(8, 2, parameters.bid_values,
                                        random.Random(0))

    def run():
        return run_dmw(problem, parameters=parameters, rng=random.Random(1))

    fast_t, fast_outcome = _best_of(run, 1, rounds=3)
    with fastexp.naive_mode():
        naive_t, naive_outcome = _best_of(run, 1, rounds=3)
    assert fast_outcome.completed and naive_outcome.completed
    assert (fast_outcome.schedule.assignment
            == naive_outcome.schedule.assignment)
    assert fast_outcome.payments == naive_outcome.payments
    assert fast_outcome.agent_operations == naive_outcome.agent_operations
    return ("dmw_run_n8_m2", naive_t, fast_t), fast_outcome


def test_fastexp_speedups(benchmark):
    rows = run_once(benchmark, measure_primitives)
    protocol_row, protocol_outcome = measure_protocol()
    rows.append(protocol_row)
    obs_by_name = {protocol_row[0]: obs_summary(protocol_outcome)}

    lines = ["Execution fast paths: naive vs fast wall-clock", ""]
    lines.append("%-26s %12s %12s %9s" % ("primitive", "naive (us)",
                                          "fast (us)", "speedup"))
    for name, naive_t, fast_t in rows:
        speedup = naive_t / fast_t
        lines.append("%-26s %12.2f %12.2f %8.2fx"
                     % (name, naive_t * 1e6, fast_t * 1e6, speedup))
        write_json_record(
            "fastexp", {"primitive": name},
            wall_clock_s=round(fast_t, 9),
            counters={"naive_wall_clock_s": round(naive_t, 9),
                      "speedup": round(speedup, 3)},
            obs=obs_by_name.get(name),
        )
        # Every primitive must at least not lose to the naive path; the
        # end-to-end run must show a real win.
        assert speedup > 0.9, (name, speedup)
    end_to_end = dict((row[0], row[1] / row[2]) for row in rows)
    assert end_to_end["dmw_run_n8_m2"] > 1.5

    write_report("fastexp", "\n".join(lines))
