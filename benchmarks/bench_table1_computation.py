"""Experiment E2 — Table 1, computation column.

Paper claim: MinWork computes in ``Theta(mn)`` elementary operations; each
DMW agent computes ``O(mn^2 log p)`` modular multiplications (Theorem 12).
This bench measures *counted* operations (not wall clock): comparisons for
MinWork, modular multiplication work (with exponentiations costed by
square-and-multiply) for DMW, over sweeps of ``n``, ``m``, and the group
size ``log p``.
"""

from _report import run_once, write_json_record, write_report

from repro.analysis import (
    fit_loglog_slope,
    measure_dmw,
    measure_minwork,
    render_table,
    sweep_agents,
    sweep_group_size,
    sweep_tasks,
)

AGENTS = (4, 6, 8, 10, 12)
TASKS = (1, 2, 4, 6, 8)
GROUP_SIZES = ("tiny", "small", "medium")


def measure_all():
    return {
        "minwork_n": sweep_agents(AGENTS, num_tasks=2,
                                  measure=measure_minwork),
        "dmw_n": sweep_agents(AGENTS, num_tasks=2, measure=measure_dmw),
        "minwork_m": sweep_tasks(TASKS, num_agents=6,
                                 measure=measure_minwork),
        "dmw_m": sweep_tasks(TASKS, num_agents=6, measure=measure_dmw),
        "dmw_p": sweep_group_size(GROUP_SIZES, num_agents=6, num_tasks=2),
    }


def test_table1_computation(benchmark):
    data = run_once(benchmark, measure_all)

    rows = []
    checks = [
        ("minwork_n", "n", lambda s: s.num_agents, 1.0, 0.2),
        # DMW per-agent work is O(n^2 log p); with the default bid set W
        # growing with n there are O(n log n)-ish subterms, so allow slack
        # above 2 but require clearly-below-cubic.
        ("dmw_n", "n", lambda s: s.num_agents, 2.0, 0.5),
        ("minwork_m", "m", lambda s: s.num_tasks, 1.0, 0.2),
        ("dmw_m", "m", lambda s: s.num_tasks, 1.0, 0.2),
    ]
    for key, variable, axis, predicted, tolerance in checks:
        samples = data[key]
        slope = fit_loglog_slope([axis(s) for s in samples],
                                 [s.computation for s in samples])
        rows.append([key.replace("_", " sweep "), variable, predicted,
                     slope, abs(slope - predicted) <= tolerance])
        assert abs(slope - predicted) <= tolerance, (key, slope)

    # The log p factor: computation grows with |p|, messages do not.
    p_rows = []
    for sample in data["dmw_p"]:
        p_rows.append([sample.p_bits, sample.messages, sample.computation])
    message_counts = {row[1] for row in p_rows}
    assert len(message_counts) == 1, "messages must not depend on log p"
    work = [row[2] for row in p_rows]
    assert work == sorted(work), "computation must grow with log p"
    # Affine in log p (a log-p-free term exists), hence sub-linear slope
    # but super-constant growth; the bound O(mn^2 log p) is respected.
    growth = work[-1] / work[0]
    bits_growth = p_rows[-1][0] / p_rows[0][0]
    assert 1.2 < growth <= bits_growth + 0.2

    # Machine-readable counted totals: these are *analytic-schedule*
    # counts, so they must be bit-identical across implementations of the
    # execution layer (the fast paths never change them — the regression
    # gate checks exact equality, not a tolerance).
    for key in ("dmw_n", "dmw_m"):
        for sample in data[key]:
            write_json_record(
                "table1_computation",
                {"sweep": key, "n": sample.num_agents,
                 "m": sample.num_tasks, "p_bits": sample.p_bits},
                counters={"computation": sample.computation,
                          "messages": sample.messages},
            )
    for sample in data["dmw_p"]:
        write_json_record(
            "table1_computation",
            {"sweep": "dmw_p", "n": sample.num_agents,
             "m": sample.num_tasks, "p_bits": sample.p_bits},
            counters={"computation": sample.computation,
                      "messages": sample.messages},
        )

    report = "Table 1 (computation): measured scaling exponents\n"
    report += render_table(
        ["sweep", "variable", "predicted exp", "measured exp", "ok"], rows)
    report += "\n\nThe log p factor (DMW, n=6, m=2):\n"
    report += render_table(["|p| bits", "messages", "mod-mult work"], p_rows)
    report += ("\nwork grew %.2fx while |p| grew %.2fx; messages constant "
               "(affine-in-log-p, consistent with O(mn^2 log p))"
               % (growth, bits_growth))
    write_report("table1_computation", report)
