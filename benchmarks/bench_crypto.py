"""Microbenchmarks of the cryptographic primitives DMW is built on.

Wall-clock benchmarks (pytest-benchmark statistics are meaningful here):
modular exponentiation, Horner share evaluation, Lagrange interpolation,
plaintext and exponent-space degree resolution, commitment generation and
share verification.  These are the constants behind Theorem 12.
"""

import random

import pytest

from repro.core import DMWParameters, encode_bid
from repro.core.verification import verify_share_bundle
from repro.crypto import (
    PedersenCommitter,
    Polynomial,
    interpolate_at_zero,
    resolve_degree,
    resolve_degree_in_exponent,
)
from repro.crypto.groups import fixture_group

PARAMS = fixture_group("small")
GROUP = PARAMS.group
RNG = random.Random(7)
POINTS = list(range(1, 13))


def test_modular_exponentiation(benchmark):
    base = PARAMS.z1
    exponent = RNG.randrange(GROUP.q)
    benchmark(lambda: GROUP.exp(base, exponent))


def test_polynomial_evaluation(benchmark):
    poly = Polynomial.random(10, GROUP.q, RNG)
    benchmark(lambda: poly.evaluate(7))


def test_lagrange_interpolation(benchmark):
    poly = Polynomial.random(8, GROUP.q, RNG)
    values = [poly.evaluate(x) for x in POINTS[:9]]
    benchmark(lambda: interpolate_at_zero(POINTS[:9], values, GROUP.q))


def test_degree_resolution_plaintext(benchmark):
    poly = Polynomial.random(8, GROUP.q, RNG)
    values = [poly.evaluate(x) for x in POINTS]
    result = benchmark(lambda: resolve_degree(POINTS, values, GROUP.q))
    assert result == 8


@pytest.mark.parametrize("incremental", [True, False],
                         ids=["incremental", "naive"])
def test_degree_resolution_exponent(benchmark, incremental):
    """Ablation: incremental weight updates vs recomputation per candidate
    (the difference between O(n^2) and O(n^3) weight work)."""
    poly = Polynomial.random(8, GROUP.q, RNG)
    values = [GROUP.exp(PARAMS.z1, poly.evaluate(x)) for x in POINTS]
    result = benchmark(lambda: resolve_degree_in_exponent(
        GROUP, POINTS, values, incremental=incremental))
    assert result == 8


def test_pedersen_commitment(benchmark):
    committer = PedersenCommitter(PARAMS)
    value, blinding = RNG.randrange(GROUP.q), RNG.randrange(GROUP.q)
    benchmark(lambda: committer.commit(value, blinding))


def test_bid_encoding(benchmark):
    """Full step II.1: four polynomials + three commitment vectors."""
    parameters = DMWParameters.generate(8, fault_bound=1,
                                        group_parameters=PARAMS)
    benchmark(lambda: encode_bid(parameters, 3, RNG))


def test_share_bundle_verification(benchmark):
    """Full step III.1 check for one received bundle (eqs. (7)-(9))."""
    parameters = DMWParameters.generate(8, fault_bound=1,
                                        group_parameters=PARAMS)
    package = encode_bid(parameters, 3, RNG)
    alpha = parameters.pseudonyms[2]
    bundle = package.share_bundle_for(alpha)
    result = benchmark(lambda: verify_share_bundle(
        parameters, package.commitments, alpha, bundle))
    assert result
