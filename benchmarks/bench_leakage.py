"""Extension experiment — quantifying the Theorem 10 remark.

The remark after Theorem 10 says the transcript's disclosure (winner,
first price, second price) is intrinsic, and that repeated executions of
the same job set are where residual risk lives.  This bench measures both
halves exactly (Bayesian enumeration over the bid set):

* per-loser information leak of a single transcript, across transcripts
  with low/medium/high second prices;
* leakage across repeated executions with fresh protocol randomness —
  provably flat (identical transcripts).
"""

import random

from _report import run_once, write_report

from repro.analysis import leakage_report, render_table
from repro.analysis.leakage import repeated_execution_leakage
from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.scheduling.problem import SchedulingProblem


def run_measurements():
    parameters = DMWParameters.generate(5, fault_bound=1)
    instances = {
        "low second price": SchedulingProblem(
            [[1], [1], [2], [3], [2]]),
        "mid second price": SchedulingProblem(
            [[1], [2], [3], [2], [3]]),
        "high second price": SchedulingProblem(
            [[3], [3], [3], [3], [3]]),
    }
    singles = {}
    for name, problem in instances.items():
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(1))
        assert outcome.completed
        singles[name] = (outcome.transcripts[0],
                         leakage_report(parameters, outcome.transcripts[0]))
    repeated = repeated_execution_leakage(instances["mid second price"],
                                          parameters, repetitions=4)
    return parameters, singles, repeated


def test_leakage(benchmark):
    parameters, singles, repeated = run_once(benchmark, run_measurements)

    rows = []
    for name, (transcript, report) in singles.items():
        rows.append([name, transcript.first_price, transcript.second_price,
                     report.prior_bits, report.max_leak,
                     report.total_leak])
    # Higher second prices pin losers harder.
    leaks = {name: report.max_leak
             for name, (_, report) in singles.items()}
    assert leaks["high second price"] >= leaks["mid second price"] >= \
        leaks["low second price"] - 1e-9
    # With y** = w_k, every loser is fully exposed by the transcript alone
    # (not a protocol flaw: with the highest possible second price the bid
    # vector is forced).
    assert leaks["high second price"] == \
        singles["high second price"][1].prior_bits

    # Repetition leaks nothing new.
    first = repeated[0]
    for report in repeated[1:]:
        assert report.leaked_bits == first.leaked_bits

    report_text = ("Transcript leakage (Theorem 10 remark), n=5, W=%s\n"
                   % (list(parameters.bid_values),))
    report_text += render_table(
        ["transcript", "y*", "y**", "prior bits/loser", "max leak",
         "total leak"], rows)
    report_text += ("\n\nrepeated executions (same jobs, fresh randomness, "
                    "4 runs): per-loser leak identical across runs — "
                    "re-randomization reveals nothing new")
    write_report("leakage", report_text)
