"""Experiment E8 — MinWork is an n-approximation of the makespan optimum.

Measures the makespan ratio of MinWork's allocation against the exact
branch-and-bound optimum on random workload families (mild ratios) and on
the adversarial family (ratio -> n, showing the bound is tight).
"""

from _report import run_once, write_report

from repro.analysis import (
    adversarial_ratios,
    random_workload_ratios,
    render_table,
)


def run_measurements():
    random_samples = random_workload_ratios(num_agents=4, num_tasks=5,
                                            trials=6, seed=2)
    adversarial_samples = adversarial_ratios((2, 3, 4, 5, 6))
    return random_samples, adversarial_samples


def test_approximation(benchmark):
    random_samples, adversarial_samples = run_once(benchmark,
                                                   run_measurements)

    by_family = {}
    for sample in random_samples:
        assert 1.0 - 1e-9 <= sample.ratio <= sample.num_agents + 1e-9
        family = by_family.setdefault(sample.workload, [])
        family.append(sample.ratio)

    rows = []
    for family in sorted(by_family):
        ratios = by_family[family]
        rows.append([family, len(ratios), min(ratios),
                     sum(ratios) / len(ratios), max(ratios)])

    adversarial_rows = []
    for sample in adversarial_samples:
        assert abs(sample.ratio - sample.num_agents) < 1e-2
        adversarial_rows.append([sample.num_agents, sample.minwork_makespan,
                                 sample.optimal_makespan, sample.ratio])

    report = "MinWork vs exact optimum: makespan ratios (n=4, m=5)\n"
    report += render_table(
        ["workload family", "instances", "min ratio", "mean ratio",
         "max ratio"], rows)
    report += "\n\nAdversarial family: the n-approximation bound is tight\n"
    report += render_table(
        ["n", "MinWork makespan", "optimal makespan", "ratio (-> n)"],
        adversarial_rows)
    write_report("approximation", report)
