"""Experiment E4 — Theorem 2: MinWork is truthful (and DMW inherits it).

Exhaustive unilateral-deviation search over discrete bid grids for the
centralized mechanism, plus the exhaustive misreport sweep through the
*distributed* mechanism; reports grid sizes and the (empty) violation
counts.
"""

import random

from _report import run_once, write_report

from repro.analysis import check_dmw_truthfulness_exhaustive, render_table
from repro.core import DMWParameters
from repro.mechanisms import (
    MinWork,
    check_truthfulness_exhaustive,
    check_truthfulness_sampled,
    check_voluntary_participation,
)
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem


def run_checks():
    rng = random.Random(1)
    results = []

    # Exhaustive centralized checks on small discrete instances.
    for trial in range(4):
        problem = workloads.random_discrete(3, 2, [1, 2, 3], rng)
        violation = check_truthfulness_exhaustive(MinWork(), problem,
                                                  bid_values=[1, 2, 3])
        results.append(("centralized exhaustive #%d" % trial,
                        3 ** 2 * 3, violation is None))

    # Sampled checks on continuous instances.
    for trial in range(3):
        problem = workloads.uniform_random(5, 3, rng)
        violation = check_truthfulness_sampled(MinWork(), problem, rng,
                                               samples=200)
        results.append(("centralized sampled #%d" % trial, 200,
                        violation is None))
        participation = check_voluntary_participation(MinWork(), problem)
        results.append(("voluntary participation #%d" % trial, 1,
                        participation is None))

    # The distributed mechanism: every alternative bid vector, end to end.
    parameters = DMWParameters.generate(4, fault_bound=1)
    problem = SchedulingProblem([[2, 1], [1, 2], [2, 2], [1, 1]])
    for agent in range(2):
        violations = check_dmw_truthfulness_exhaustive(problem, parameters,
                                                       agent)
        results.append(("DMW exhaustive, agent %d" % agent,
                        len(parameters.bid_values) ** 2 - 1,
                        not violations))
    return results


def test_truthfulness(benchmark):
    results = run_once(benchmark, run_checks)
    rows = [[name, deviations, passed]
            for name, deviations, passed in results]
    assert all(passed for _, _, passed in results)
    report = "Theorem 2 (truthfulness) as an experiment\n"
    report += render_table(["check", "deviations tried", "truthful"], rows)
    write_report("truthfulness", report)
