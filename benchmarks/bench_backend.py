"""Arithmetic-backend and batched-verification benchmarks.

Measures the reference DMW execution (n=12, m=2, small group) under each
available arithmetic backend (``repro.crypto.backend``) and under both
share-verification modes (per-share eqs. (7)-(9) vs the random-linear-
combination batch), and writes ``benchmarks/results/BENCH_backend.json``
records carrying:

* the best-of-three wall-clock per configuration,
* an ``equivalent`` verdict — outcomes, transcripts, and per-agent
  operation counters must be *bit-identical* to the python/per-share
  reference (the counted-vs-measured contract of
  ``docs/PERFORMANCE.md``), and
* the speedup ratio over that reference, plus a ``gmpy2_available``
  flag so the regression gate (``check_regression.py --only backend``)
  knows whether the >= 3x gmpy2 speedup gate applies at all.

gmpy2 is optional (``pip install .[fast]``): without it the bench still
records the python-backend and share-verification rows, and the gate
degrades to equivalence-only.

Runnable as a script::

    python benchmarks/bench_backend.py [--smoke]

``--smoke`` shrinks the instance and round count so CI can verify the
equivalence contract quickly; smoke speedups are informational only.
"""

import random

import pytest

from _report import best_wall_clock, obs_summary, write_json_record

from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.crypto import fastexp, gmpy2_available, using_backend
from repro.scheduling import workloads


def _summed_operations(outcome):
    totals = {}
    for snapshot in outcome.agent_operations:
        for key, value in snapshot.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _outcome_signature(outcome):
    """The fields the equivalence verdict pins down bit-for-bit.

    Cache hit/miss statistics are deliberately *excluded*: the batched
    verifier skips the per-share evaluation caches by design
    (``docs/PERFORMANCE.md``), so only outcomes, transcripts, and the
    per-agent operation counters are required to match.
    """
    return (
        outcome.completed,
        list(outcome.schedule.assignment),
        list(outcome.payments),
        [(t.task, t.first_price, t.winner, t.second_price)
         for t in outcome.transcripts],
        outcome.agent_operations,
        outcome.network_metrics.as_dict(),
    )


def reference_runner(n, m, share_verification_mode="per-share"):
    """An honest reference execution at (n, m) returning the outcome."""
    parameters = DMWParameters.generate(
        n, fault_bound=1, group_size="small",
        share_verification_mode=share_verification_mode)
    problem = workloads.random_discrete(n, m, parameters.bid_values,
                                        random.Random(0))

    def run():
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(1))
        assert outcome.completed
        return outcome

    return run


def _timed(run, backend, rounds):
    """best_wall_clock under ``backend`` with cold fixed-base tables.

    The process-wide ``fixed_base_table`` lru_cache is cleared before the
    warmup run so each backend builds (and then amortises) its *own*
    native tables — otherwise the second backend measured would inherit
    tables wrapped by the first and the comparison would be unfair.
    """
    fastexp.fixed_base_table.cache_clear()
    with using_backend(backend, strict=True):
        return best_wall_clock(run, rounds=rounds, warmup=1)


def measure_backends(n=12, m=2, rounds=3, smoke=False):
    """python vs gmpy2 on the reference run; returns the record extras."""
    if smoke:
        n, m, rounds = 6, 2, 1
    run = reference_runner(n, m)
    available = gmpy2_available()
    py_best, py_outcome = _timed(run, "python", rounds)
    py_signature = _outcome_signature(py_outcome)
    records = []
    measured = [("python", py_best, py_outcome, True)]
    if available:
        g_best, g_outcome = _timed(run, "gmpy2", rounds)
        fastexp.fixed_base_table.cache_clear()  # drop mpz tables
        measured.append(("gmpy2", g_best, g_outcome,
                         _outcome_signature(g_outcome) == py_signature))
    for backend, best, outcome, equivalent in measured:
        speedup = py_best / best if best else 0.0
        extra = {
            "gmpy2_available": available,
            "equivalent": equivalent,
            "speedup": round(speedup, 4),
            "reference_wall_clock_s": round(py_best, 6),
            "smoke": smoke,
        }
        write_json_record(
            "backend", {"sweep": "backend", "backend": backend,
                        "n": n, "m": m},
            wall_clock_s=round(best, 6),
            counters=_summed_operations(outcome),
            obs=obs_summary(outcome),
            extra=extra,
        )
        records.append(extra)
        print("backend[%s, n=%d, m=%d]: %.4fs (%.2fx vs python), "
              "equivalent=%s" % (backend, n, m, best, speedup, equivalent))
    if not available:
        print("backend[gmpy2]: not importable; python-only record written "
              "(equivalence gate still applies, speedup gate does not)")
    return records


def measure_share_verification(n=12, m=2, rounds=3, smoke=False):
    """per-share vs batched verification; returns the record extras."""
    if smoke:
        n, m, rounds = 6, 2, 1
    per_best, per_outcome = best_wall_clock(
        reference_runner(n, m, "per-share"), rounds=rounds, warmup=1)
    per_signature = _outcome_signature(per_outcome)
    records = []
    measured = [("per-share", per_best, per_outcome, True)]
    bat_best, bat_outcome = best_wall_clock(
        reference_runner(n, m, "batched"), rounds=rounds, warmup=1)
    measured.append(("batched", bat_best, bat_outcome,
                     _outcome_signature(bat_outcome) == per_signature))
    for mode, best, outcome, equivalent in measured:
        speedup = per_best / best if best else 0.0
        extra = {
            "equivalent": equivalent,
            "speedup": round(speedup, 4),
            "reference_wall_clock_s": round(per_best, 6),
            "smoke": smoke,
        }
        write_json_record(
            "backend", {"sweep": "share_verification", "mode": mode,
                        "n": n, "m": m},
            wall_clock_s=round(best, 6),
            counters=_summed_operations(outcome),
            obs=obs_summary(outcome),
            extra=extra,
        )
        records.append(extra)
        print("share_verification[%s, n=%d, m=%d]: %.4fs (%.2fx vs "
              "per-share), equivalent=%s"
              % (mode, n, m, best, speedup, equivalent))
    return records


# -- pytest-benchmark view ---------------------------------------------------

def test_backend_python(benchmark):
    benchmark.pedantic(reference_runner(8, 2), rounds=1, iterations=1)


@pytest.mark.skipif(not gmpy2_available(), reason="gmpy2 not installed")
def test_backend_gmpy2(benchmark):
    run = reference_runner(8, 2)
    with using_backend("gmpy2", strict=True):
        benchmark.pedantic(run, rounds=1, iterations=1)
    fastexp.fixed_base_table.cache_clear()


@pytest.mark.parametrize("mode", ["per-share", "batched"])
def test_share_verification_modes(benchmark, mode):
    benchmark.pedantic(reference_runner(8, 2, mode), rounds=1, iterations=1)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        description="Measure arithmetic-backend and batched-verification "
                    "speedups and write BENCH_backend.json for the "
                    "regression gate.")
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, single round: verifies the "
                             "equivalence contract without gating speedup")
    args = parser.parse_args(argv)
    measure_backends(smoke=args.smoke)
    measure_share_verification(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
