"""Experiments E5/E6 — Theorems 5 and 9: faithfulness and strong
voluntary participation, measured.

Runs the full deviation-strategy matrix (every family from the Theorem 4
proof, each tried by several agents on several instances) and reports the
utility gains — all must be <= 0 — and the minimum honest-bystander
utility — all must be >= 0.
"""

import random

from _report import run_once, write_report

from repro.analysis import (
    faithfulness_violations,
    participation_violations,
    render_table,
    run_deviation_matrix,
)
from repro.core import DMWParameters, standard_deviations
from repro.scheduling import workloads


def run_matrix():
    parameters = DMWParameters.generate(5, fault_bound=1)
    rng = random.Random(3)
    all_outcomes = []
    for instance in range(3):
        problem = workloads.random_discrete(5, 2, parameters.bid_values, rng)
        all_outcomes.extend(run_deviation_matrix(
            problem, parameters, deviant_indices=[0, 2, 4],
            seed=instance,
        ))
    return all_outcomes


def test_faithfulness(benchmark):
    outcomes = run_once(benchmark, run_matrix)

    assert faithfulness_violations(outcomes) == []
    assert participation_violations(outcomes) == []

    by_strategy = {}
    for outcome in outcomes:
        record = by_strategy.setdefault(outcome.strategy, {
            "runs": 0, "max_gain": float("-inf"), "completed": 0,
            "min_bystander": float("inf"),
        })
        record["runs"] += 1
        record["max_gain"] = max(record["max_gain"], outcome.gain)
        record["completed"] += 1 if outcome.completed else 0
        record["min_bystander"] = min(record["min_bystander"],
                                      outcome.min_honest_utility)

    rows = []
    for strategy in sorted(standard_deviations()):
        record = by_strategy[strategy]
        rows.append([strategy, record["runs"], record["max_gain"],
                     "%d/%d" % (record["completed"], record["runs"]),
                     record["min_bystander"]])

    report = ("Theorems 5 & 9 as experiments: %d deviation runs, "
              "0 profitable, 0 bystander losses\n" % len(outcomes))
    report += render_table(
        ["deviation strategy", "runs", "max utility gain",
         "runs completed", "min bystander utility"], rows)
    write_report("faithfulness", report)
