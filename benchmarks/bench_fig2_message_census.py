"""Experiment E3 — the Fig. 2 message sequence, as a measured census.

Fig. 2 shows the sequence of messages one DMW auction exchanges: private
share bundles, published commitments, published (Lambda, Psi), disclosed
f-share rows, published second-price values, and payment claims.  This
bench runs an honest 5-agent, 2-task execution and reports the per-kind
message counts next to the counts the protocol specification predicts.
"""

import random

from _report import run_once, write_report

from repro.analysis import render_table
from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.scheduling import workloads

N, M, C = 5, 2, 1


def run_protocol():
    parameters = DMWParameters.generate(N, fault_bound=C)
    problem = workloads.random_discrete(N, M, parameters.bid_values,
                                        random.Random(5))
    outcome = run_dmw(problem, parameters=parameters, rng=random.Random(6))
    assert outcome.completed
    return parameters, problem, outcome


def predicted_counts(parameters, outcome):
    """The specification's expected per-kind counts for an honest run."""
    n, m = N, M
    fan_out = n  # n - 1 agents + the payment-infrastructure endpoint
    disclosure_fan_out = sum(
        parameters.disclosure_width(t.first_price)
        for t in outcome.transcripts
    )
    # winner_claim counts vary with how many agents tie on the first
    # price, so they are reported but not predicted exactly.
    return {
        "share_bundle": m * n * (n - 1),
        "commitments": m * n * fan_out,
        "lambda_psi": m * n * fan_out,
        "f_disclosure": disclosure_fan_out * fan_out,
        "second_price": m * n * fan_out,
        "payment_claim": n,
    }


def test_fig2_message_census(benchmark):
    parameters, problem, outcome = run_once(benchmark, run_protocol)
    measured = dict(outcome.network_metrics.by_kind)
    predicted = predicted_counts(parameters, outcome)

    rows = []
    order = ["share_bundle", "commitments", "lambda_psi", "f_disclosure",
             "winner_claim", "second_price", "payment_claim"]
    for kind in order:
        expected = predicted.get(kind)
        rows.append([kind, measured.get(kind, 0),
                     expected if expected is not None else "(varies)",
                     expected is None or measured.get(kind, 0) == expected])
        if expected is not None:
            assert measured.get(kind, 0) == expected, kind

    # Winner claims: between 1 (the winner) and n claimants per task, each
    # claim expanding to n unicasts.
    claims = measured.get("winner_claim", 0)
    assert M * N <= claims <= M * N * N

    report = ("Fig. 2 message census (n=%d, m=%d, c=%d, honest run)\n"
              % (N, M, C))
    report += render_table(
        ["message kind (Fig. 2 order)", "measured", "predicted", "ok"], rows)
    report += ("\n\ntotals: %d point-to-point messages, %d field elements, "
               "%d synchronous rounds"
               % (outcome.network_metrics.point_to_point_messages,
                  outcome.network_metrics.field_elements,
                  outcome.network_metrics.rounds))
    write_report("fig2_message_census", report)
