"""Experiment E1 — Table 1, communication column.

Paper claim: MinWork communicates ``Theta(mn)`` point-to-point messages;
DMW communicates ``Theta(mn^2)`` (Theorem 11).  This bench measures actual
message counts over sweeps of ``n`` and ``m`` and fits log-log scaling
exponents.  The reproduction target is the *shape*: exponents ~(1, 1) for
MinWork and ~(2, 1) for DMW, and a DMW/MinWork ratio growing linearly
in ``n``.
"""

from _report import run_once, write_report

from repro.analysis import (
    fit_loglog_slope,
    measure_dmw,
    measure_minwork,
    render_table,
    sweep_agents,
    sweep_tasks,
)

AGENTS = (4, 6, 8, 10, 12)
TASKS = (1, 2, 4, 6, 8)


def measure_all():
    return {
        "minwork_n": sweep_agents(AGENTS, num_tasks=2,
                                  measure=measure_minwork),
        "dmw_n": sweep_agents(AGENTS, num_tasks=2, measure=measure_dmw),
        "minwork_m": sweep_tasks(TASKS, num_agents=6,
                                 measure=measure_minwork),
        "dmw_m": sweep_tasks(TASKS, num_agents=6, measure=measure_dmw),
    }


def test_table1_communication(benchmark):
    data = run_once(benchmark, measure_all)

    rows = []
    checks = [
        ("minwork_n", "n", lambda s: s.num_agents, 1.0, 0.45),
        ("dmw_n", "n", lambda s: s.num_agents, 2.0, 0.45),
        # MinWork's m-sweep has an affine +n outcome-broadcast term, so the
        # measured exponent undershoots 1 at small m; wide tolerance.
        ("minwork_m", "m", lambda s: s.num_tasks, 1.0, 0.45),
        ("dmw_m", "m", lambda s: s.num_tasks, 1.0, 0.2),
    ]
    for key, variable, axis, predicted, tolerance in checks:
        samples = data[key]
        slope = fit_loglog_slope([axis(s) for s in samples],
                                 [s.messages for s in samples])
        rows.append([key.replace("_", " sweep "), variable, predicted,
                     slope, abs(slope - predicted) <= tolerance])
        assert abs(slope - predicted) <= tolerance, (key, slope)

    # The factor-n gap between the mechanisms (Table 1's headline).
    gap_rows = []
    for mw, dmw in zip(data["minwork_n"], data["dmw_n"]):
        gap_rows.append([mw.num_agents, mw.messages, dmw.messages,
                         dmw.messages / mw.messages])
    ratios = [row[3] for row in gap_rows]
    assert ratios == sorted(ratios), "DMW/MinWork ratio must grow with n"

    report = "Table 1 (communication): measured scaling exponents\n"
    report += render_table(
        ["sweep", "variable", "predicted exp", "measured exp", "ok"], rows)
    report += "\n\nDMW / MinWork message ratio (m=2):\n"
    report += render_table(["n", "MinWork msgs", "DMW msgs", "ratio"],
                           gap_rows)
    write_report("table1_communication", report)
