"""Open Problem 10 — what DMW buys over naive distribution, measured.

The paper argues (discussion of Open Problem 10) that MinWork "can be
simply distributed among obedient nodes", and that DMW's contribution is
tolerating *strategic and adversarial* nodes while protecting privacy.
This bench puts numbers on the comparison:

* messages: both schemes pay the quadratic broadcast bill (constant gap);
* per-agent computation: the naive scheme is ~free; DMW pays
  ``O(m n^2 log p)`` — the price of privacy;
* privacy: the naive scheme exposes every bid to everyone instantly; DMW
  exposes nothing to coalitions of size <= c + 1 (cross-referenced from
  the privacy bench).

Also reports MinWork's frugality (payment / winning-bid cost) per
workload family — a deployment-budget figure the paper leaves open.
"""

import random

from _report import run_once, write_report

from repro.analysis import render_table
from repro.analysis.frugality import frugality_by_competition
from repro.core import DMWParameters
from repro.core.naive import run_naive
from repro.core.protocol import run_dmw
from repro.scheduling import workloads


def run_comparison():
    rows = []
    for n in (4, 6, 8, 10):
        parameters = DMWParameters.generate(n, fault_bound=1)
        problem = workloads.random_discrete(n, 2, parameters.bid_values,
                                            random.Random(n))
        naive = run_naive(problem)
        dmw = run_dmw(problem, parameters=parameters,
                      rng=random.Random(1))
        assert naive.completed and dmw.completed
        assert naive.schedule == dmw.schedule
        assert naive.payments == dmw.payments
        rows.append([
            n,
            naive.network_metrics.point_to_point_messages,
            dmw.network_metrics.point_to_point_messages,
            naive.max_agent_work,
            dmw.max_agent_work,
        ])
    frugality = frugality_by_competition(trials=8, seed=5)
    return rows, frugality


def test_op10_naive_comparison(benchmark):
    rows, frugality = run_once(benchmark, run_comparison)

    # Message gap is a bounded constant factor; computation gap grows.
    message_ratios = [row[2] / row[1] for row in rows]
    assert all(ratio < 30 for ratio in message_ratios)
    work_ratios = [row[4] / max(row[3], 1) for row in rows]
    assert work_ratios == sorted(work_ratios)
    assert work_ratios[-1] > work_ratios[0]

    table_rows = [row + ["%.1fx" % (row[4] / max(row[3], 1))]
                  for row in rows]
    report = ("Open Problem 10: naive (broadcast bids) vs DMW, "
              "identical outcomes, m=2\n")
    report += render_table(
        ["n", "naive msgs", "DMW msgs", "naive work/agent",
         "DMW work/agent", "work gap"], table_rows)
    report += ("\n\nprivacy delta: naive exposes all bids to every single "
               "observer;\nDMW exposes none below c+2 colluders "
               "(see results/privacy.txt)")
    report += "\n\nMinWork frugality (payment / winning-bid cost):\n"
    report += render_table(["workload family", "mean frugality ratio"],
                           [[name, ratio] for name, ratio in frugality])
    write_report("op10_naive", report)
