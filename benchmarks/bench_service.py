"""Always-on auction-service benchmark: warm caches, latency, throughput.

Drives the persistent daemon end-to-end — the asyncio HTTP gateway in a
background thread wrapping one resident :class:`AuctionService` — and
writes ``benchmarks/results/BENCH_service.json`` records carrying:

* cold vs warm best-of-rounds wall-clock for repeat-parameter jobs (the
  ``WarmCacheStore`` contract: a job whose group parameters match an
  earlier job's starts from the accumulated public entries and skips
  fixed-base/Straus precomputation),
* a hard ``equivalent`` verdict — schedule, payments, group parameters,
  and per-agent Table 1 operation counters must be *bit-identical*
  across every job in the measured mix (cold, warm, and burst), and
  every run report must validate against the versioned schema.  Cache
  hit/miss statistics are deliberately *excluded* from the verdict:
  warm caches change wall-clock and ``cache_stats`` only, by design
  (``docs/SERVICE.md``), and
* sustained throughput (auctions/sec over an HTTP submission burst)
  plus client-observed p50/p99 submit-to-done latency.

Runnable as a script::

    python benchmarks/bench_service.py [--smoke]

``--smoke`` shrinks the instance, rounds, and burst so CI can verify
the bit-identity contract quickly; smoke speedups and throughput are
informational only (``check_regression.py --only service`` gates the
>= 1.5x warm-over-cold speedup on non-smoke records).
"""

import asyncio
import json
import threading
import time
import urllib.request

from _report import obs_summary, write_json_record

from repro.crypto.fastexp import clear_fixed_base_tables
from repro.obs.export import validate_run_report
from repro.service import AuctionService, ServiceGateway


class _Daemon:
    """Gateway + service on an ephemeral port, loop in a thread."""

    def __init__(self, warm_capacity=4, pool_workers=2):
        self.service = AuctionService(warm_capacity=warm_capacity,
                                      pool_workers=pool_workers)
        self.gateway = ServiceGateway(self.service, host="127.0.0.1",
                                      port=0)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.gateway.start())
            started.set()
            self.loop.run_forever()
            self.loop.run_until_complete(self.gateway.stop())
            self.loop.run_until_complete(self.loop.shutdown_asyncgens())
            self.loop.close()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(10):
            raise RuntimeError("gateway did not start")
        self.base = "http://127.0.0.1:%d" % self.gateway.port

    def close(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.service.close()

    # -- HTTP client (urllib, like CI's smoke job) ------------------------
    def post(self, path, document):
        data = json.dumps(document).encode("utf-8")
        request = urllib.request.Request(
            self.base + path, data=data,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def get(self, path):
        with urllib.request.urlopen(self.base + path) as response:
            return json.loads(response.read())

    def wait_done(self, job_id, timeout=300.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            document = self.get("/jobs/%s" % job_id)
            if document["state"] in ("done", "failed"):
                return document
            time.sleep(0.005)
        raise TimeoutError("job %s did not finish" % job_id)


def _signature(report):
    """The bit-identity surface of one run report.

    Schedule, payments, group parameters, and the Table 1 per-agent
    operation counters (``totals``).  Cache hit/miss statistics are
    deliberately *excluded* — a warm cache may only change wall-clock
    and ``cache_stats``, never anything in this signature.
    """
    return {
        "schedule": report["schedule"],
        "payments": report["payments"],
        "totals": report["totals"],
        "params": report["params"],
    }


def _run_job(daemon, job, expect_warm):
    """Submit one job, wait, and return (duration, latency, report)."""
    start = time.perf_counter()
    submitted = daemon.post("/jobs", job)
    finished = daemon.wait_done(submitted["id"])
    latency = time.perf_counter() - start
    if finished["state"] != "done":
        raise RuntimeError("job failed: %s" % finished.get("error"))
    if finished["warm"] is not expect_warm:
        raise RuntimeError("expected warm=%s, daemon reported %s"
                           % (expect_warm, finished["warm"]))
    report = daemon.get("/jobs/%s/report" % submitted["id"])
    return finished["duration_s"], latency, submitted["id"], report


def measure_service(agents=10, tasks=3, seed=11, rounds=3, burst=8,
                    smoke=False):
    """Cold/warm rounds plus a throughput burst; returns the extras."""
    if smoke:
        agents, tasks, rounds, burst = 6, 2, 1, 4
    job = {"agents": agents, "tasks": tasks, "seed": seed}
    daemon = _Daemon()
    try:
        reports = []
        latencies = []
        cold_durations = []
        warm_durations = []
        # Cold rounds: evict the warm store and the process-wide
        # fixed-base tables first, so every round pays the full
        # precomputation a fresh daemon would.
        for _ in range(rounds):
            daemon.service.store.evict()
            clear_fixed_base_tables()
            duration, latency, _, report = _run_job(daemon, job,
                                                    expect_warm=False)
            cold_durations.append(duration)
            latencies.append(latency)
            reports.append(report)
        # Warm rounds: repeat-parameter jobs against the populated
        # store (the last cold round left it warm).
        for _ in range(rounds):
            duration, latency, _, report = _run_job(daemon, job,
                                                    expect_warm=True)
            warm_durations.append(duration)
            latencies.append(latency)
            reports.append(report)
        # Throughput burst: submit everything up front, then drain the
        # FIFO queue; auctions/sec is the sustained warm service rate.
        start = time.perf_counter()
        job_ids = [daemon.post("/jobs", job)["id"] for _ in range(burst)]
        for job_id in job_ids:
            finished = daemon.wait_done(job_id)
            if finished["state"] != "done":
                raise RuntimeError("burst job failed: %s"
                                   % finished.get("error"))
        elapsed = time.perf_counter() - start
        auctions_per_sec = burst / elapsed if elapsed else 0.0
        reports.extend(daemon.get("/jobs/%s/report" % job_id)
                       for job_id in job_ids)
        last_outcome = daemon.service.job(job_ids[-1]).outcome

        for report in reports:
            validate_run_report(report)
        reference = _signature(reports[0])
        equivalent = all(_signature(report) == reference
                         for report in reports[1:])
    finally:
        daemon.close()

    cold = min(cold_durations)
    warm = min(warm_durations)
    speedup = cold / warm if warm else 0.0
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    extra = {
        "equivalent": equivalent,
        "warm_speedup": round(speedup, 4),
        "cold_wall_clock_s": round(cold, 6),
        "warm_wall_clock_s": round(warm, 6),
        "auctions_per_sec": round(auctions_per_sec, 4),
        "latency_p50_s": round(p50, 6),
        "latency_p99_s": round(p99, 6),
        "reports_validated": len(reports),
        "smoke": smoke,
    }
    write_json_record(
        "service",
        {"sweep": "warm_cache", "agents": agents, "tasks": tasks,
         "seed": seed, "rounds": rounds, "burst": burst},
        wall_clock_s=round(cold, 6),
        counters=reports[0]["totals"]["operations"],
        obs=obs_summary(last_outcome),
        extra=extra,
    )
    print("service[n=%d, m=%d]: cold %.4fs, warm %.4fs (%.2fx), "
          "%.2f auctions/s, p50 %.4fs, p99 %.4fs, equivalent=%s"
          % (agents, tasks, cold, warm, speedup, auctions_per_sec,
             p50, p99, equivalent))
    return extra


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        description="Measure the always-on auction service (warm-cache "
                    "speedup, latency, throughput) and write "
                    "BENCH_service.json for the regression gate.")
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, single round: verifies the "
                             "bit-identity contract without gating "
                             "speedup or throughput")
    args = parser.parse_args(argv)
    measure_service(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
