"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (Table 1, the
Fig. 2 message census, or a theorem-as-experiment) and writes the rendered
result to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
measured output verbatim.  Benchmarks run their measurement exactly once
(``benchmark.pedantic(..., rounds=1)``) — the quantity of interest is the
*measured counts*, not the wall-clock of the measuring harness (wall-clock
scaling has its own bench, ``bench_scaling.py``).

Machine-readable output
-----------------------
Next to the human-readable ``.txt`` reports, benchmarks emit JSON records
via :func:`write_json_record` into ``benchmarks/results/BENCH_<bench>.json``.
Each file holds a list of records with the fixed schema::

    {"bench": str, "params": {...}, "wall_clock_s": float | None,
     "counters": {...} | None, "obs": {...} | None}

``params`` identifies the measured configuration (``n``, ``m``, group
size, ...), ``wall_clock_s`` is the best measured wall-clock in seconds
(``None`` for count-only benches), and ``counters`` carries whatever
counted quantities the bench tracks (operation-counter snapshots, message
censuses).  ``obs`` is an optional observability summary (fastexp
public-value-cache hit/miss statistics and hit rates, produced by
:func:`obs_summary`); being deterministic, the cache statistics are gated
exactly by ``check_regression.py``.  CI's regression gate consumes these
files; see ``docs/PERFORMANCE.md`` and ``docs/OBSERVABILITY.md``.
"""

import json
import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def write_report(name, text):
    """Write a rendered report table under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print()
    print(text)
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def json_path(bench):
    """Return the path of a bench's machine-readable record file."""
    return os.path.join(RESULTS_DIR, "BENCH_%s.json" % bench)


def obs_summary(outcome):
    """Build the ``obs`` record section from a finished DMW outcome.

    Carries the execution-scoped fastexp cache statistics (hit/miss
    counts per namespace plus the overall hit rate) and the resilience
    counters (retransmissions, recoveries, quarantines — all exactly
    zero on the fault-free benchmark configurations, which
    ``check_regression.py`` gates); extend here, not in individual
    benches, so the record schema stays uniform.
    """
    stats = dict(getattr(outcome, "cache_stats", {}) or {})
    if not stats:
        return None
    total = stats.get("hits", 0) + stats.get("misses", 0)
    hit_rate = (stats.get("hits", 0) / total) if total else 0.0
    metrics = getattr(outcome, "network_metrics", None)
    resilience = {
        "retransmissions": getattr(metrics, "retransmissions", 0),
        "recovered_messages": getattr(metrics, "recovered_messages", 0),
        "degraded": bool(getattr(outcome, "degraded", False)),
        "quarantined_tasks": sorted(getattr(outcome, "task_aborts", {})
                                    or {}),
    }
    return {"cache": stats, "cache_hit_rate": round(hit_rate, 6),
            "resilience": resilience}


def write_json_record(bench, params, wall_clock_s=None, counters=None,
                      obs=None, extra=None):
    """Record one ``{bench, params, wall_clock_s, counters, obs}``
    measurement.

    Records accumulate (and are replaced on matching ``params``) in
    ``benchmarks/results/BENCH_<bench>.json`` so a parametrised bench
    writes one file holding every configuration.  ``extra`` merges
    additional bench-specific fields into the record (e.g. the parallel
    speedup bench's equivalence verdict and speedup ratio).  Returns the
    file path.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = json_path(bench)
    records = []
    if os.path.exists(path):
        with open(path) as handle:
            records = json.load(handle)
    records = [record for record in records if record["params"] != params]
    record = {
        "bench": bench,
        "params": params,
        "wall_clock_s": wall_clock_s,
        "counters": counters,
    }
    if obs is not None:
        record["obs"] = obs
    if extra is not None:
        record["extra"] = dict(extra)
    records.append(record)
    records.sort(key=lambda record: json.dumps(record["params"],
                                               sort_keys=True))
    with open(path, "w") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def best_wall_clock(fn, rounds=3, warmup=1):
    """Return ``(best_seconds, last_result)`` over ``rounds`` timed runs.

    ``warmup`` untimed runs come first so process-wide precomputation
    (fixed-base generator tables) is excluded, mirroring how a long-lived
    deployment amortises it.
    """
    result = None
    for _ in range(warmup):
        result = fn()
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def calibration_loop(iterations=200000):
    """Time a fixed big-int multiply loop (machine-speed yardstick).

    The regression gate compares *normalised* wall-clocks
    (``wall_clock_s / calibration_s``) so a committed baseline from one
    machine remains meaningful on another (e.g. a CI runner).
    """
    value = (1 << 61) - 1
    modulus = (1 << 89) - 1
    accumulator = 1
    start = time.perf_counter()
    for _ in range(iterations):
        accumulator = (accumulator * value) % modulus
    return time.perf_counter() - start
