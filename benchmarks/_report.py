"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (Table 1, the
Fig. 2 message census, or a theorem-as-experiment) and writes the rendered
result to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote
measured output verbatim.  Benchmarks run their measurement exactly once
(``benchmark.pedantic(..., rounds=1)``) — the quantity of interest is the
*measured counts*, not the wall-clock of the measuring harness (wall-clock
scaling has its own bench, ``bench_scaling.py``).
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def write_report(name, text):
    """Write a rendered report table under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print()
    print(text)
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
