"""Wall-clock scaling of full DMW executions.

Complements the *counted* costs of the Table 1 benches with end-to-end
wall-clock timings of honest protocol runs at several sizes, plus the
centralized baseline for contrast.
"""

import random

import pytest

from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.mechanisms import MinWork, truthful_bids
from repro.scheduling import workloads


def dmw_runner(n, m, group_size="small"):
    parameters = DMWParameters.generate(n, fault_bound=1,
                                        group_size=group_size)
    problem = workloads.random_discrete(n, m, parameters.bid_values,
                                        random.Random(0))

    def run():
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(1))
        assert outcome.completed
        return outcome

    return run


@pytest.mark.parametrize("n", [4, 8, 12])
def test_dmw_scaling_in_agents(benchmark, n):
    benchmark.pedantic(dmw_runner(n, 2), rounds=3, iterations=1)


@pytest.mark.parametrize("m", [1, 4, 8])
def test_dmw_scaling_in_tasks(benchmark, m):
    benchmark.pedantic(dmw_runner(6, m), rounds=3, iterations=1)


@pytest.mark.parametrize("group_size", ["tiny", "small", "medium"])
def test_dmw_scaling_in_group_size(benchmark, group_size):
    benchmark.pedantic(dmw_runner(6, 2, group_size), rounds=3, iterations=1)


@pytest.mark.parametrize("n", [4, 8, 12])
def test_minwork_baseline(benchmark, n):
    problem = workloads.uniform_random(n, 2, random.Random(0))
    mechanism = MinWork()
    benchmark(lambda: mechanism.run(truthful_bids(problem)))
