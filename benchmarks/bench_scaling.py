"""Wall-clock scaling of full DMW executions.

Complements the *counted* costs of the Table 1 benches with end-to-end
wall-clock timings of honest protocol runs at several sizes, plus the
centralized baseline for contrast.

Besides the pytest-benchmark timings, every configuration writes a
machine-readable record to ``benchmarks/results/BENCH_scaling.json``
(best-of-three wall clock plus the summed per-agent operation counters);
``benchmarks/check_regression.py`` gates CI on those records against the
committed baseline in ``benchmarks/baseline/``.
"""

import random

import pytest

from _report import (best_wall_clock, calibration_loop, obs_summary,
                     write_json_record)

from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.mechanisms import MinWork, truthful_bids
from repro.scheduling import workloads


def _summed_operations(outcome):
    totals = {}
    for snapshot in outcome.agent_operations:
        for key, value in snapshot.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def dmw_runner(n, m, group_size="small"):
    parameters = DMWParameters.generate(n, fault_bound=1,
                                        group_size=group_size)
    problem = workloads.random_discrete(n, m, parameters.bid_values,
                                        random.Random(0))

    def run():
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(1))
        assert outcome.completed
        return outcome

    return run


def _record(sweep, run, **params):
    best, outcome = best_wall_clock(run, rounds=3, warmup=1)
    record_params = dict(params)
    record_params["sweep"] = sweep
    write_json_record(
        "scaling", record_params, wall_clock_s=round(best, 6),
        counters=_summed_operations(outcome),
        obs=obs_summary(outcome),
    )
    write_json_record("scaling_calibration", {"machine": "local"},
                      wall_clock_s=round(calibration_loop(), 6))


@pytest.mark.parametrize("n", [4, 8, 12])
def test_dmw_scaling_in_agents(benchmark, n):
    benchmark.pedantic(dmw_runner(n, 2), rounds=3, iterations=1)
    _record("agents", dmw_runner(n, 2), n=n, m=2, group_size="small")


@pytest.mark.parametrize("m", [1, 4, 8])
def test_dmw_scaling_in_tasks(benchmark, m):
    benchmark.pedantic(dmw_runner(6, m), rounds=3, iterations=1)
    _record("tasks", dmw_runner(6, m), n=6, m=m, group_size="small")


@pytest.mark.parametrize("group_size", ["tiny", "small", "medium"])
def test_dmw_scaling_in_group_size(benchmark, group_size):
    benchmark.pedantic(dmw_runner(6, 2, group_size), rounds=3, iterations=1)
    _record("group_size", dmw_runner(6, 2, group_size), n=6, m=2,
            group_size=group_size)


@pytest.mark.parametrize("n", [4, 8, 12])
def test_minwork_baseline(benchmark, n):
    problem = workloads.uniform_random(n, 2, random.Random(0))
    mechanism = MinWork()
    benchmark(lambda: mechanism.run(truthful_bids(problem)))
