"""Wall-clock scaling of full DMW executions.

Complements the *counted* costs of the Table 1 benches with end-to-end
wall-clock timings of honest protocol runs at several sizes, plus the
centralized baseline for contrast.

Besides the pytest-benchmark timings, every configuration writes a
machine-readable record to ``benchmarks/results/BENCH_scaling.json``
(best-of-three wall clock plus the summed per-agent operation counters);
``benchmarks/check_regression.py`` gates CI on those records against the
committed baseline in ``benchmarks/baseline/``.

Process-pool speedup curves
---------------------------
This module is also runnable as a script::

    python benchmarks/bench_scaling.py [--smoke]

which measures ``execute(parallel=True, workers=k)`` for ``k`` in
{1, 2, 4} against the sequential driver on one task-heavy instance and
writes ``benchmarks/results/BENCH_parallel.json``.  Each record carries
the pool wall-clock, the sequential wall-clock, the speedup ratio, the
machine's CPU count, and — hard-gated by ``check_regression.py`` — an
``equivalent`` verdict: schedule, payments, transcripts, per-agent
counters, and network totals must be bit-identical to the sequential
run.  The speedup itself is gated only on runners with at least as many
cores as workers and never in ``--smoke`` mode (a 1-core container can
verify equivalence but cannot demonstrate parallel speedup).
"""

import os
import random

import pytest

from _report import (best_wall_clock, calibration_loop, obs_summary,
                     write_json_record)

from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.mechanisms import MinWork, truthful_bids
from repro.scheduling import workloads


def _summed_operations(outcome):
    totals = {}
    for snapshot in outcome.agent_operations:
        for key, value in snapshot.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def dmw_runner(n, m, group_size="small"):
    parameters = DMWParameters.generate(n, fault_bound=1,
                                        group_size=group_size)
    problem = workloads.random_discrete(n, m, parameters.bid_values,
                                        random.Random(0))

    def run():
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(1))
        assert outcome.completed
        return outcome

    return run


def _record(sweep, run, **params):
    best, outcome = best_wall_clock(run, rounds=3, warmup=1)
    record_params = dict(params)
    record_params["sweep"] = sweep
    write_json_record(
        "scaling", record_params, wall_clock_s=round(best, 6),
        counters=_summed_operations(outcome),
        obs=obs_summary(outcome),
    )
    write_json_record("scaling_calibration", {"machine": "local"},
                      wall_clock_s=round(calibration_loop(), 6))


@pytest.mark.parametrize("n", [4, 8, 12])
def test_dmw_scaling_in_agents(benchmark, n):
    benchmark.pedantic(dmw_runner(n, 2), rounds=3, iterations=1)
    _record("agents", dmw_runner(n, 2), n=n, m=2, group_size="small")


@pytest.mark.parametrize("m", [1, 4, 8])
def test_dmw_scaling_in_tasks(benchmark, m):
    benchmark.pedantic(dmw_runner(6, m), rounds=3, iterations=1)
    _record("tasks", dmw_runner(6, m), n=6, m=m, group_size="small")


@pytest.mark.parametrize("group_size", ["tiny", "small", "medium"])
def test_dmw_scaling_in_group_size(benchmark, group_size):
    benchmark.pedantic(dmw_runner(6, 2, group_size), rounds=3, iterations=1)
    _record("group_size", dmw_runner(6, 2, group_size), n=6, m=2,
            group_size=group_size)


@pytest.mark.parametrize("n", [4, 8, 12])
def test_minwork_baseline(benchmark, n):
    problem = workloads.uniform_random(n, 2, random.Random(0))
    mechanism = MinWork()
    benchmark(lambda: mechanism.run(truthful_bids(problem)))


# -- process-pool speedup curves ---------------------------------------------

def _outcome_signature(outcome):
    """The fields the equivalence verdict pins down bit-for-bit."""
    return (
        outcome.completed,
        list(outcome.schedule.assignment),
        list(outcome.payments),
        [(t.task, t.first_price, t.winner, t.second_price)
         for t in outcome.transcripts],
        outcome.agent_operations,
        outcome.network_metrics.as_dict(),
    )


def measure_parallel_speedup(n=8, m=8, workers_counts=(1, 2, 4),
                             rounds=3, smoke=False):
    """Measure the pool drivers against the sequential baseline.

    Writes one ``BENCH_parallel.json`` record per worker count and
    returns the record list.  ``smoke`` shrinks the instance and the
    round count so CI can verify the equivalence contract quickly; the
    speedup numbers of a smoke run are not meaningful (and the
    regression gate ignores them).
    """
    if smoke:
        n, m, workers_counts, rounds = 6, 4, (1, 2), 1
    parameters = DMWParameters.generate(n, fault_bound=1,
                                        group_size="small")
    problem = workloads.random_discrete(n, m, parameters.bid_values,
                                        random.Random(0))

    def sequential():
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(1))
        assert outcome.completed
        return outcome

    seq_best, seq_outcome = best_wall_clock(sequential, rounds=rounds,
                                            warmup=1)
    seq_signature = _outcome_signature(seq_outcome)
    records = []
    for workers in workers_counts:

        def pooled(workers=workers):
            outcome = run_dmw(problem, parameters=parameters,
                              rng=random.Random(1), parallel=True,
                              workers=workers)
            assert outcome.completed
            return outcome

        pool_best, pool_outcome = best_wall_clock(pooled, rounds=rounds,
                                                  warmup=1)
        equivalent = _outcome_signature(pool_outcome) == seq_signature
        speedup = seq_best / pool_best if pool_best else 0.0
        extra = {
            "sequential_wall_clock_s": round(seq_best, 6),
            "speedup": round(speedup, 4),
            "equivalent": equivalent,
            "cpu_count": os.cpu_count() or 1,
            "smoke": smoke,
        }
        write_json_record(
            "parallel", {"sweep": "workers", "n": n, "m": m,
                         "workers": workers},
            wall_clock_s=round(pool_best, 6),
            counters=_summed_operations(pool_outcome),
            obs=obs_summary(pool_outcome),
            extra=extra,
        )
        records.append(extra)
        print("parallel[n=%d, m=%d, workers=%d]: %.4fs vs %.4fs "
              "sequential (%.2fx), equivalent=%s"
              % (n, m, workers, pool_best, seq_best, speedup, equivalent))
    write_json_record("scaling_calibration", {"machine": "local"},
                      wall_clock_s=round(calibration_loop(), 6))
    return records


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_dmw_pool_speedup(benchmark, workers):
    """pytest-benchmark view of one pool configuration (n=8, m=8)."""
    parameters = DMWParameters.generate(8, fault_bound=1,
                                        group_size="small")
    problem = workloads.random_discrete(8, 8, parameters.bid_values,
                                        random.Random(0))
    benchmark.pedantic(
        lambda: run_dmw(problem, parameters=parameters,
                        rng=random.Random(1), parallel=True,
                        workers=workers),
        rounds=1, iterations=1)


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        description="Measure process-pool speedup curves and write "
                    "BENCH_parallel.json for the regression gate.")
    parser.add_argument("--smoke", action="store_true",
                        help="small instance, single round: verifies the "
                             "equivalence contract without gating speedup")
    args = parser.parse_args(argv)
    measure_parallel_speedup(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
