"""Ablation — the design choices DESIGN.md calls out, measured.

1. **Assigned vs full verification** (DESIGN.md / Theorem 12): with
   ``c + 1`` assigned verifiers per published value the per-agent modular
   work stays within the ``O(m n^2 log p)`` budget; with everyone
   verifying everything it grows a factor ~n.  Outcomes are identical.
2. **Winner claims vs exhaustive scan**: claims make winner testing
   ``O(#claimants * y*^2)`` instead of ``O(n * y*^2)``; the fallback scan
   keeps correctness when claims are absent.
"""

import random

from _report import run_once, write_report

from repro.analysis import fit_loglog_slope, render_table
from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.scheduling import workloads

AGENTS = (4, 6, 8, 10)


def run_modes():
    samples = []
    for n in AGENTS:
        row = {"n": n}
        for mode in ("assigned", "full"):
            parameters = DMWParameters.generate(n, fault_bound=1,
                                                verification_mode=mode)
            problem = workloads.random_discrete(n, 2, parameters.bid_values,
                                                random.Random(n))
            outcome = run_dmw(problem, parameters=parameters,
                              rng=random.Random(1))
            assert outcome.completed
            row[mode] = outcome
        samples.append(row)
    return samples


def test_ablation_verification_mode(benchmark):
    samples = run_once(benchmark, run_modes)

    rows = []
    for row in samples:
        assigned, full = row["assigned"], row["full"]
        # Identical outcomes: the regimes differ only in who checks what.
        assert assigned.schedule == full.schedule
        assert assigned.payments == full.payments
        rows.append([row["n"], assigned.max_agent_work, full.max_agent_work,
                     full.max_agent_work / assigned.max_agent_work])

    ns = [row[0] for row in rows]
    assigned_slope = fit_loglog_slope(ns, [row[1] for row in rows])
    full_slope = fit_loglog_slope(ns, [row[2] for row in rows])
    # The full regime pays roughly an extra factor n.
    assert full_slope > assigned_slope + 0.4
    # The overhead ratio grows with n.
    ratios = [row[3] for row in rows]
    assert ratios == sorted(ratios)

    report = ("Ablation: assigned (c+1 verifiers + complaints) vs full "
              "verification\nper-agent modular-multiplication work, "
              "honest runs (m=2):\n")
    report += render_table(
        ["n", "assigned work", "full work", "full/assigned"], rows)
    report += ("\n\nfitted exponents: assigned %.2f, full %.2f "
               "(Theorem 12 budget needs ~2; full mode drifts toward 3)"
               % (assigned_slope, full_slope))
    write_report("ablation_verification", report)
