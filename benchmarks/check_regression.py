"""Compare fresh benchmark records against the committed baseline.

Reads the machine-readable ``BENCH_*.json`` records emitted by the
benchmark suite (see ``benchmarks/_report.py``) and compares them to the
baseline committed under ``benchmarks/baseline/``:

* **scaling** records carry wall-clock times.  Raw seconds do not
  transfer between machines, so both sides are normalised by their own
  ``scaling_calibration`` record (a fixed big-integer multiplication
  loop timed on the same machine as the benchmarks; see
  ``_report.calibration_loop``).  A fresh normalised wall-clock more
  than ``--threshold`` (default 25%) above baseline fails the gate.

* **table1_computation** records carry counted modular-operation
  totals.  These are deterministic (the fast paths must charge the
  paper's analytic schedule bit-for-bit — ``docs/PERFORMANCE.md``), so
  *any* drift is a failure, not a tolerance band.

* **scaling** records additionally carry an ``obs`` section with the
  execution's fastexp public-value-cache statistics
  (``docs/OBSERVABILITY.md``).  Cache hits/misses are deterministic
  functions of the configuration, so they are gated exactly too —
  a dropped hit count means a memoisation opportunity silently
  disappeared even if wall-clock stayed inside the threshold.  The
  gate skips configurations whose baseline predates the ``obs``
  section.

* fresh **scaling** records also carry a ``resilience`` sub-section
  (retransmissions, recoveries, degradation, quarantines — see
  ``docs/RESILIENCE.md``).  The benchmark configurations are
  fault-free, so every counter must be *exactly zero*; this gate needs
  no baseline.

* **backend** records (``bench_backend.py [--smoke]``) compare the
  arithmetic backends (python vs gmpy2) and the share-verification
  modes (per-share vs batched) on the reference run.  The
  ``equivalent`` verdict — outcomes, transcripts, and per-agent
  operation counters bit-identical to the python/per-share reference —
  is hard-gated with no baseline, always.  The gmpy2 speedup is gated
  at >= 3x, but only when the record says gmpy2 was importable and the
  run was not a smoke run (a python-only environment can prove
  equivalence, not native speedup).

* **parallel** records (``bench_scaling.py [--smoke]``) carry the
  process-pool speedup curves plus an ``equivalent`` verdict.  The
  verdict is hard-gated with no baseline — the pool driver must be
  bit-identical to the sequential driver, always.  The workers=4
  speedup is gated at >= 1.8x, but only when the measuring machine has
  at least 4 cores and the record is not a smoke run (a 1-core CI
  container can prove equivalence, not speedup).

* the **history** store (``benchmarks/results/history.jsonl``, built by
  ``dmw history ingest-bench`` and appended to by ``dmw run
  --history``) is gated per config fingerprint: trend anomaly flags
  (Theorem 11 band violations, impossible round counts, counter drift
  within a fingerprint) always fail, and the latest
  calibration-normalised wall-clock must stay within ``--threshold``
  of the best stored run for the same fingerprint.

Exit status 0 iff every gate holds.

Usage::

    python benchmarks/check_regression.py \
        [--baseline benchmarks/baseline] [--results benchmarks/results] \
        [--threshold 0.25] [--only SECTION ...]

``--only`` restricts the run to the named gate sections (``scaling``,
``table1``, ``cache``, ``resilience``, ``parallel``, ``backend``,
``service``, ``history``); CI's
parallel-differential job uses ``--only parallel`` because its smoke
run produces only ``BENCH_parallel.json``, which must not trip the
"baseline exists but no fresh results" failure of the scaling gate.
"""

import argparse
import json
import os
import sys


def _load(directory, bench):
    path = os.path.join(directory, "BENCH_%s.json" % bench)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def _params_key(record):
    return tuple(sorted(record["params"].items()))


def _by_params(records):
    return dict((_params_key(record), record) for record in records)


def _calibration(directory):
    records = _load(directory, "scaling_calibration")
    if not records:
        return None
    return records[0]["wall_clock_s"]


def check_scaling(baseline_dir, results_dir, threshold, failures, lines):
    baseline = _load(baseline_dir, "scaling")
    fresh = _load(results_dir, "scaling")
    if baseline is None:
        lines.append("scaling: no baseline committed; skipping")
        return
    if fresh is None:
        failures.append("scaling: baseline exists but no fresh results "
                        "(run benchmarks/bench_scaling.py first)")
        return
    base_cal = _calibration(baseline_dir)
    fresh_cal = _calibration(results_dir)
    if not base_cal or not fresh_cal:
        failures.append("scaling: missing calibration record "
                        "(baseline=%r fresh=%r)" % (base_cal, fresh_cal))
        return
    lines.append("calibration loop: baseline %.4fs, fresh %.4fs"
                 % (base_cal, fresh_cal))
    fresh_by_params = _by_params(fresh)
    for record in baseline:
        key = _params_key(record)
        new = fresh_by_params.get(key)
        label = ", ".join("%s=%s" % item for item in key)
        if new is None:
            failures.append("scaling[%s]: record missing from fresh results"
                            % label)
            continue
        if not record.get("wall_clock_s"):
            continue
        base_norm = record["wall_clock_s"] / base_cal
        new_norm = new["wall_clock_s"] / fresh_cal
        ratio = new_norm / base_norm
        status = "ok"
        if ratio > 1.0 + threshold:
            status = "REGRESSION"
            failures.append(
                "scaling[%s]: normalised wall-clock %.2fx baseline "
                "(%.4fs vs %.4fs raw; threshold %.0f%%)"
                % (label, ratio, new["wall_clock_s"],
                   record["wall_clock_s"], threshold * 100))
        lines.append("scaling[%s]: %.2fx normalised (%s)"
                     % (label, ratio, status))


def check_table1(baseline_dir, results_dir, failures, lines):
    baseline = _load(baseline_dir, "table1_computation")
    fresh = _load(results_dir, "table1_computation")
    if baseline is None:
        lines.append("table1_computation: no baseline committed; skipping")
        return
    if fresh is None:
        failures.append("table1_computation: baseline exists but no fresh "
                        "results (run bench_table1_computation.py first)")
        return
    fresh_by_params = _by_params(fresh)
    for record in baseline:
        key = _params_key(record)
        new = fresh_by_params.get(key)
        label = ", ".join("%s=%s" % item for item in key)
        if new is None:
            failures.append("table1_computation[%s]: record missing from "
                            "fresh results" % label)
            continue
        # Counted totals are deterministic: exact equality, no tolerance.
        if new["counters"] != record["counters"]:
            failures.append(
                "table1_computation[%s]: counted totals drifted: "
                "baseline %s != fresh %s"
                % (label, record["counters"], new["counters"]))
        else:
            lines.append("table1_computation[%s]: counters identical"
                         % label)


def check_cache_stats(baseline_dir, results_dir, failures, lines):
    """Gate the deterministic fastexp cache statistics exactly."""
    baseline = _load(baseline_dir, "scaling")
    fresh = _load(results_dir, "scaling")
    if baseline is None or fresh is None:
        return  # the scaling gates already reported the situation
    fresh_by_params = _by_params(fresh)
    for record in baseline:
        base_obs = record.get("obs")
        if not base_obs or "cache" not in base_obs:
            continue  # baseline predates the obs section for this config
        key = _params_key(record)
        label = ", ".join("%s=%s" % item for item in key)
        new = fresh_by_params.get(key)
        if new is None:
            continue  # missing record already failed the scaling gate
        new_obs = new.get("obs") or {}
        if "cache" not in new_obs:
            failures.append(
                "cache[%s]: baseline has cache statistics but fresh "
                "record has none (observability wiring lost?)" % label)
            continue
        # Hit/miss counts are deterministic: exact equality, no band.
        if new_obs["cache"] != base_obs["cache"]:
            failures.append(
                "cache[%s]: cache statistics drifted: baseline %s != "
                "fresh %s" % (label, base_obs["cache"], new_obs["cache"]))
        else:
            lines.append(
                "cache[%s]: statistics identical (hit rate %.1f%%)"
                % (label, 100 * new_obs.get("cache_hit_rate", 0.0)))


def check_resilience(results_dir, failures, lines):
    """The benchmark configurations are fault-free: every resilience
    counter in a fresh scaling record must be exactly zero.

    A nonzero retransmission count would mean the benchmark harness
    silently started paying retry costs (perturbing both wall-clocks
    and message totals); a quarantine or a degraded flag would mean it
    stopped measuring the protocol it claims to measure.  Unlike the
    other gates this one needs no baseline — zero is the spec.
    """
    fresh = _load(results_dir, "scaling")
    if fresh is None:
        return  # the scaling gate already reported the situation
    for record in fresh:
        obs = record.get("obs") or {}
        resilience = obs.get("resilience")
        if resilience is None:
            continue  # record predates the resilience section
        label = ", ".join("%s=%s" % item for item in _params_key(record))
        problems = []
        if resilience.get("retransmissions", 0) != 0:
            problems.append("retransmissions=%r"
                            % resilience["retransmissions"])
        if resilience.get("recovered_messages", 0) != 0:
            problems.append("recovered_messages=%r"
                            % resilience["recovered_messages"])
        if resilience.get("degraded", False):
            problems.append("degraded=True")
        if resilience.get("quarantined_tasks"):
            problems.append("quarantined_tasks=%r"
                            % resilience["quarantined_tasks"])
        if problems:
            failures.append(
                "resilience[%s]: fault-free baseline shows nonzero "
                "resilience activity: %s" % (label, ", ".join(problems)))
        else:
            lines.append("resilience[%s]: all counters zero (fault-free)"
                         % label)


#: Minimum accepted workers=4 speedup on a machine with >= 4 cores
#: (ISSUE acceptance: the pool must demonstrate real parallelism).
_MIN_SPEEDUP_AT_4 = 1.8


def check_parallel(results_dir, failures, lines):
    """Gate the process-pool records: equivalence always, speedup when
    the machine can physically show it.

    Equivalence (``extra.equivalent``) needs no baseline and no
    tolerance: the pool driver's outcomes must be bit-identical to the
    sequential driver's on every configuration, smoke or not.  The
    speedup gate applies only to non-smoke workers=4 records measured
    on a machine with at least 4 cores; elsewhere the ratio is
    reported but informational.
    """
    fresh = _load(results_dir, "parallel")
    if fresh is None:
        lines.append("parallel: no records; skipping "
                     "(run benchmarks/bench_scaling.py [--smoke])")
        return
    for record in fresh:
        label = ", ".join("%s=%s" % item for item in _params_key(record))
        extra = record.get("extra") or {}
        if "equivalent" not in extra:
            failures.append("parallel[%s]: record carries no equivalence "
                            "verdict" % label)
            continue
        if not extra["equivalent"]:
            failures.append(
                "parallel[%s]: pool outcome DIVERGED from the sequential "
                "driver (determinism contract broken)" % label)
            continue
        workers = record["params"].get("workers", 0)
        speedup = extra.get("speedup", 0.0)
        cores = extra.get("cpu_count", 1)
        smoke = extra.get("smoke", False)
        if workers >= 4 and cores >= workers and not smoke:
            if speedup < _MIN_SPEEDUP_AT_4:
                failures.append(
                    "parallel[%s]: speedup %.2fx below the %.1fx gate "
                    "on a %d-core machine"
                    % (label, speedup, _MIN_SPEEDUP_AT_4, cores))
                continue
            lines.append("parallel[%s]: equivalent, %.2fx speedup (gated)"
                         % (label, speedup))
        else:
            reason = ("smoke" if smoke
                      else "%d cores < %d workers" % (cores, workers)
                      if cores < workers else "informational")
            lines.append("parallel[%s]: equivalent, %.2fx speedup (%s)"
                         % (label, speedup, reason))


#: Minimum accepted gmpy2-over-python speedup when gmpy2 is importable
#: (ISSUE acceptance: the native backend must demonstrate real gains).
_MIN_GMPY2_SPEEDUP = 3.0


def check_backend(results_dir, failures, lines):
    """Gate the arithmetic-backend records: equivalence always, native
    speedup only where gmpy2 exists to show it.

    Equivalence (``extra.equivalent``) needs no baseline and no
    tolerance: a backend or verification mode that changes any outcome,
    transcript, or per-agent counter has broken the counted-vs-measured
    contract, whatever its wall-clock.  The >= 3x speedup gate applies
    only to non-smoke gmpy2 records whose environment actually had
    gmpy2; everywhere else the ratio is informational (the batched
    share-verification speedup is always informational — its win is
    workload-dependent, its equivalence is not).
    """
    fresh = _load(results_dir, "backend")
    if fresh is None:
        lines.append("backend: no records; skipping "
                     "(run benchmarks/bench_backend.py [--smoke])")
        return
    for record in fresh:
        label = ", ".join("%s=%s" % item for item in _params_key(record))
        extra = record.get("extra") or {}
        if "equivalent" not in extra:
            failures.append("backend[%s]: record carries no equivalence "
                            "verdict" % label)
            continue
        if not extra["equivalent"]:
            failures.append(
                "backend[%s]: outcome DIVERGED from the python/per-share "
                "reference (bit-identical contract broken)" % label)
            continue
        speedup = extra.get("speedup", 0.0)
        smoke = extra.get("smoke", False)
        gated = (record["params"].get("backend") == "gmpy2"
                 and extra.get("gmpy2_available", False) and not smoke)
        if gated:
            if speedup < _MIN_GMPY2_SPEEDUP:
                failures.append(
                    "backend[%s]: gmpy2 speedup %.2fx below the %.1fx gate"
                    % (label, speedup, _MIN_GMPY2_SPEEDUP))
                continue
            lines.append("backend[%s]: equivalent, %.2fx speedup (gated)"
                         % (label, speedup))
        else:
            reason = "smoke" if smoke else "informational"
            lines.append("backend[%s]: equivalent, %.2fx speedup (%s)"
                         % (label, speedup, reason))


#: Minimum accepted warm-over-cold speedup for repeat-parameter service
#: jobs (ISSUE acceptance: the cross-run warm cache must show real
#: gains, not just avoid breaking anything).
_MIN_WARM_SPEEDUP = 1.5


def check_service(results_dir, failures, lines):
    """Gate the always-on service records: bit identity always, warm
    speedup on non-smoke records.

    Equivalence (``extra.equivalent``) needs no baseline and no
    tolerance: every job in the measured mix — cold, warm, and the
    throughput burst — must produce bit-identical schedules, payments,
    and per-agent Table 1 counters, and every run report must validate
    against the versioned schema.  A warm cache may change wall-clock
    and ``cache_stats`` only; anything else breaks the
    counted-vs-measured contract.  The >= 1.5x warm-over-cold speedup
    gate applies to non-smoke records; smoke ratios are informational.
    """
    fresh = _load(results_dir, "service")
    if fresh is None:
        lines.append("service: no records; skipping "
                     "(run benchmarks/bench_service.py [--smoke])")
        return
    for record in fresh:
        label = ", ".join("%s=%s" % item for item in _params_key(record))
        extra = record.get("extra") or {}
        if "equivalent" not in extra:
            failures.append("service[%s]: record carries no equivalence "
                            "verdict" % label)
            continue
        if not extra["equivalent"]:
            failures.append(
                "service[%s]: warm/burst outcome DIVERGED from the cold "
                "reference (bit-identical warm-cache contract broken)"
                % label)
            continue
        speedup = extra.get("warm_speedup", 0.0)
        smoke = extra.get("smoke", False)
        if not smoke:
            if speedup < _MIN_WARM_SPEEDUP:
                failures.append(
                    "service[%s]: warm speedup %.2fx below the %.1fx gate"
                    % (label, speedup, _MIN_WARM_SPEEDUP))
                continue
            lines.append(
                "service[%s]: equivalent, %.2fx warm speedup (gated), "
                "%.2f auctions/s"
                % (label, speedup, extra.get("auctions_per_sec", 0.0)))
        else:
            lines.append(
                "service[%s]: equivalent, %.2fx warm speedup (smoke), "
                "%.2f auctions/s"
                % (label, speedup, extra.get("auctions_per_sec", 0.0)))


def check_history(results_dir, threshold, failures, lines):
    """Gate the persistent run-history store (``history.jsonl``).

    Two checks per stored trajectory (grouped by config fingerprint —
    see ``repro.obs.history``):

    * every trend anomaly flag (message totals outside the Theorem 11
      band, impossible round counts, counter drift within a
      fingerprint) is a hard failure — those invariants have no
      tolerance;
    * when a fingerprint has two or more calibration-normalised
      wall-clock measurements, the latest must not exceed the best
      prior one by more than ``--threshold`` (the same band as the
      scaling gate — raw seconds never cross machines, normalised
      ones do).
    """
    path = os.path.join(results_dir, "history.jsonl")
    if not os.path.exists(path):
        lines.append("history: no store at %s; skipping" % path)
        return
    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, os.path.join(here, os.pardir, "src"))
    try:
        from repro.obs.history import HistoryStore, trend_rows
    finally:
        sys.path.pop(0)
    rows = trend_rows(HistoryStore(path).load())
    normalised_by_fp = {}
    for row in rows:
        if row["anomalies"]:
            failures.append(
                "history[#%d %s]: %s"
                % (row["index"], row["fingerprint"],
                   "; ".join(row["anomalies"])))
        if row["normalized"] is not None:
            normalised_by_fp.setdefault(row["fingerprint"],
                                        []).append(row)
    if not rows:
        lines.append("history: store %s is empty" % path)
        return
    for fingerprint in sorted(normalised_by_fp):
        group = normalised_by_fp[fingerprint]
        if len(group) < 2:
            lines.append("history[%s]: one normalised entry; trend not "
                         "gated yet" % fingerprint)
            continue
        prior, latest = group[:-1], group[-1]
        best = min(row["normalized"] for row in prior)
        ratio = latest["normalized"] / best if best else float("inf")
        if ratio > 1.0 + threshold:
            failures.append(
                "history[%s]: latest normalised wall-clock %.2fx the "
                "best stored run (entry #%d, threshold %.0f%%)"
                % (fingerprint, ratio, latest["index"], threshold * 100))
        else:
            lines.append("history[%s]: latest %.2fx of best stored "
                         "normalised wall-clock (ok)"
                         % (fingerprint, ratio))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail on benchmark regressions against the committed "
                    "baseline.")
    here = os.path.dirname(os.path.abspath(__file__))
    parser.add_argument("--baseline", default=os.path.join(here, "baseline"))
    parser.add_argument("--results", default=os.path.join(here, "results"))
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional wall-clock regression "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--only", action="append", dest="only",
                        choices=["scaling", "table1", "cache",
                                 "resilience", "parallel", "backend",
                                 "service", "history"],
                        help="run only the named gate section(s); "
                             "repeatable (default: all sections)")
    args = parser.parse_args(argv)

    sections = set(args.only or ["scaling", "table1", "cache",
                                 "resilience", "parallel", "backend",
                                 "service", "history"])
    failures = []
    lines = []
    if "scaling" in sections:
        check_scaling(args.baseline, args.results, args.threshold,
                      failures, lines)
    if "table1" in sections:
        check_table1(args.baseline, args.results, failures, lines)
    if "cache" in sections:
        check_cache_stats(args.baseline, args.results, failures, lines)
    if "resilience" in sections:
        check_resilience(args.results, failures, lines)
    if "parallel" in sections:
        check_parallel(args.results, failures, lines)
    if "backend" in sections:
        check_backend(args.results, failures, lines)
    if "service" in sections:
        check_service(args.results, failures, lines)
    if "history" in sections:
        check_history(args.results, args.threshold, failures, lines)

    for line in lines:
        print(line)
    if failures:
        print()
        for failure in failures:
            print("FAIL: %s" % failure)
        return 1
    print()
    print("regression gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
