"""Tests for the pluggable arithmetic-backend layer.

Selection precedence (explicit > ``DMW_BACKEND`` > python default),
graceful degradation when gmpy2 is absent, pool-worker propagation, and
— when gmpy2 *is* installed — scalar-operation and whole-protocol
bit-equivalence with the reference python engine.
"""

import os
import pickle
import random
import subprocess
import sys

import pytest

from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.crypto import backend as backend_module
from repro.crypto.backend import (
    BackendUnavailableError,
    PythonBackend,
    active_backend,
    available_backends,
    gmpy2_available,
    select_backend,
    using_backend,
)
from repro.parallel import PoolSpec, _init_worker
from repro.scheduling import workloads

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HAVE_GMPY2 = gmpy2_available()


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """Every test leaves the module-global engine as it found it."""
    previous = backend_module.ACTIVE
    yield
    backend_module.ACTIVE = previous


class TestSelection:
    def test_python_always_selectable(self):
        engine = select_backend("python")
        assert engine.name == "python"
        assert active_backend() is engine

    def test_name_is_case_insensitive_and_stripped(self):
        assert select_backend(" PYTHON ").name == "python"

    def test_empty_name_defaults_to_python(self):
        assert select_backend("").name == "python"

    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown arithmetic backend"):
            select_backend("fpga")

    def test_auto_resolves_to_best_available(self):
        expected = "gmpy2" if HAVE_GMPY2 else "python"
        assert select_backend("auto").name == expected

    def test_available_backends_lists_python_first(self):
        names = available_backends()
        assert names[0] == "python"
        assert ("gmpy2" in names) == HAVE_GMPY2

    @pytest.mark.skipif(HAVE_GMPY2, reason="gmpy2 installed: no fallback")
    def test_missing_gmpy2_degrades_with_warning(self):
        with pytest.warns(RuntimeWarning, match="falling back"):
            engine = select_backend("gmpy2")
        assert engine.name == "python"

    @pytest.mark.skipif(HAVE_GMPY2, reason="gmpy2 installed: no fallback")
    def test_missing_gmpy2_strict_raises(self):
        with pytest.raises(BackendUnavailableError):
            select_backend("gmpy2", strict=True)

    def test_using_backend_restores_previous_engine(self):
        before = active_backend()
        with using_backend("python") as engine:
            assert active_backend() is engine
        assert active_backend() is before

    def test_using_backend_restores_on_exception(self):
        before = active_backend()
        with pytest.raises(RuntimeError, match="boom"):
            with using_backend("python"):
                raise RuntimeError("boom")
        assert active_backend() is before


class TestEnvironmentVariable:
    """``DMW_BACKEND`` is consulted once, at import, in a fresh process."""

    def _import_and_report(self, env_value):
        env = {**os.environ,
               "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
               "DMW_BACKEND": env_value}
        return subprocess.run(
            [sys.executable, "-c",
             "from repro.crypto import backend; print(backend.ACTIVE.name)"],
            cwd=REPO_ROOT, capture_output=True, text=True, env=env)

    def test_env_selects_python(self):
        result = self._import_and_report("python")
        assert result.returncode == 0
        assert result.stdout.strip() == "python"

    def test_env_auto(self):
        result = self._import_and_report("auto")
        assert result.returncode == 0
        expected = "gmpy2" if HAVE_GMPY2 else "python"
        assert result.stdout.strip() == expected

    def test_unknown_env_value_warns_and_keeps_default(self):
        result = self._import_and_report("quantum")
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "python"
        assert "DMW_BACKEND" in result.stderr


class TestScalarOperations:
    MODULI = [97, (1 << 61) - 1]

    def test_python_backend_matches_builtins(self, rng):
        engine = PythonBackend()
        for modulus in self.MODULI:
            for _ in range(25):
                a = rng.randrange(1, modulus)
                b = rng.randrange(1, modulus)
                e = rng.randrange(0, 2 * modulus)
                assert engine.mul(a, b, modulus) == (a * b) % modulus
                assert engine.powmod(a, e, modulus) == pow(a, e, modulus)
                assert (engine.mul(engine.invert(a, modulus), a, modulus)
                        == 1)

    def test_non_invertible_raises_canonical_diagnostic(self):
        engine = PythonBackend()
        with pytest.raises(ZeroDivisionError, match=r"gcd=3"):
            engine.invert(6, 9)

    def test_wrap_unwrap_roundtrip(self):
        for name in available_backends():
            with using_backend(name, strict=True) as engine:
                value = (1 << 80) + 12345
                assert engine.unwrap(engine.wrap(value)) == value

    def test_all_available_backends_agree(self, rng):
        """Scalar parity across engines (vacuous python-only without gmpy2)."""
        reference = PythonBackend()
        samples = [(rng.randrange(1, m), rng.randrange(0, 2 * m), m)
                   for m in self.MODULI for _ in range(10)]
        for name in available_backends():
            with using_backend(name, strict=True) as engine:
                for a, e, m in samples:
                    assert engine.mul(a, e, m) == reference.mul(a, e, m)
                    assert (engine.powmod(a, e, m)
                            == reference.powmod(a, e, m))
                    assert (engine.invert(a, m) == reference.invert(a, m))


def _minimal_spec(backend_name):
    return PoolSpec(parameters=None, true_values=(), rng_roots=(),
                    degraded=False, observe=False, trace_enabled=False,
                    backend=backend_name)


class TestPoolPropagation:
    def test_spec_defaults_to_python(self):
        assert _minimal_spec("python").backend == "python"

    def test_spec_pickles_backend_by_name(self):
        clone = pickle.loads(pickle.dumps(_minimal_spec("gmpy2")))
        assert clone.backend == "gmpy2"

    def test_init_worker_selects_spec_backend(self):
        _init_worker(_minimal_spec("python"))
        assert active_backend().name == "python"

    @pytest.mark.skipif(HAVE_GMPY2, reason="gmpy2 installed: no fallback")
    def test_worker_without_gmpy2_falls_back_gracefully(self):
        """A worker on a host missing the engine must not crash the pool."""
        with pytest.warns(RuntimeWarning, match="falling back"):
            _init_worker(_minimal_spec("gmpy2"))
        assert active_backend().name == "python"


def _outcome_signature(outcome):
    return (
        outcome.completed,
        list(outcome.schedule.assignment),
        list(outcome.payments),
        [(t.task, t.first_price, t.winner, t.second_price)
         for t in outcome.transcripts],
        outcome.agent_operations,
        outcome.network_metrics.as_dict(),
        dict(outcome.cache_stats or {}),
    )


@pytest.mark.skipif(not HAVE_GMPY2, reason="gmpy2 not installed")
class TestGmpy2Equivalence:
    """The counter-parity contract, executed: outcomes, transcripts,
    per-agent operation counters, *and* cache statistics must be
    bit-identical between engines."""

    def _run(self, backend_name, group_small):
        parameters = DMWParameters.generate(5, fault_bound=1,
                                            group_parameters=group_small)
        problem = workloads.random_discrete(5, 2, parameters.bid_values,
                                            random.Random(0))
        with using_backend(backend_name, strict=True):
            outcome = run_dmw(problem, parameters=parameters,
                              rng=random.Random(1))
        assert outcome.completed
        return _outcome_signature(outcome)

    def test_whole_protocol_bit_identical(self, group_small):
        assert self._run("python", group_small) == self._run("gmpy2",
                                                             group_small)
