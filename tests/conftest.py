"""Shared fixtures: cached cryptographic groups and standard instances."""

import random

import pytest

from repro.core.parameters import DMWParameters
from repro.crypto.groups import fixture_group
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture(scope="session")
def group_small():
    """A cached 56-bit Schnorr group with generators (fast, deterministic)."""
    return fixture_group("small")


@pytest.fixture(scope="session")
def group_tiny():
    """A cached 40-bit Schnorr group (for heavier sweeps)."""
    return fixture_group("tiny")


@pytest.fixture()
def rng():
    """Fresh deterministic randomness per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def params5(group_small):
    """Standard DMW parameters: n=5 agents, c=1, W={1,2,3}."""
    return DMWParameters.generate(5, fault_bound=1,
                                  group_parameters=group_small)


@pytest.fixture(scope="session")
def params4(group_small):
    """DMW parameters: n=4 agents, c=1, W={1,2}."""
    return DMWParameters.generate(4, fault_bound=1,
                                  group_parameters=group_small)


@pytest.fixture()
def problem53():
    """A fixed 5-agent, 3-task instance with values in W={1,2,3}."""
    return SchedulingProblem([
        [2, 1, 3],
        [3, 2, 1],
        [1, 3, 2],
        [2, 2, 2],
        [3, 1, 1],
    ])


@pytest.fixture()
def problem42():
    """A fixed 4-agent, 2-task instance with values in W={1,2}."""
    return SchedulingProblem([
        [2, 1],
        [1, 2],
        [2, 2],
        [1, 1],
    ])
