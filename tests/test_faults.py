"""Unit tests for repro.network.faults."""

import random

import pytest

from repro.network.faults import FaultPlan, obedient_plan
from repro.network.message import Message
from repro.network.simulator import SynchronousNetwork


def make_message(sender=0, recipient=1):
    return Message(sender=sender, recipient=recipient, kind="x", payload="p")


class TestFaultPlan:
    def test_obedient_plan_passes_everything(self):
        plan = obedient_plan()
        message = make_message()
        assert plan.transform(message, 0) is message

    def test_crash_stop_from_round(self):
        plan = FaultPlan(crashed_from_round={0: 2})
        assert not plan.sender_is_crashed(0, 1)
        assert plan.sender_is_crashed(0, 2)
        assert plan.sender_is_crashed(0, 5)
        assert not plan.sender_is_crashed(1, 5)

    def test_crashed_sender_messages_dropped(self):
        plan = FaultPlan(crashed_from_round={0: 0})
        assert plan.transform(make_message(), 0) is None

    def test_dropped_link(self):
        plan = FaultPlan(dropped_links={(0, 1)})
        assert plan.transform(make_message(0, 1), 0) is None
        assert plan.transform(make_message(1, 0), 0) is not None

    def test_probabilistic_drop_requires_rng(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5, rng=random.Random(0))

    def test_probabilistic_drop_rate(self):
        plan = FaultPlan(drop_probability=0.5, rng=random.Random(7))
        survived = sum(
            1 for _ in range(400)
            if plan.transform(make_message(), 0) is not None
        )
        assert 140 < survived < 260

    def test_corruptor_rewrites(self):
        def corrupt(message):
            return Message(sender=message.sender, recipient=message.recipient,
                           kind=message.kind, payload="corrupted")

        plan = FaultPlan(corruptors={(0, 1): corrupt})
        assert plan.transform(make_message(0, 1), 0).payload == "corrupted"
        assert plan.transform(make_message(1, 0), 0).payload == "p"


class TestSimulatorIntegration:
    def test_crashed_agent_sends_nothing(self):
        plan = FaultPlan(crashed_from_round={0: 0})
        network = SynchronousNetwork(3, fault_plan=plan)
        network.send(0, 1, "x", None)
        network.send(2, 1, "y", None)
        network.deliver()
        inbox = network.receive(1)
        assert [m.sender for m in inbox] == [2]

    def test_crashed_broadcast_not_counted(self):
        plan = FaultPlan(crashed_from_round={0: 0})
        network = SynchronousNetwork(3, fault_plan=plan)
        network.publish(0, "x", None)
        network.deliver()
        assert network.metrics.point_to_point_messages == 0

    def test_dropped_link_still_counted_as_sent(self):
        plan = FaultPlan(dropped_links={(0, 1)})
        network = SynchronousNetwork(2, fault_plan=plan)
        network.send(0, 1, "x", None)
        delivered = network.deliver()
        assert delivered == 0
        assert network.metrics.point_to_point_messages == 1

    def test_broadcast_with_one_dropped_link_partially_delivers(self):
        plan = FaultPlan(dropped_links={(0, 1)})
        network = SynchronousNetwork(3, fault_plan=plan)
        network.publish(0, "x", None)
        network.deliver()
        assert network.receive(1) == []
        assert len(network.receive(2)) == 1

    def test_agent_crashing_mid_run(self):
        plan = FaultPlan(crashed_from_round={0: 1})
        network = SynchronousNetwork(2, fault_plan=plan)
        network.send(0, 1, "early", None)
        network.deliver()   # round 0: delivered
        network.send(0, 1, "late", None)
        network.deliver()   # round 1: crashed
        kinds = [m.kind for m in network.receive(1)]
        assert kinds == ["early"]
