"""Unit tests for repro.crypto.modular."""

import pytest

from repro.crypto.modular import (
    NULL_COUNTER,
    OperationCounter,
    metered,
    mod_add,
    mod_div,
    mod_exp,
    mod_inv,
    mod_mul,
    mod_sub,
)

P = 101  # a small prime for hand-checkable arithmetic


class TestArithmetic:
    def test_mod_add(self):
        assert mod_add(60, 50, P) == 9

    def test_mod_sub_wraps(self):
        assert mod_sub(3, 7, P) == P - 4

    def test_mod_mul(self):
        assert mod_mul(10, 11, P) == 110 % P

    def test_mod_exp_matches_pow(self):
        for base in (2, 3, 57):
            for exponent in (0, 1, 2, 17, 100):
                assert mod_exp(base, exponent, P) == pow(base, exponent, P)

    def test_mod_exp_zero_exponent(self):
        assert mod_exp(42, 0, P) == 1

    def test_mod_exp_negative_exponent_uses_inverse(self):
        value = mod_exp(3, -2, P)
        assert (value * pow(3, 2, P)) % P == 1

    def test_mod_exp_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            mod_exp(2, 3, 0)

    def test_mod_inv_roundtrip(self):
        for a in range(1, P):
            assert (a * mod_inv(a, P)) % P == 1

    def test_mod_inv_of_zero_fails(self):
        with pytest.raises(ZeroDivisionError):
            mod_inv(0, P)

    def test_mod_inv_non_coprime_fails(self):
        with pytest.raises(ZeroDivisionError):
            mod_inv(6, 9)

    def test_mod_inv_handles_values_above_modulus(self):
        assert (mod_inv(P + 3, P) * 3) % P == 1

    def test_mod_div(self):
        assert mod_div(10, 5, P) == (10 * mod_inv(5, P)) % P


class TestOperationCounter:
    def test_counts_multiplications(self):
        counter = OperationCounter()
        mod_mul(2, 3, P, counter)
        mod_mul(4, 5, P, counter)
        assert counter.multiplications == 2
        assert counter.multiplication_work == 2

    def test_counts_inversions_as_work(self):
        counter = OperationCounter()
        mod_inv(7, P, counter)
        assert counter.inversions == 1
        assert counter.multiplication_work == 1

    def test_exponentiation_work_is_square_and_multiply(self):
        counter = OperationCounter()
        # exponent 13 = 0b1101: 3 squarings + 2 multiplies = 5 work units
        mod_exp(2, 13, P, counter)
        assert counter.exponentiations == 1
        assert counter.multiplication_work == 5

    def test_exponent_one_costs_nothing(self):
        counter = OperationCounter()
        mod_exp(2, 1, P, counter)
        assert counter.multiplication_work == 0

    def test_exponent_work_scales_with_bits(self):
        small, large = OperationCounter(), OperationCounter()
        mod_exp(2, 2 ** 16 - 1, P, small)
        mod_exp(2, 2 ** 64 - 1, P, large)
        assert large.multiplication_work == pytest.approx(
            4 * small.multiplication_work, rel=0.05
        )

    def test_reset(self):
        counter = OperationCounter()
        mod_mul(2, 3, P, counter)
        counter.reset()
        assert counter.snapshot() == {
            "additions": 0,
            "multiplications": 0,
            "inversions": 0,
            "exponentiations": 0,
            "multiplication_work": 0,
        }

    def test_merge(self):
        a, b = OperationCounter(), OperationCounter()
        mod_mul(2, 3, P, a)
        mod_inv(5, P, b)
        a.merge(b)
        assert a.multiplications == 1
        assert a.inversions == 1
        assert a.multiplication_work == 2

    def test_null_counter_discards_everything(self):
        before = NULL_COUNTER.snapshot()
        mod_mul(2, 3, P, NULL_COUNTER)
        mod_exp(2, 100, P, NULL_COUNTER)
        assert NULL_COUNTER.snapshot() == before

    def test_metered_context_manager(self):
        with metered() as counter:
            mod_mul(2, 3, P, counter)
        assert counter.multiplications == 1
