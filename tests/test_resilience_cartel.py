"""Tests for the Open Problem 11 threshold and the cartel boundary."""

import pytest

from repro.analysis.cartel import (
    best_cartel_gain,
    cartel_experiment,
    price_inflation_rows,
)
from repro.analysis.resilience import (
    completion_with_deviators,
    resilience_sweep,
)
from repro.core.deviant import WrongAggregatesAgent
from repro.core.parameters import DMWParameters
from repro.scheduling.problem import SchedulingProblem


class TestResilienceThreshold:
    def test_threshold_matches_prediction(self, params5):
        """Open Problem 11: computable above the threshold, not below —
        and the threshold is exactly n - (sigma - y_min + 1)."""
        rows = resilience_sweep(params5)
        assert rows  # one row per bid level
        for row in rows:
            assert row.matches, row

    def test_threshold_grows_with_minimum_bid(self, params5):
        rows = resilience_sweep(params5)
        thresholds = [row.measured_threshold for row in rows]
        assert thresholds == sorted(thresholds)
        # Cheapest bid tolerates nothing; priciest tolerates w_k - 1.
        assert thresholds[0] == 0
        assert thresholds[-1] == params5.bid_values[-1] - 1

    def test_corrupting_equals_withholding(self, params5):
        """Excluded-because-invalid and excluded-because-absent hit the
        same resolution threshold."""
        withhold = resilience_sweep(params5)
        corrupt = resilience_sweep(params5,
                                   deviant_class=WrongAggregatesAgent)
        assert [(r.minimum_bid, r.measured_threshold) for r in withhold] \
            == [(r.minimum_bid, r.measured_threshold) for r in corrupt]

    def test_bounds_validated(self, params5):
        problem = SchedulingProblem([[2]] * 5)
        with pytest.raises(ValueError):
            completion_with_deviators(params5, problem, 5)
        with pytest.raises(ValueError):
            completion_with_deviators(params5, problem, -1)


class TestCartel:
    @pytest.fixture()
    def instance(self):
        # Agent 0 wins both tasks at second price 2 (set by agent 1).
        return SchedulingProblem([
            [1, 1],
            [2, 2],
            [3, 3],
            [3, 3],
            [3, 3],
        ])

    def test_price_inflation_cartel_profits(self, instance, params5):
        """The winner + price-setter cartel strictly gains jointly —
        the measured boundary of (unilateral) faithfulness."""
        rows = price_inflation_rows(instance, params5, winner=0,
                                    accomplice=1)
        outcome = cartel_experiment(instance, params5, (0, 1), rows)
        assert outcome.completed
        # Honest: winner paid 2 per task (utility 2); accomplice 0.
        assert outcome.honest_joint_utility == 2.0
        # Cartel: accomplice bids 3, winner now paid 3 per task.
        assert outcome.cartel_joint_utility == 4.0
        assert outcome.joint_gain == 2.0

    def test_individual_member_does_not_gain_alone(self, instance, params5):
        """Consistency with Theorem 5: the accomplice alone gains nothing
        (its gain is 0; the surplus lands on the winner, to be shared via
        a side payment outside the mechanism)."""
        rows = price_inflation_rows(instance, params5, winner=0,
                                    accomplice=1)
        solo = cartel_experiment(instance, params5, (1,),
                                 {1: rows[1]})
        assert solo.joint_gain <= 0

    def test_best_cartel_search_finds_the_pair(self, instance, params5):
        best = best_cartel_gain(instance, params5)
        assert best is not None
        assert best.joint_gain == 2.0
        assert 0 in best.members and 1 in best.members

    def test_no_cartel_when_second_price_maximal(self, params5):
        # Second prices are already w_k: inflation cannot help.
        instance = SchedulingProblem([
            [1],
            [3],
            [3],
            [3],
            [3],
        ])
        assert best_cartel_gain(instance, params5) is None
