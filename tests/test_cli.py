"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRun:
    def test_run_default(self, capsys):
        assert main(["run", "--agents", "5", "--tasks", "2"]) == 0
        out = capsys.readouterr().out
        assert "schedule:" in out
        assert "payments:" in out
        assert "second price" in out

    def test_run_with_audit(self, capsys):
        assert main(["run", "-n", "4", "-m", "1", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "audit: PASS" in out

    def test_run_from_instance_file(self, tmp_path, capsys):
        instance = tmp_path / "instance.json"
        instance.write_text(json.dumps([[2, 1], [1, 2], [2, 2], [1, 1],
                                        [3, 3]]))
        assert main(["run", "-n", "5", "--instance", str(instance)]) == 0
        out = capsys.readouterr().out
        assert "A1: [2, 1]" in out

    def test_instance_shape_mismatch(self, tmp_path):
        instance = tmp_path / "instance.json"
        instance.write_text(json.dumps([[1], [1]]))
        with pytest.raises(SystemExit):
            main(["run", "-n", "5", "--instance", str(instance)])

    def test_deterministic_given_seed(self, capsys):
        main(["run", "--seed", "7"])
        first = capsys.readouterr().out
        main(["run", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second


class TestOtherCommands:
    def test_minwork(self, capsys):
        assert main(["minwork", "-n", "4", "-m", "2"]) == 0
        assert "schedule:" in capsys.readouterr().out

    def test_faithfulness(self, capsys):
        assert main(["faithfulness", "-n", "4", "-m", "1"]) == 0
        out = capsys.readouterr().out
        assert "faithfulness violations: 0" in out
        assert "participation violations: 0" in out

    def test_privacy(self, capsys):
        assert main(["privacy", "-n", "4", "-m", "1"]) == 0
        assert "coalition size" in capsys.readouterr().out

    def test_leakage(self, capsys):
        assert main(["leakage", "-n", "5", "-m", "1"]) == 0
        out = capsys.readouterr().out
        assert "leaked bits" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTraceFlag:
    def test_run_with_trace(self, capsys):
        assert main(["run", "-n", "4", "-m", "1", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "protocol trace:" in out
        assert "auction_resolved" in out
        assert "payments_dispensed" in out


class TestOutputFlag:
    def test_outcome_written_and_loadable(self, tmp_path, capsys):
        from repro import serialization
        path = tmp_path / "outcome.json"
        assert main(["run", "-n", "4", "-m", "2", "--output",
                     str(path)]) == 0
        outcome = serialization.load(str(path))
        assert outcome.completed
        assert outcome.schedule.num_tasks == 2


class TestReproduceCommand:
    def test_quick_profile_reproduces_everything(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "SUMMARY" in out
        assert "no" not in [
            cell.strip() for line in out.splitlines()
            for cell in line.split("  ") if cell.strip() == "no"
        ]
        assert out.count("yes") >= 6

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "--profile", "galactic"])


class TestReproduceReport:
    def test_report_file_written(self, tmp_path, capsys):
        path = tmp_path / "report.txt"
        assert main(["reproduce", "--report", str(path)]) == 0
        text = path.read_text()
        assert "SUMMARY" in text
        assert "Table 1" in text
