"""Package hygiene: every module imports cleanly and exports what it says.

Guards against broken re-export lists, circular imports, and modules with
import-time side effects (e.g. an entry point that runs on import).
"""

import importlib
import pkgutil

import pytest

import repro


def all_module_names():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, "repro."):
        names.append(module.name)
    return names


@pytest.mark.parametrize("name", all_module_names())
def test_module_imports_cleanly(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", [
    "repro", "repro.core", "repro.crypto", "repro.mechanisms",
    "repro.network", "repro.scheduling", "repro.analysis", "repro.auctions",
])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), "%s.%s missing" % (name, symbol)


def test_subpackages_reachable_from_top_level():
    import repro.analysis
    import repro.auctions
    import repro.core
    import repro.crypto
    import repro.mechanisms
    import repro.network
    import repro.scheduling
    import repro.serialization


def test_version_is_set():
    assert repro.__version__
