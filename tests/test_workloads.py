"""Unit tests for repro.scheduling.workloads."""

import random

import pytest

from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem


class TestUniformRandom:
    def test_shape_and_range(self, rng):
        problem = workloads.uniform_random(4, 7, rng, low=2, high=9)
        assert problem.num_agents == 4
        assert problem.num_tasks == 7
        for i in range(4):
            for j in range(7):
                assert 2 <= problem.time(i, j) <= 9

    def test_deterministic_given_seed(self):
        a = workloads.uniform_random(3, 3, random.Random(1))
        b = workloads.uniform_random(3, 3, random.Random(1))
        assert a == b

    def test_invalid_bounds(self, rng):
        with pytest.raises(ValueError):
            workloads.uniform_random(2, 2, rng, low=0)
        with pytest.raises(ValueError):
            workloads.uniform_random(2, 2, rng, low=5, high=4)


class TestMachineCorrelated:
    def test_rows_are_proportional(self, rng):
        problem = workloads.machine_correlated(3, 5, rng)
        # t_i^j = r_j / s_i: the ratio between two agents' times is
        # constant across tasks.
        base = problem.time(0, 0) / problem.time(1, 0)
        for task in range(5):
            ratio = problem.time(0, task) / problem.time(1, task)
            assert ratio == pytest.approx(base)


class TestTaskCorrelated:
    def test_noise_bounded(self, rng):
        problem = workloads.task_correlated(4, 6, rng, noise=0.1)
        for task in range(6):
            column = problem.task_times(task)
            assert max(column) <= min(column) * (1.1 / 0.9) + 1e-9

    def test_invalid_noise(self, rng):
        with pytest.raises(ValueError):
            workloads.task_correlated(2, 2, rng, noise=1.0)


class TestBimodal:
    def test_only_two_levels(self, rng):
        problem = workloads.bimodal(4, 6, rng, fast=1, slow=9)
        values = {problem.time(i, j) for i in range(4) for j in range(6)}
        assert values <= {1.0, 9.0}


class TestAdversarial:
    def test_structure(self):
        problem = workloads.adversarial_for_minwork(4)
        assert problem.num_agents == 4
        assert problem.num_tasks == 4
        assert problem.time(0, 0) < problem.time(1, 0)

    def test_needs_two_agents(self):
        with pytest.raises(ValueError):
            workloads.adversarial_for_minwork(1)


class TestDiscretize:
    def test_values_land_in_bid_set(self, rng):
        continuous = workloads.uniform_random(4, 5, rng)
        discrete = workloads.discretize_to_bid_set(continuous, [1, 2, 3])
        values = {discrete.time(i, j) for i in range(4) for j in range(5)}
        assert values <= {1.0, 2.0, 3.0}

    def test_order_preserved_weakly(self, rng):
        continuous = workloads.uniform_random(4, 5, rng)
        discrete = workloads.discretize_to_bid_set(continuous, [1, 2, 3, 4])
        for j in range(5):
            column = continuous.task_times(j)
            mapped = discrete.task_times(j)
            for a in range(4):
                for b in range(4):
                    if column[a] < column[b]:
                        assert mapped[a] <= mapped[b]

    def test_constant_matrix_maps_to_lowest(self):
        constant = SchedulingProblem([[5, 5], [5, 5]])
        discrete = workloads.discretize_to_bid_set(constant, [2, 7])
        assert discrete.time(0, 0) == 2

    def test_extremes_map_to_extremes(self):
        problem = SchedulingProblem([[1, 100], [50, 60]])
        discrete = workloads.discretize_to_bid_set(problem, [1, 2, 3])
        assert discrete.time(0, 0) == 1
        assert discrete.time(0, 1) == 3

    def test_invalid_bid_set(self, rng):
        problem = workloads.uniform_random(2, 2, rng)
        with pytest.raises(ValueError):
            workloads.discretize_to_bid_set(problem, [])
        with pytest.raises(ValueError):
            workloads.discretize_to_bid_set(problem, [0, 1])


class TestRandomDiscrete:
    def test_values_from_bid_set(self, rng):
        problem = workloads.random_discrete(5, 4, [1, 3, 5], rng)
        values = {problem.time(i, j) for i in range(5) for j in range(4)}
        assert values <= {1.0, 3.0, 5.0}

    def test_invalid_bid_set(self, rng):
        with pytest.raises(ValueError):
            workloads.random_discrete(2, 2, [], rng)
        with pytest.raises(ValueError):
            workloads.random_discrete(2, 2, [-1, 2], rng)


class TestHeavyTailed:
    def test_positive_and_skewed(self, rng):
        problem = workloads.heavy_tailed(5, 40, rng)
        values = sorted(problem.time(i, j) for i in range(5)
                        for j in range(40))
        assert values[0] > 0
        # Heavy tail: the max dwarfs the median.
        assert values[-1] > 5 * values[len(values) // 2]

    def test_invalid_sigma(self, rng):
        with pytest.raises(ValueError):
            workloads.heavy_tailed(2, 2, rng, sigma=0)


class TestClusteredSpecialists:
    def test_specialists_are_fast_on_their_cluster(self, rng):
        problem = workloads.clustered_specialists(4, 10, rng,
                                                  num_clusters=2,
                                                  fast=1, slow=9)
        values = {problem.time(i, j) for i in range(4) for j in range(10)}
        assert values <= {1.0, 9.0}
        # Agents 0 and 2 share a specialty; their rows agree.
        assert problem.agent_times(0) == problem.agent_times(2)

    def test_invalid_clusters(self, rng):
        with pytest.raises(ValueError):
            workloads.clustered_specialists(2, 2, rng, num_clusters=0)

    def test_single_cluster_everyone_fast(self, rng):
        problem = workloads.clustered_specialists(3, 4, rng,
                                                  num_clusters=1)
        values = {problem.time(i, j) for i in range(3) for j in range(4)}
        assert values == {1.0}
