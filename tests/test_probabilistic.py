"""Probabilistic properties: the 1/q failure rate the paper cites.

Section 2.4 states that degree resolution "mistakenly succeeds with
probability 1/p" when tested below the true degree.  Our implementation
works over ``Z_q`` (DESIGN.md decision 1), so the rate is ``1/q`` — tiny
for real parameters, but *measurable* in a deliberately small field.
These tests measure it, which simultaneously validates that the
interpolation of an underdetermined polynomial is (near-)uniform.
"""

import random
from collections import Counter

import pytest

from repro.crypto.interpolation import interpolate_at_zero, resolve_degree
from repro.crypto.polynomials import Polynomial

SMALL_Q = 101  # tiny prime field: 1/q is observable
TRIALS = 4000


class TestFalsePositiveRate:
    def test_exact_degree_poly_never_false_positives(self):
        """A single encoding has a *non-zero* leading coefficient by
        construction, so the below-degree test never passes for it: the
        interpolant at zero is (leading coeff) * (non-zero constant)."""
        rng = random.Random(0)
        for _ in range(500):
            poly = Polynomial.random(5, SMALL_Q, rng)
            points = list(range(1, 6))  # 5 points: tests degree 4
            value = interpolate_at_zero(points,
                                        [poly.evaluate(x) for x in points],
                                        SMALL_Q)
            assert value != 0

    def test_summed_polys_false_positive_at_rate_one_over_q(self):
        """The protocol resolves SUMS (E = sum e_i): when two bidders tie
        on the minimum bid their leading coefficients can cancel, with
        probability ~ 1/q — the paper's cited failure rate, measured."""
        rng = random.Random(0)
        hits = 0
        for _ in range(TRIALS):
            total = (Polynomial.random(5, SMALL_Q, rng)
                     + Polynomial.random(5, SMALL_Q, rng))
            points = list(range(1, 6))  # 5 points: tests degree 4
            value = interpolate_at_zero(points,
                                        [total.evaluate(x) for x in points],
                                        SMALL_Q)
            hits += (value == 0)
        rate = hits / TRIALS
        # Leading coefficients cancel with probability 1/(q-1) ~ 0.01.
        assert 0.002 < rate < 0.030, rate

    def test_at_degree_test_always_passes(self):
        rng = random.Random(1)
        for _ in range(200):
            poly = Polynomial.random(5, SMALL_Q, rng)
            points = list(range(1, 7))  # 6 points: tests degree 5
            value = interpolate_at_zero(points,
                                        [poly.evaluate(x) for x in points],
                                        SMALL_Q)
            assert value == 0

    def test_resolution_error_is_always_underestimation(self):
        """When resolution errs (the 1/q event, via summed encodings), it
        reports a degree *below* the truth — i.e. DMW would report a
        too-high first price, never a too-low one."""
        rng = random.Random(2)
        underestimates, overestimates = 0, 0
        for _ in range(TRIALS):
            total = (Polynomial.random(5, SMALL_Q, rng)
                     + Polynomial.random(5, SMALL_Q, rng))
            if total.degree < 5:
                continue  # the cancellation itself; skip, counted above
            points = list(range(1, 9))
            resolved = resolve_degree(points,
                                      [total.evaluate(x) for x in points],
                                      SMALL_Q)
            if resolved < 5:
                underestimates += 1
            elif resolved > 5:
                overestimates += 1
        assert overestimates == 0
        assert 0 < underestimates < TRIALS * 0.10

    def test_interpolant_of_underdetermined_poly_is_spread_out(self):
        """The interpolated value below the degree is near-uniform over
        Z_q — the hiding property that keeps losing bids private."""
        rng = random.Random(3)
        values = Counter()
        for _ in range(TRIALS):
            poly = Polynomial.random(4, SMALL_Q, rng)
            points = [1, 2, 3]
            values[interpolate_at_zero(
                points, [poly.evaluate(x) for x in points], SMALL_Q)] += 1
        # Every residue shows up and no residue dominates.
        assert len(values) == SMALL_Q
        assert max(values.values()) < TRIALS * 0.05


class TestRealFieldRates:
    def test_no_false_positives_at_real_sizes(self, group_small):
        """At 40-bit q the 1/q event never shows in 300 trials."""
        q = group_small.group.q
        rng = random.Random(4)
        for _ in range(300):
            poly = Polynomial.random(4, q, rng)
            points = list(range(1, 5))
            value = interpolate_at_zero(points,
                                        [poly.evaluate(x) for x in points],
                                        q)
            assert value != 0
