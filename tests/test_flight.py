"""Flight recorder: message-level events, dumps, and the Chrome trace.

Four contracts (docs/OBSERVABILITY.md, "Flight recorder"):

1. **Message accounting** — ``send`` + ``retransmit`` events equal
   ``NetworkMetrics.point_to_point_messages`` exactly, run for run, and
   the Chrome-trace exporter emits exactly one ``cat: "message"``
   instant per counted message.
2. **Zero perturbation** — attaching a recorder changes no schedule,
   payment, counter, or network total.
3. **Driver equivalence** — the process-pool driver merges its workers'
   flight logs into summaries identical to the sequential driver's.
4. **Post-mortem completeness** — a degraded run's dump-on-abort
   document contains the quarantined auction's final message events,
   and retry-path events link back to the original send.
"""

import json
import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.network.asynchronous import RetryPolicy, TimeoutNetwork
from repro.network.faults import FaultPlan
from repro.network.latency import LatencyModel
from repro.network.simulator import SynchronousNetwork
from repro.obs import (
    NULL_FLIGHT,
    FlightEvent,
    FlightRecorder,
    SpanRecorder,
    run_report,
    to_chrome_trace,
    validate_run_report,
    write_chrome_trace,
)
from repro.obs.flight import (
    EVENT_DELIVER,
    EVENT_DROP,
    EVENT_RECOVERY,
    EVENT_RETRANSMIT,
    EVENT_SEND,
    MESSAGE_EVENT_TYPES,
)


def make_agents(params, problem, seed=0):
    master = random.Random(seed)
    return [
        DMWAgent(index, params,
                 [int(problem.time(index, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(params.num_agents)
    ]


def flight_run(params, problem, seed=0, parallel=False, workers=None,
               observer=None, network=None, degraded=False):
    flight = FlightRecorder()
    protocol = DMWProtocol(params, make_agents(params, problem, seed),
                           observer=observer, network=network,
                           flight=flight)
    outcome = protocol.execute(problem.num_tasks, parallel=parallel,
                               workers=workers, degraded=degraded)
    return outcome, protocol, flight


# ---------------------------------------------------------------------------
# Recorder unit behaviour
# ---------------------------------------------------------------------------

class TestRecorder:
    def test_record_and_round_trip(self):
        flight = FlightRecorder(clock=lambda: 1.0)
        event = flight.record(EVENT_SEND, round_index=3, kind="bid",
                              sender=0, receiver=2, field_elements=4)
        assert event.seq == 0 and event.task is None
        again = FlightEvent.from_dict(event.to_dict())
        assert again == event

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_ring_eviction_keeps_tallies_exact(self):
        flight = FlightRecorder(capacity=3, clock=lambda: 0.0)
        for index in range(10):
            flight.record(EVENT_SEND, round_index=index, kind="bid",
                          sender=0, receiver=1)
        assert len(flight) == 3
        assert [event.seq for event in flight] == [7, 8, 9]
        summary = flight.summary()
        assert summary["events_recorded"] == 10
        assert summary["events_retained"] == 3
        assert summary["by_type"] == {EVENT_SEND: 10}
        assert summary["messages"] == 10

    def test_task_attribution_and_find(self):
        flight = FlightRecorder(clock=lambda: 0.0)
        flight.current_task = 4
        flight.record(EVENT_SEND, round_index=0, kind="bid",
                      sender=1, receiver=2)
        flight.current_task = None
        flight.record(EVENT_SEND, round_index=1, kind="payment_claim",
                      sender=1, receiver=None)
        assert [e.task for e in flight] == [4, None]
        assert len(flight.find(task=4)) == 1
        assert len(flight.find(kind="payment_claim")) == 1

    def test_null_flight_records_nothing(self):
        before = len(NULL_FLIGHT)
        assert NULL_FLIGHT.record(EVENT_SEND, round_index=0, kind="bid",
                                  sender=0, receiver=1) is None
        assert not NULL_FLIGHT.enabled
        assert len(NULL_FLIGHT) == before == 0

    def test_ingest_remaps_seq_link_and_span(self):
        parent = FlightRecorder(clock=lambda: 0.0)
        parent.record(EVENT_SEND, round_index=0, kind="bid",
                      sender=0, receiver=1)
        worker = FlightRecorder(clock=lambda: 0.0)
        sent = worker.record(EVENT_SEND, round_index=1, kind="bid",
                             sender=1, receiver=2)
        worker.record(EVENT_RETRANSMIT, round_index=1, kind="bid",
                      sender=1, receiver=2, attempt=1, link=sent.seq)
        parent.ingest(worker.to_list(), span_parent=17,
                      source_summary=worker.summary())
        events = parent.events
        assert [event.seq for event in events] == [0, 1, 2]
        assert events[2].link == events[1].seq
        assert events[1].span_id == 17
        assert parent.summary()["messages"] == 3


# ---------------------------------------------------------------------------
# Contract 1 + 2: accounting and zero perturbation (sequential driver)
# ---------------------------------------------------------------------------

class TestSequentialRun:
    def test_message_events_match_network_metrics(self, params5,
                                                  problem53):
        outcome, protocol, flight = flight_run(params5, problem53)
        assert outcome.completed
        counted = outcome.network_metrics.point_to_point_messages
        summary = flight.summary()
        assert summary["messages"] == counted
        assert len(flight.message_events()) == counted
        assert summary["by_type"][EVENT_SEND] == counted
        # Fault-free synchronous run: every send is delivered.
        assert summary["by_type"][EVENT_DELIVER] == counted
        # by_kind tallies events (send + deliver); the *send* events per
        # kind reproduce NetworkMetrics' per-kind message counts.
        sends_by_kind = {}
        for event in flight.find(EVENT_SEND):
            sends_by_kind[event.kind] = sends_by_kind.get(event.kind,
                                                          0) + 1
        assert sends_by_kind == dict(outcome.network_metrics.by_kind)

    def test_flight_recording_does_not_perturb(self, params5, problem53):
        bare = DMWProtocol(params5, make_agents(params5, problem53))
        reference = bare.execute(problem53.num_tasks)
        outcome, _, _ = flight_run(params5, problem53)
        assert list(outcome.schedule.assignment) \
            == list(reference.schedule.assignment)
        assert list(outcome.payments) == list(reference.payments)
        assert outcome.network_metrics.as_dict() \
            == reference.network_metrics.as_dict()

    def test_events_carry_task_and_span_attribution(self, params5,
                                                    problem53):
        recorder = SpanRecorder()
        outcome, protocol, flight = flight_run(params5, problem53,
                                               observer=recorder)
        tasks = {event.task for event in flight}
        assert set(range(problem53.num_tasks)) <= tasks
        assert None in tasks  # run-level payment claims
        span_ids = {span.span_id for span in recorder}
        assert all(event.span_id in span_ids for event in flight)

    def test_report_v4_flight_summary(self, params5, problem53):
        recorder = SpanRecorder()
        outcome, protocol, flight = flight_run(params5, problem53,
                                               observer=recorder)
        document = run_report(outcome, agents=protocol.agents,
                              recorder=recorder, parameters=params5,
                              flight=flight)
        validate_run_report(document)
        assert document["version"] == 4
        assert document["flight_summary"] == flight.summary()


# ---------------------------------------------------------------------------
# Contract 3: process-pool equivalence
# ---------------------------------------------------------------------------

class TestPoolEquivalence:
    def test_pool_flight_summary_matches_sequential(self, params5,
                                                    problem53):
        sequential = flight_run(params5, problem53,
                                observer=SpanRecorder())
        pooled = flight_run(params5, problem53, observer=SpanRecorder(),
                            parallel=True, workers=2)
        seq_outcome, _, seq_flight = sequential
        pool_outcome, _, pool_flight = pooled
        assert list(seq_outcome.schedule.assignment) \
            == list(pool_outcome.schedule.assignment)
        assert list(seq_outcome.payments) == list(pool_outcome.payments)
        assert seq_flight.summary() == pool_flight.summary()

    def test_pool_merge_keeps_seqs_unique_and_links_resolvable(
            self, params5, problem53):
        _, _, flight = flight_run(params5, problem53,
                                  observer=SpanRecorder(),
                                  parallel=True, workers=2)
        seqs = [event.seq for event in flight]
        assert len(seqs) == len(set(seqs))
        known = set(seqs)
        assert all(event.link in known for event in flight
                   if event.link is not None)

    def test_pool_flight_spans_reference_grafted_spans(self, params5,
                                                       problem53):
        recorder = SpanRecorder()
        _, _, flight = flight_run(params5, problem53, observer=recorder,
                                  parallel=True, workers=2)
        span_ids = {span.span_id for span in recorder}
        dangling = [event for event in flight
                    if event.span_id is not None
                    and event.span_id not in span_ids]
        assert dangling == []


# ---------------------------------------------------------------------------
# Contract 4a: degraded-run post-mortem dump (resilience integration)
# ---------------------------------------------------------------------------

def drop_task1_aggregates(message):
    if message.kind == "lambda_psi" and message.payload[0] == 1:
        return None
    return message


def task1_fault_plan(num_agents=5):
    links = {(s, r): drop_task1_aggregates
             for s in range(num_agents)
             for r in range(num_agents + 1) if s != r}
    return FaultPlan(corruptors=links)


class TestDegradedDump:
    def test_quarantine_dumps_the_faulty_auctions_events(
            self, params5, problem53, tmp_path):
        dump_path = tmp_path / "crash.json"
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        flight = FlightRecorder()
        flight.dump_on_abort = str(dump_path)
        protocol = DMWProtocol(params5,
                               make_agents(params5, problem53),
                               network=network, flight=flight)
        outcome = protocol.execute(problem53.num_tasks, degraded=True)
        assert outcome.quarantined_tasks == (1,)
        assert flight.abort_dumps == [str(dump_path)]
        dump = json.loads(dump_path.read_text())
        assert dump["type"] == "dmw_flight_dump"
        assert "task_quarantined" in dump["reason"]
        assert "task 1" in dump["reason"]
        task1 = [event for event in dump["events"]
                 if event["task"] == 1]
        assert task1, "dump must contain the quarantined auction's events"
        # The auction died on its withheld aggregation round: the dump
        # shows the fault plan eating task 1's lambda_psi copies.
        drops = [event for event in task1
                 if event["type"] == EVENT_DROP
                 and event["kind"] == "lambda_psi"
                 and event["detail"] == "fault_plan"]
        assert drops, "the fatal lambda_psi drops must be in the dump"

    def test_fault_free_run_writes_no_dump(self, params5, problem53,
                                           tmp_path):
        dump_path = tmp_path / "never.json"
        flight = FlightRecorder()
        flight.dump_on_abort = str(dump_path)
        protocol = DMWProtocol(params5,
                               make_agents(params5, problem53),
                               flight=flight)
        outcome = protocol.execute(problem53.num_tasks)
        assert outcome.completed
        assert not dump_path.exists()
        assert flight.abort_dumps == []


# ---------------------------------------------------------------------------
# Contract 4b: retry-path events link back to the original send
# ---------------------------------------------------------------------------

class TestRetryLinks:
    def _slow_link_network(self, seed=0):
        # Link (0, 1) delays exactly 0.15s: over the 0.1 barrier but
        # inside the first grace window (matching tests/test_retry.py).
        model = LatencyModel(random.Random(seed), base=0.001, jitter=0.0,
                             per_link_scale={(0, 1): 150.0})
        return TimeoutNetwork(3, model, round_timeout=0.1,
                              retry_policy=RetryPolicy(max_attempts=2))

    def test_retransmission_chain_is_linked(self):
        network = self._slow_link_network()
        flight = FlightRecorder()
        network.flight = flight
        network.send(0, 1, "x", None)
        assert network.deliver() == 1
        sends = flight.find(EVENT_SEND)
        retransmits = flight.find(EVENT_RETRANSMIT)
        recoveries = flight.find(EVENT_RECOVERY)
        assert len(sends) == len(retransmits) == len(recoveries) == 1
        assert retransmits[0].link == sends[0].seq
        assert retransmits[0].attempt == 1
        assert recoveries[0].link == sends[0].seq
        # send + retransmit both charge the metrics (full price).
        assert flight.summary()["messages"] \
            == network.metrics.point_to_point_messages == 2
        assert network.metrics.retransmissions == 1

    def test_exhausted_retries_end_in_a_linked_drop(self):
        model = LatencyModel(random.Random(0), base=0.001, jitter=0.0,
                             per_link_scale={(0, 1): 100000.0})
        network = TimeoutNetwork(3, model, round_timeout=0.1,
                                 retry_policy=RetryPolicy(max_attempts=2))
        flight = FlightRecorder()
        network.flight = flight
        network.send(0, 1, "x", None)
        assert network.deliver() == 0
        sends = flight.find(EVENT_SEND)
        drops = flight.find(EVENT_DROP)
        assert len(sends) == 1 and len(drops) == 1
        assert drops[0].link == sends[0].seq
        assert drops[0].detail == "late"
        assert flight.find(EVENT_RECOVERY) == []


# ---------------------------------------------------------------------------
# Chrome trace exporter
# ---------------------------------------------------------------------------

class TestChromeTrace:
    def test_one_message_instant_per_counted_message(self, params5,
                                                     problem53):
        recorder = SpanRecorder()
        outcome, protocol, flight = flight_run(params5, problem53,
                                               observer=recorder)
        trace = to_chrome_trace(recorder=recorder, flight=flight)
        events = trace["traceEvents"]
        assert isinstance(events, list) and events
        messages = [e for e in events if e.get("cat") == "message"]
        assert len(messages) \
            == outcome.network_metrics.point_to_point_messages
        assert all(e["args"]["type"] in MESSAGE_EVENT_TYPES
                   for e in messages)

    def test_spans_render_on_the_protocol_track(self, params5,
                                                problem53):
        recorder = SpanRecorder()
        _, _, flight = flight_run(params5, problem53, observer=recorder)
        trace = to_chrome_trace(recorder=recorder, flight=flight)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(list(recorder))
        assert all(e["tid"] == 0 for e in complete)
        assert all(e["dur"] >= 0 for e in complete)
        # Message instants ride the sender's per-agent track.
        instants = [e for e in trace["traceEvents"]
                    if e.get("cat") in ("message", "delivery")]
        assert all(e["tid"] == e["args"]["sender"] + 1 for e in instants)

    def test_written_file_is_valid_trace_event_json(self, params5,
                                                    problem53, tmp_path):
        recorder = SpanRecorder()
        _, _, flight = flight_run(params5, problem53, observer=recorder)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), recorder=recorder, flight=flight)
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        names = {e["name"] for e in document["traceEvents"]
                 if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= names
