"""Tests for the Open Problem 10 strawman (naive distributed MinWork)."""

import random

import pytest

from repro.core.naive import NaiveAgent, NaiveDistributedMinWork, run_naive
from repro.core.parameters import DMWParameters
from repro.core.protocol import run_dmw
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [2, 1],
        [1, 3],
        [3, 2],
        [2, 2],
        [3, 3],
    ])


class TestCorrectness:
    def test_matches_centralized(self, problem):
        outcome = run_naive(problem)
        expected = MinWork().run(truthful_bids(problem))
        assert outcome.completed
        assert outcome.schedule == expected.schedule
        assert outcome.payments == expected.payments

    def test_matches_dmw(self, problem, params5):
        naive = run_naive(problem)
        dmw = run_dmw(problem, parameters=params5)
        assert naive.schedule == dmw.schedule
        assert naive.payments == dmw.payments

    def test_needs_two_agents(self):
        with pytest.raises(ValueError):
            NaiveDistributedMinWork([NaiveAgent(0, [1])])

    def test_bid_row_length_checked(self, problem):
        agents = [NaiveAgent(i, problem.agent_times(i)) for i in range(5)]

        class ShortRow(NaiveAgent):
            def choose_bids(self):
                return [1.0]

        agents[0] = ShortRow(0, problem.agent_times(0))
        protocol = NaiveDistributedMinWork(agents)
        with pytest.raises(ValueError):
            protocol.execute(2)


class TestStrategicModel:
    def test_silent_agent_detected(self, problem):
        agents = [NaiveAgent(i, problem.agent_times(i)) for i in range(5)]

        class Silent(NaiveAgent):
            def choose_bids(self):
                return None

        agents[2] = Silent(2, problem.agent_times(2))
        protocol = NaiveDistributedMinWork(agents)
        outcome = protocol.execute(2)
        assert not outcome.completed
        assert outcome.abort.offender == 2

    def test_false_payment_claim_voids(self, problem):
        agents = [NaiveAgent(i, problem.agent_times(i)) for i in range(5)]

        class Inflator(NaiveAgent):
            def compute_outcome(self, num_agents):
                result = super().compute_outcome(num_agents)
                from repro.mechanisms.base import MechanismResult
                inflated = list(result.payments)
                inflated[self.index] += 7
                return MechanismResult(schedule=result.schedule,
                                       payments=tuple(inflated))

        agents[1] = Inflator(1, problem.agent_times(1))
        protocol = NaiveDistributedMinWork(agents)
        outcome = protocol.execute(2)
        assert not outcome.completed
        assert outcome.abort.phase == "payments"


class TestTheDeltaDMWBuys:
    def test_naive_exposes_every_bid_to_everyone(self, problem):
        """The privacy delta: after one round, every agent knows every
        bid — coalition size 1 'exposes' 100% of bids."""
        agents = [NaiveAgent(i, problem.agent_times(i)) for i in range(5)]
        protocol = NaiveDistributedMinWork(agents)
        protocol.execute(2)
        for observer in agents:
            assert set(observer.observed_bids) == set(range(5))
            for target in range(5):
                assert observer.observed_bids[target] == \
                    problem.agent_times(target)

    def test_naive_is_computationally_cheaper(self, problem, params5):
        naive = run_naive(problem)
        dmw = run_dmw(problem, parameters=params5)
        assert naive.max_agent_work * 50 < dmw.max_agent_work

    def test_message_volume_same_order(self, problem, params5):
        """Both pay the broadcast bill: the gap is a constant factor, not
        a factor of n."""
        naive = run_naive(problem)
        dmw = run_dmw(problem, parameters=params5)
        ratio = (dmw.network_metrics.point_to_point_messages
                 / naive.network_metrics.point_to_point_messages)
        assert 1 < ratio < 30
