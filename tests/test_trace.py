"""Tests for repro.core.trace (structured protocol traces)."""

import random

import pytest

from repro.analysis.faithfulness import honest_factory
from repro.core.agent import DMWAgent
from repro.core.deviant import WrongAggregatesAgent
from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol
from repro.core.trace import NULL_TRACE, ProtocolTrace, TraceEvent
from repro.scheduling.problem import SchedulingProblem


def run_traced(params, problem, deviant_index=None, seed=0):
    master = random.Random(seed)
    agents = []
    for index in range(params.num_agents):
        rng = random.Random(master.getrandbits(64))
        values = [int(problem.time(index, j))
                  for j in range(problem.num_tasks)]
        if index == deviant_index:
            agents.append(WrongAggregatesAgent(index, params, values,
                                               rng=rng))
        else:
            agents.append(DMWAgent(index, params, values, rng=rng))
    trace = ProtocolTrace()
    protocol = DMWProtocol(params, agents, trace=trace)
    outcome = protocol.execute(problem.num_tasks)
    return outcome, trace


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [3, 2],
        [2, 3],
        [3, 3],
        [2, 2],
        [3, 3],
    ])


class TestTraceObject:
    def test_record_and_query(self):
        trace = ProtocolTrace()
        trace.record("phase", task=0, name="bidding")
        trace.record("phase", task=1, name="bidding")
        trace.record("abort", reason="x")
        assert len(trace) == 3
        assert len(trace.events(kind="phase")) == 2
        assert len(trace.events(task=1)) == 1
        assert trace.kinds() == ["phase", "phase", "abort"]

    def test_render(self):
        trace = ProtocolTrace()
        trace.record("winner", task=2, agent=4)
        text = trace.render()
        assert "task 2" in text
        assert "winner" in text
        assert "agent=4" in text

    def test_null_trace_discards(self):
        NULL_TRACE.record("anything", task=0)
        assert len(NULL_TRACE) == 0

    def test_event_sequence_monotone(self):
        trace = ProtocolTrace()
        for index in range(5):
            trace.record("e")
        sequences = [event.sequence for event in trace]
        assert sequences == list(range(5))


class TestEventEncoding:
    def test_to_dict_from_dict_round_trip(self):
        event = TraceEvent(sequence=7, task=2, kind="winner",
                           detail={"agent": 4, "price": 3},
                           timestamp=1.25)
        encoded = event.to_dict()
        assert encoded == {
            "sequence": 7,
            "task": 2,
            "kind": "winner",
            "detail": {"agent": 4, "price": 3},
            "timestamp_s": 1.25,
        }
        assert TraceEvent.from_dict(encoded) == event

    def test_from_dict_defaults_missing_timestamp(self):
        # Hand-built / legacy documents may omit timestamp_s.
        event = TraceEvent.from_dict(
            {"sequence": 0, "task": None, "kind": "e", "detail": {}})
        assert event.timestamp == 0.0

    def test_trace_list_round_trip(self):
        trace = ProtocolTrace()
        trace.record("phase", task=0, name="bidding")
        trace.record("abort", reason="x")
        restored = ProtocolTrace.from_list(trace.to_list())
        assert list(restored) == list(trace)

    def test_recorded_timestamps_are_monotone(self):
        trace = ProtocolTrace()
        for _ in range(4):
            trace.record("e")
        stamps = [event.timestamp for event in trace]
        assert stamps == sorted(stamps)
        assert all(stamp >= 0.0 for stamp in stamps)


class TestRenderWidth:
    def test_default_width_is_three(self):
        assert TraceEvent(0, None, "e", {}).render().startswith("[000]")

    def test_render_honours_explicit_width(self):
        line = TraceEvent(1234, None, "e", {}).render(sequence_width=5)
        assert line.startswith("[01234]")

    def test_long_trace_widens_sequence_column(self):
        trace = ProtocolTrace()
        for _ in range(1001):  # sequences 0..1000: four digits
            trace.record("e")
        lines = trace.render().splitlines()
        assert lines[0].startswith("[0000]")
        assert lines[-1].startswith("[1000]")
        # Every line keeps the same column width, so the timeline aligns.
        assert len({line.index("]") for line in lines}) == 1

    def test_empty_trace_renders_empty(self):
        assert ProtocolTrace().render() == ""


class TestProtocolIntegration:
    def test_honest_run_event_structure(self, params5, problem):
        outcome, trace = run_traced(params5, problem)
        assert outcome.completed
        # One start + one resolution per task, one payments event, no
        # complaints or aborts.
        assert len(trace.events(kind="auction_start")) == 2
        assert len(trace.events(kind="auction_resolved")) == 2
        assert len(trace.events(kind="payments_dispensed")) == 1
        assert trace.events(kind="complaints") == []
        assert trace.events(kind="abort") == []

    def test_resolution_details_match_outcome(self, params5, problem):
        outcome, trace = run_traced(params5, problem)
        for transcript in outcome.transcripts:
            events = trace.events(kind="auction_resolved",
                                  task=transcript.task)
            assert len(events) == 1
            detail = events[0].detail
            assert detail["first_price"] == transcript.first_price
            assert detail["winner"] == transcript.winner
            assert detail["second_price"] == transcript.second_price

    def test_deviant_run_records_complaints(self, params5, problem):
        # Min bid 2 leaves resolution slack, so the run completes after
        # complaints exclude the corrupted aggregates.
        outcome, trace = run_traced(params5, problem, deviant_index=4)
        assert outcome.completed
        complaint_events = trace.events(kind="complaints")
        assert complaint_events
        assert all(4 in event.detail["accused"]
                   for event in complaint_events)

    def test_aborted_run_records_abort(self, params5):
        problem = SchedulingProblem([[1], [2], [3], [2], [3]])
        outcome, trace = run_traced(params5, problem, deviant_index=2)
        assert not outcome.completed
        aborts = trace.events(kind="abort")
        assert len(aborts) == 1
        assert aborts[0].detail["phase"] == "allocating"
        # No payments event after an abort.
        assert trace.events(kind="payments_dispensed") == []

    def test_complaints_precede_resolution(self, params5, problem):
        _, trace = run_traced(params5, problem, deviant_index=4)
        for task in range(2):
            kinds = [event.kind for event in trace.events(task=task)]
            if "complaints" in kinds and "auction_resolved" in kinds:
                assert kinds.index("complaints") < \
                    kinds.index("auction_resolved")

    def test_tracing_off_by_default(self, params5, problem):
        master = random.Random(0)
        agents = [DMWAgent(i, params5,
                           [int(problem.time(i, j)) for j in range(2)],
                           rng=random.Random(master.getrandbits(64)))
                  for i in range(5)]
        protocol = DMWProtocol(params5, agents)
        protocol.execute(2)
        assert len(protocol.trace) == 0  # the shared NULL_TRACE
