"""Process-pool execution engine: differential equivalence and resume.

The tentpole acceptance criteria (ISSUE 5):

* ``execute(parallel=True, workers=k)`` is **bit-identical** to the
  sequential driver for ``k`` in {1, 2, 4} — same schedule, payments,
  transcripts, per-agent operation counters, and network totals — on
  both a wide instance (n=12, m=2) and a task-heavy one (n=8, m=8);
* merged ``cache_stats`` are identical for every worker count (the
  deterministic per-task sums; see ``docs/PERFORMANCE.md`` for why they
  differ from the sequential shared-cache numbers);
* a parallel run killed between frontier checkpoints resumes to an
  outcome identical to the uninterrupted parallel run, ``cache_stats``
  included;
* the merged observability export passes ``validate_run_report`` —
  the grafted worker spans still partition the run totals exactly;
* the CLI reaches the pool driver (``--parallel --workers`` and the
  formerly rejected ``--parallel --checkpoint`` combination).
"""

import json
import random

import pytest

import repro.parallel as parallel_mod
from repro import serialization
from repro.cli import main as cli_main
from repro.core.agent import DMWAgent
from repro.core.exceptions import ParameterError
from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol
from repro.core.trace import ProtocolTrace
from repro.crypto.groups import fixture_group
from repro.obs import SpanRecorder, run_report
from repro.obs.export import validate_run_report
from repro.scheduling.problem import SchedulingProblem

#: The two acceptance shapes: wide (n=12, m=2) and task-heavy (n=8, m=8).
SHAPES = ((12, 2), (8, 8))

_PARAMS_CACHE = {}


def params_for(num_agents):
    if num_agents not in _PARAMS_CACHE:
        _PARAMS_CACHE[num_agents] = DMWParameters.generate(
            num_agents, fault_bound=1, group_parameters=fixture_group("small"))
    return _PARAMS_CACHE[num_agents]


def make_problem(params, num_tasks, seed=31):
    rng = random.Random(seed)
    width = len(params.bid_values)
    return SchedulingProblem([
        [rng.randrange(1, width + 1) for _ in range(num_tasks)]
        for _ in range(params.num_agents)
    ])


def build_protocol(params, problem, seed=7, trace=None, observer=None):
    master = random.Random(seed)
    agents = [
        DMWAgent(index, params,
                 [int(problem.time(index, task))
                  for task in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(params.num_agents)
    ]
    return DMWProtocol(params, agents, trace=trace, observer=observer)


def outcome_signature(outcome):
    """Everything the differential comparison pins down bit-for-bit."""
    return (
        outcome.completed,
        list(outcome.schedule.assignment),
        list(outcome.payments),
        outcome.transcripts,
        outcome.agent_operations,
        outcome.network_metrics.as_dict(),
    )


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("shape", SHAPES,
                             ids=["n12m2", "n8m8"])
    def test_pool_is_bit_identical_to_sequential(self, shape):
        num_agents, num_tasks = shape
        params = params_for(num_agents)
        problem = make_problem(params, num_tasks)
        sequential = build_protocol(params, problem).execute(num_tasks)
        expected = outcome_signature(sequential)
        cache_stats_by_workers = {}
        for workers in (1, 2, 4):
            pooled = build_protocol(params, problem).execute(
                num_tasks, parallel=True, workers=workers)
            assert outcome_signature(pooled) == expected
            assert pooled.parallelism["workers"] == workers
            assert pooled.parallelism["tasks_pooled"] == num_tasks
            cache_stats_by_workers[workers] = pooled.cache_stats
        # Merged cache statistics are the per-task sums — identical for
        # every worker count (though not equal to the sequential driver's
        # shared-cache numbers, which enjoy cross-task hits).
        assert (cache_stats_by_workers[1] == cache_stats_by_workers[2]
                == cache_stats_by_workers[4])

    def test_merged_trace_replays_the_sequential_event_log(self):
        params = params_for(5)
        problem = make_problem(params, 3)
        seq_trace = ProtocolTrace()
        build_protocol(params, problem, trace=seq_trace).execute(3)
        pool_trace = ProtocolTrace()
        build_protocol(params, problem, trace=pool_trace).execute(
            3, parallel=True, workers=2)

        def structural(events):
            # Wall-clock timestamps differ run to run; everything else —
            # sequence numbers, order, kinds, tasks, details — must match.
            return [{key: value for key, value in event.items()
                     if key != "timestamp_s"} for event in events]

        assert structural(pool_trace.to_list()) == \
            structural(seq_trace.to_list())

    def test_round_index_sums_back_to_the_sequential_total(self):
        params = params_for(5)
        problem = make_problem(params, 3)
        sequential = build_protocol(params, problem)
        sequential.execute(3)
        pooled = build_protocol(params, problem)
        pooled.execute(3, parallel=True, workers=2)
        assert pooled.network.round_index == sequential.network.round_index


class TestKillAndResume:
    def test_killed_parallel_run_resumes_to_identical_outcome(
            self, tmp_path):
        """Crash after the second merged shard; resume must reproduce the
        uninterrupted parallel outcome exactly, merged cache_stats
        included."""
        params = params_for(8)
        problem = make_problem(params, 8)
        path = str(tmp_path / "cp.json")
        baseline = build_protocol(params, problem).execute(
            8, parallel=True, workers=2)

        class Crash(Exception):
            pass

        def crash_after_task_1(result):
            if result.task == 1:
                raise Crash()

        parallel_mod._POST_MERGE_HOOK = crash_after_task_1
        try:
            with pytest.raises(Crash):
                build_protocol(params, problem).execute(
                    8, parallel=True, workers=2, checkpoint_path=path)
        finally:
            parallel_mod._POST_MERGE_HOOK = None

        loaded = serialization.load_checkpoint(path)
        assert loaded.completed_set() == {0, 1}
        assert loaded.cache_state["stats"]
        resumed = build_protocol(params, problem).execute(
            8, parallel=True, workers=2, resume=loaded)
        assert outcome_signature(resumed) == outcome_signature(baseline)
        assert resumed.cache_stats == baseline.cache_stats

    def test_checkpoint_document_is_format_version_4(self, tmp_path):
        params = params_for(5)
        problem = make_problem(params, 3)
        path = str(tmp_path / "cp.json")
        build_protocol(params, problem).execute(
            3, parallel=True, workers=2, checkpoint_path=path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["version"] == serialization.FORMAT_VERSION
        assert sorted(document["completed_tasks"]) == [0, 1, 2]
        assert document["cache_state"]["stats"]


class TestMergedObservability:
    def test_merged_run_report_validates(self):
        """The grafted worker spans must keep the phase-partition
        invariant: per-phase deltas sum exactly to the run totals."""
        params = params_for(5)
        problem = make_problem(params, 3)
        trace = ProtocolTrace()
        recorder = SpanRecorder()
        protocol = build_protocol(params, problem, trace=trace,
                                  observer=recorder)
        outcome = protocol.execute(3, parallel=True, workers=2)
        document = run_report(outcome, agents=protocol.agents, trace=trace,
                              recorder=recorder, parameters=params)
        validate_run_report(document)
        assert document["parallelism"]["workers"] == 2
        # One grafted task span (with its four phases) per auction, plus
        # the parent's run + payments spans.
        task_spans = [s for s in document["spans"] if s["kind"] == "task"]
        assert sorted(s["task"] for s in task_spans) == [0, 1, 2]
        phase_names = {s["name"] for s in document["spans"]
                       if s["kind"] == "phase"}
        assert phase_names == {"bidding", "aggregation", "disclosure",
                               "resolution", "payments"}

    def test_span_ids_are_unique_after_grafting(self):
        params = params_for(5)
        problem = make_problem(params, 3)
        recorder = SpanRecorder()
        build_protocol(params, problem, observer=recorder).execute(
            3, parallel=True, workers=2)
        ids = [span.span_id for span in recorder.spans]
        assert len(ids) == len(set(ids))
        by_id = {span.span_id: span for span in recorder.spans}
        for span in recorder.spans:
            assert span.end >= span.start
            if span.parent_id is not None:
                assert span.parent_id in by_id


class TestPoolValidation:
    def test_deviant_agents_are_rejected(self):
        params = params_for(5)
        problem = make_problem(params, 3)
        protocol = build_protocol(params, problem)

        class Deviant(DMWAgent):
            pass

        deviant = Deviant(0, params, protocol.agents[0].true_values,
                          rng=random.Random(1))
        protocol.agents[0] = deviant
        with pytest.raises(ParameterError):
            protocol.execute(3, parallel=True, workers=2)

    def test_fault_plans_are_rejected(self):
        from repro.network.faults import FaultPlan
        params = params_for(5)
        problem = make_problem(params, 3)
        protocol = build_protocol(params, problem)
        protocol.network.fault_plan = FaultPlan(crashed_from_round={0: 1})
        with pytest.raises(ParameterError):
            protocol.execute(3, parallel=True, workers=2)

    def test_delivery_recording_is_rejected(self):
        params = params_for(5)
        problem = make_problem(params, 3)
        protocol = build_protocol(params, problem)
        protocol.network.record_deliveries = True
        with pytest.raises(ParameterError):
            protocol.execute(3, parallel=True, workers=2)


class TestCLI:
    def test_cli_parallel_workers_matches_sequential(self, capsys):
        args = ["run", "-n", "5", "-m", "3", "--seed", "3"]
        assert cli_main(args) == 0
        sequential = capsys.readouterr().out
        assert cli_main(args + ["--parallel", "--workers", "2"]) == 0
        pooled = capsys.readouterr().out
        assert "process pool: 2 workers" in pooled

        def result_lines(text):
            return [line for line in text.splitlines()
                    if line.startswith(("schedule:", "payments:", "costs:"))]

        assert result_lines(pooled) == result_lines(sequential)

    def test_cli_parallel_checkpoint_regression(self, tmp_path, capsys):
        """The formerly CLI-unreachable combination: --parallel together
        with --checkpoint now routes through the pool (and --resume picks
        the run back up)."""
        path = str(tmp_path / "cp.json")
        args = ["run", "-n", "5", "-m", "3", "--seed", "3"]
        assert cli_main(args + ["--parallel", "--checkpoint", path]) == 0
        first = capsys.readouterr().out
        assert "process pool" in first
        loaded = serialization.load_checkpoint(path)
        assert loaded.completed_set() == {0, 1, 2}
        assert cli_main(args + ["--parallel", "--resume", path]) == 0
        resumed = capsys.readouterr().out
        assert "resuming from" in resumed

        def result_lines(text):
            return [line for line in text.splitlines()
                    if line.startswith(("schedule:", "payments:"))]

        assert result_lines(resumed) == result_lines(first)
