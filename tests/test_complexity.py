"""Tests for repro.analysis.complexity (the Table 1 measurement harness)."""

import math

import pytest

from repro.analysis.complexity import (
    CostSample,
    fit_loglog_slope,
    measure_dmw,
    measure_minwork,
    run_centralized_minwork_over_network,
    sweep_agents,
    sweep_tasks,
)
from repro.mechanisms.minwork import MinWork
from repro.scheduling.problem import SchedulingProblem


class TestSlopeFitting:
    def test_linear_data(self):
        xs = [2, 4, 8, 16]
        ys = [10 * x for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_quadratic_data(self):
        xs = [2, 4, 8, 16]
        ys = [3 * x * x for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_noisy_data_close(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [x ** 1.5 * (1 + 0.01 * (-1) ** i) for i, x in enumerate(xs)]
        assert fit_loglog_slope(xs, ys) == pytest.approx(1.5, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])
        with pytest.raises(ValueError):
            fit_loglog_slope([2, 2], [1, 2])


class TestCentralizedMeasurement:
    def test_message_count_is_mn_plus_broadcast(self):
        problem = SchedulingProblem([
            [1, 2, 3],
            [4, 5, 6],
        ])
        sample, result = run_centralized_minwork_over_network(problem)
        # 2 agents * 3 bids + 2 outcome unicasts.
        assert sample.messages == 2 * 3 + 2
        assert result.schedule == MinWork().allocate(problem)

    def test_operation_count_is_2mn(self):
        problem = SchedulingProblem([
            [1, 2],
            [4, 5],
            [7, 8],
        ])
        sample, _ = run_centralized_minwork_over_network(problem)
        assert sample.computation == 2 * 3 * 2

    def test_measure_minwork_shape(self):
        sample = measure_minwork(5, 3)
        assert sample.num_agents == 5
        assert sample.num_tasks == 3
        assert sample.messages == 5 * 3 + 5


class TestDMWMeasurement:
    def test_sample_fields_populated(self):
        sample = measure_dmw(4, 1)
        assert sample.p_bits > 0
        assert sample.messages > 0
        assert sample.computation > 0
        assert sample.rounds == 5

    def test_communication_scales_quadratically_in_n(self):
        samples = sweep_agents((4, 6, 8, 10), num_tasks=1)
        slope = fit_loglog_slope([s.num_agents for s in samples],
                                 [s.messages for s in samples])
        assert slope == pytest.approx(2.0, abs=0.35)

    def test_communication_scales_linearly_in_m(self):
        samples = sweep_tasks((1, 2, 4, 6), num_agents=5)
        slope = fit_loglog_slope([s.num_tasks for s in samples],
                                 [s.messages for s in samples])
        assert slope == pytest.approx(1.0, abs=0.2)

    def test_computation_scales_linearly_in_m(self):
        samples = sweep_tasks((1, 2, 4, 6), num_agents=5)
        slope = fit_loglog_slope([s.num_tasks for s in samples],
                                 [s.computation for s in samples])
        assert slope == pytest.approx(1.0, abs=0.2)

    def test_minwork_cheaper_than_dmw(self):
        """The headline of Table 1: DMW pays a factor ~n in communication
        and ~n log p in computation for decentralization."""
        dmw = measure_dmw(6, 2)
        centralized = measure_minwork(6, 2)
        assert dmw.messages > 5 * centralized.messages
        assert dmw.computation > 50 * centralized.computation


class TestTable1Fits:
    def test_small_sweep_matches_predictions(self):
        from repro.analysis.complexity import table1_fits
        fits = table1_fits(agent_counts=(4, 6, 8), task_counts=(1, 2, 4))
        assert len(fits) == 8  # 2 mechanisms x 2 variables x 2 quantities
        for fit in fits:
            # Every exponent lands within 0.5 of the Table 1 prediction
            # (the m-sweeps carry affine constants, hence the slack).
            assert fit.within < 0.5, fit
        labels = {(f.mechanism, f.variable, f.quantity) for f in fits}
        assert ("dmw", "n", "communication") in labels
        assert ("minwork", "m", "computation") in labels
