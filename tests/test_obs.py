"""Tests for repro.obs: spans, metrics registry, and exporters.

The central contract (docs/OBSERVABILITY.md) has three clauses, each
pinned here:

1. **Phase partition** — every counted operation and every transmitted
   message of an execution happens inside exactly one phase span, so the
   per-phase deltas sum *exactly* to the run's grand totals, in both the
   sequential and the phase-parallel driver.
2. **Zero perturbation** — running with a ``SpanRecorder`` attached
   changes nothing observable: schedules, payments, per-agent counted
   operation snapshots, network totals, and cache statistics are
   bit-identical to an unobserved run with the same seeds.
3. **Faithful export** — the metrics registry reproduces the underlying
   counters exactly, the Prometheus text round-trips through
   ``parse_prometheus``, and ``validate_run_report`` accepts every real
   report and rejects tampered accounting.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol, run_dmw
from repro.core.trace import ProtocolTrace
from repro.core.verification import CheckStats
from repro.obs import (
    NULL_RECORDER,
    PAYMENTS_PHASE,
    PHASES,
    MetricsRegistry,
    PrometheusParseError,
    ReportSchemaError,
    SpanRecorder,
    parse_prometheus,
    registry_for_run,
    run_report,
    validate_run_report,
    write_run_report,
)
from repro.obs.spans import KIND_PHASE, KIND_RUN, KIND_TASK

OP_KEYS = ("additions", "multiplications", "inversions",
           "exponentiations", "multiplication_work")
NET_KEYS = ("point_to_point_messages", "broadcast_events",
            "field_elements", "rounds")


def _summed(snapshots):
    totals = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _build_protocol(params, problem, trace=None, observer=None, seed=0):
    master = random.Random(seed)
    agents = [
        DMWAgent(index, params,
                 [int(problem.time(index, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(params.num_agents)
    ]
    return DMWProtocol(params, agents, trace=trace, observer=observer)


def _observed_run(params, problem, parallel=False, seed=0):
    trace = ProtocolTrace()
    recorder = SpanRecorder()
    protocol = _build_protocol(params, problem, trace=trace,
                               observer=recorder, seed=seed)
    outcome = protocol.execute(problem.num_tasks, parallel=parallel)
    return outcome, protocol, trace, recorder


# ---------------------------------------------------------------------------
# SpanRecorder unit behaviour
# ---------------------------------------------------------------------------

class TestSpanRecorderUnit:
    def test_nesting_and_queries(self):
        clock = iter(range(100))
        recorder = SpanRecorder(clock=lambda: float(next(clock)))
        with recorder.span("run", kind=KIND_RUN):
            with recorder.span("task", kind=KIND_TASK, task=0):
                with recorder.span("bidding", task=0):
                    pass
        assert len(recorder) == 3
        # Completion order: innermost first.
        assert [span.name for span in recorder] == ["run", "task", "bidding"][::-1]
        roots = recorder.root_spans()
        assert len(roots) == 1 and roots[0].name == "run"
        task_spans = recorder.find(kind=KIND_TASK)
        assert len(task_spans) == 1
        assert recorder.children(roots[0]) == task_spans
        assert recorder.phase_spans() == recorder.find(name="bidding")
        assert recorder.find(task=0, name="bidding")

    def test_delta_capture_from_bound_sources(self):
        ops = {"multiplications": 0}
        net = {"point_to_point_messages": 0}
        recorder = SpanRecorder(clock=lambda: 0.0)
        recorder.bind(lambda: dict(ops), lambda: dict(net))
        with recorder.span("bidding"):
            ops["multiplications"] += 7
            net["point_to_point_messages"] += 3
        with recorder.span("aggregation"):
            ops["multiplications"] += 5
        bidding, aggregation = recorder.spans
        assert bidding.operations == {"multiplications": 7}
        assert bidding.network == {"point_to_point_messages": 3}
        assert aggregation.operations == {"multiplications": 5}
        assert aggregation.network == {}  # zero deltas are dropped

    def test_durations_from_injected_clock(self):
        ticks = iter([0.0, 1.0, 1.5, 4.0, 9.0])
        recorder = SpanRecorder(clock=lambda: next(ticks))  # epoch = 0.0
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.spans
        assert inner.duration == pytest.approx(4.0 - 1.5)
        assert outer.duration == pytest.approx(9.0 - 1.0)
        assert outer.start < inner.start < inner.end < outer.end

    def test_event_attaches_to_open_span(self):
        recorder = SpanRecorder(clock=lambda: 0.0)
        recorder.event("before")
        with recorder.span("run", kind=KIND_RUN):
            recorder.event("inside", detail=1)
        recorder.event("after")
        before, inside, after = recorder.events
        assert before.span_id is None and after.span_id is None
        assert inside.span_id == recorder.spans[0].span_id
        assert inside.attributes == {"detail": 1}

    def test_exception_is_annotated_and_propagates(self):
        recorder = SpanRecorder(clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with recorder.span("bidding"):
                raise RuntimeError("boom")
        assert len(recorder) == 1
        assert recorder.spans[0].attributes["error"] == "RuntimeError"

    def test_span_to_dict_keys(self):
        recorder = SpanRecorder(clock=lambda: 0.0)
        with recorder.span("bidding", task=2, note="x"):
            pass
        encoded = recorder.spans[0].to_dict()
        assert encoded["name"] == "bidding"
        assert encoded["kind"] == KIND_PHASE
        assert encoded["task"] == 2
        assert encoded["attributes"] == {"note": "x"}
        for key in ("span_id", "parent_id", "start_s", "end_s",
                    "duration_s", "operations", "network"):
            assert key in encoded

    def test_render_timeline_nests(self):
        recorder = SpanRecorder(clock=lambda: 0.0)
        with recorder.span("run", kind=KIND_RUN):
            with recorder.span("bidding", task=0):
                pass
        text = recorder.render_timeline()
        lines = text.splitlines()
        assert lines[0].startswith("run")
        assert lines[1].startswith("  bidding")
        assert "task 0" in lines[1]


class TestNullRecorder:
    def test_disabled_and_discarding(self):
        assert NULL_RECORDER.enabled is False
        with NULL_RECORDER.span("bidding") as span:
            assert span is None
        NULL_RECORDER.event("anything", x=1)
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.events == []

    def test_span_context_is_shared(self):
        # No per-call allocation: every span() returns the same object.
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")

    def test_real_recorder_is_enabled(self):
        assert SpanRecorder().enabled is True


# ---------------------------------------------------------------------------
# Clause 1: the phase-partition invariant, both drivers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("parallel", [False, True],
                         ids=["sequential", "parallel"])
def test_phase_deltas_partition_grand_totals(params5, problem53, parallel):
    outcome, _, _, recorder = _observed_run(params5, problem53,
                                            parallel=parallel)
    assert outcome.completed
    op_totals = _summed(outcome.agent_operations)
    net_totals = outcome.network_metrics.as_dict()
    phases = recorder.phase_spans()
    for key in OP_KEYS:
        attributed = sum(span.operations.get(key, 0) for span in phases)
        assert attributed == op_totals[key], key
    for key in list(NET_KEYS) + [k for k in net_totals
                                 if k.startswith("messages[")]:
        attributed = sum(span.network.get(key, 0) for span in phases)
        assert attributed == net_totals[key], key


def test_sequential_span_structure(params5, problem53):
    outcome, _, _, recorder = _observed_run(params5, problem53)
    m = problem53.num_tasks
    runs = recorder.find(kind=KIND_RUN)
    assert len(runs) == 1
    assert runs[0].attributes["parallel"] is False
    tasks = recorder.find(kind=KIND_TASK)
    assert [span.task for span in tasks] == list(range(m))
    # Four phases nested under each task span, in protocol order.
    for task_span in tasks:
        children = recorder.children(task_span)
        assert [span.name for span in children] == list(PHASES)
        assert all(span.task == task_span.task for span in children)
    payments = recorder.find(name=PAYMENTS_PHASE)
    assert len(payments) == 1
    assert payments[0].parent_id == runs[0].span_id
    assert len(recorder.phase_spans()) == 4 * m + 1


def test_parallel_span_structure(params5, problem53):
    outcome, _, _, recorder = _observed_run(params5, problem53,
                                            parallel=True)
    runs = recorder.find(kind=KIND_RUN)
    assert len(runs) == 1 and runs[0].attributes["parallel"] is True
    # Phase-barrier execution: no task spans, one span per global phase.
    assert recorder.find(kind=KIND_TASK) == []
    phases = recorder.phase_spans()
    assert [span.name for span in phases] == list(PHASES) + [PAYMENTS_PHASE]
    assert all(span.task is None for span in phases)


def test_network_round_events_match_round_counter(params5, problem53):
    outcome, _, _, recorder = _observed_run(params5, problem53)
    rounds = [event for event in recorder.events
              if event.name == "network_round"]
    assert len(rounds) == outcome.network_metrics.rounds
    delivered = sum(event.attributes["delivered"] for event in rounds)
    assert delivered == outcome.network_metrics.point_to_point_messages


# ---------------------------------------------------------------------------
# Clause 2: observation changes nothing
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("parallel", [False, True],
                         ids=["sequential", "parallel"])
def test_observed_run_is_bit_identical(params5, problem53, parallel):
    plain = run_dmw(problem53, parameters=params5, rng=random.Random(9),
                    parallel=parallel)
    observed = run_dmw(problem53, parameters=params5, rng=random.Random(9),
                       parallel=parallel, trace=ProtocolTrace(),
                       observer=SpanRecorder())
    assert plain.completed and observed.completed
    assert observed.schedule.assignment == plain.schedule.assignment
    assert observed.payments == plain.payments
    assert observed.agent_operations == plain.agent_operations
    assert (observed.network_metrics.as_dict()
            == plain.network_metrics.as_dict())
    assert observed.cache_stats == plain.cache_stats


def test_protocol_defaults_to_null_recorder(params5, problem53):
    protocol = _build_protocol(params5, problem53)
    assert protocol.observer is NULL_RECORDER
    assert protocol.network.observer is NULL_RECORDER
    protocol.execute(problem53.num_tasks)
    assert len(NULL_RECORDER) == 0


# ---------------------------------------------------------------------------
# CheckStats
# ---------------------------------------------------------------------------

class TestCheckStats:
    def test_record_total_filtering(self):
        stats = CheckStats()
        stats.record("share_bundle", True)
        stats.record("share_bundle", True)
        stats.record("share_bundle", False)
        stats.record("lambda_psi", True)
        assert stats.total() == 4
        assert stats.total(equation="share_bundle") == 3
        assert stats.total(passed=False) == 1
        assert stats.total(equation="lambda_psi", passed=True) == 1
        assert stats.total(equation="missing") == 0

    def test_as_dict_and_items_sorted(self):
        stats = CheckStats()
        stats.record("lambda_psi", True)
        stats.record("f_disclosure", False)
        stats.record("lambda_psi", True)
        assert stats.as_dict() == {"f_disclosure:fail": 1,
                                   "lambda_psi:pass": 2}
        assert [key for key, _ in stats.items()] == [
            ("f_disclosure", False), ("lambda_psi", True)]


# ---------------------------------------------------------------------------
# Clause 3a: the metrics registry mirrors the counters exactly
# ---------------------------------------------------------------------------

class TestRegistryInstruments:
    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("x_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_shape_is_enforced(self):
        counter = MetricsRegistry().counter("x_total", "help", ["kind"])
        with pytest.raises(ValueError):
            counter.inc(1)  # missing label
        with pytest.raises(ValueError):
            counter.inc(1, kind="a", extra="b")
        counter.inc(2, kind="a")
        assert counter.value(kind="a") == 2
        assert counter.value(kind="never") == 0

    def test_reregistration_requires_same_shape(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ["kind"])
        assert registry.counter("x_total", "help", ["kind"]) is first
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", ["other"])
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help", ["kind"])

    def test_histogram_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "lat_seconds", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["buckets"] == [1, 2, 3]  # cumulative, +Inf last
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)

    def test_invalid_metric_names_rejected(self):
        registry = MetricsRegistry(namespace="")
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit", "help")
        with pytest.raises(ValueError):
            registry.counter("has space", "help")


class TestRegistryForRun:
    @pytest.fixture()
    def observed(self, params5, problem53):
        outcome, protocol, trace, recorder = _observed_run(params5,
                                                           problem53)
        registry = registry_for_run(outcome, agents=protocol.agents,
                                    trace=trace, recorder=recorder)
        return outcome, protocol, recorder, registry

    def test_network_metrics_mirrored(self, observed):
        outcome, _, _, registry = observed
        metrics = outcome.network_metrics
        messages = registry.get("dmw_network_messages_total")
        for kind, count in metrics.by_kind.items():
            assert messages.value(kind=kind) == count
        assert (registry.get("dmw_network_field_elements_total").value()
                == metrics.field_elements)
        assert (registry.get("dmw_network_broadcast_events_total").value()
                == metrics.broadcast_events)
        assert registry.get("dmw_network_rounds").value() == metrics.rounds
        assert registry.get("dmw_run_completed").value() == 1.0

    def test_agent_operations_mirrored(self, observed):
        outcome, _, _, registry = observed
        operations = registry.get("dmw_agent_operations_total")
        for index, snapshot in enumerate(outcome.agent_operations):
            for op, value in snapshot.items():
                assert operations.value(agent=index, op=op) == value

    def test_cache_statistics_mirrored(self, observed):
        outcome, _, _, registry = observed
        stats = outcome.cache_stats
        assert stats  # the shared cache always sees traffic
        events = registry.get("dmw_cache_events_total")
        assert (events.value(namespace="evaluation", result="hit")
                == stats["evaluation_hits"])
        assert (events.value(namespace="evaluation", result="miss")
                == stats["evaluation_misses"])
        assert (events.value(namespace="weights", result="hit")
                == stats["weight_hits"])
        assert (events.value(namespace="weights", result="miss")
                == stats["weight_misses"])
        # Every lookup lands in exactly one exported (namespace, result).
        assert (sum(value for _, value in events.samples())
                == stats["hits"] + stats["misses"])
        entries = registry.get("dmw_cache_entries")
        assert entries.value(namespace="evaluation") == stats["evaluations"]
        assert (entries.value(namespace="straus_tables")
                == stats["straus_tables"])
        rate = registry.get("dmw_cache_hit_rate").value()
        assert rate == pytest.approx(
            stats["hits"] / (stats["hits"] + stats["misses"]))

    def test_verification_checks_mirrored(self, observed):
        _, protocol, _, registry = observed
        checks = registry.get("dmw_verification_checks_total")
        for agent in protocol.agents:
            for (equation, passed), count in agent.check_stats:
                assert checks.value(
                    agent=agent.index, equation=equation,
                    result="pass" if passed else "fail") == count
        # Honest runs never fail a verification equation.
        assert all(key[2] == "pass" for key, _ in checks.samples())
        assert sum(value for _, value in checks.samples()) > 0

    def test_span_histogram_and_phase_attribution(self, observed):
        _, _, recorder, registry = observed
        durations = registry.get("dmw_span_duration_seconds")
        total = sum(durations.snapshot(name=name, kind=kind)["count"]
                    for name, kind in durations.series())
        assert total == len(recorder)
        phase_work = registry.get("dmw_phase_multiplication_work_total")
        for name in list(PHASES) + [PAYMENTS_PHASE]:
            expected = sum(span.operations.get("multiplication_work", 0)
                           for span in recorder.find(name=name))
            assert phase_work.value(phase=name) == expected

    def test_honest_run_has_no_aborts_or_complaints(self, observed):
        _, _, _, registry = observed
        assert registry.get("dmw_aborts_total").samples() == []
        assert registry.get("dmw_complaints_total").samples() == []
        assert registry.get("dmw_deviants_detected_total").samples() == []


# ---------------------------------------------------------------------------
# Clause 3b: Prometheus text round-trip
# ---------------------------------------------------------------------------

class TestPrometheus:
    def test_real_run_round_trips(self, params5, problem53):
        outcome, protocol, trace, recorder = _observed_run(params5,
                                                           problem53)
        registry = registry_for_run(outcome, agents=protocol.agents,
                                    trace=trace, recorder=recorder)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples
        metrics = outcome.network_metrics
        assert samples[("dmw_network_field_elements_total", ())] \
            == metrics.field_elements
        assert samples[("dmw_network_rounds", ())] == metrics.rounds
        for kind, count in metrics.by_kind.items():
            assert samples[("dmw_network_messages_total",
                            (("kind", kind),))] == count
        # Histogram series expose _bucket/_sum/_count samples.
        assert any(name.startswith("dmw_span_duration_seconds_bucket")
                   for name, _ in samples)

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", "help", ["label"])
        tricky = 'quote " slash \\ newline \n end'
        counter.inc(3, label=tricky)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[("dmw_odd_total", (("label", tricky),))] == 3

    def test_empty_labeled_metrics_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("silent_total", "never incremented", ["kind"])
        registry.histogram("silent_seconds", "never observed")
        registry.gauge("plain", "unlabeled scalar still appears")
        text = registry.to_prometheus()
        assert "silent" not in text
        assert "dmw_plain 0" in text
        parse_prometheus(text)  # and the result is parseable

    @pytest.mark.parametrize("bad", [
        "# BOGUS comment line\n",
        "# TYPE ghost_total counter\n",            # TYPE without samples
        "metric_total 1\nmetric_total 2\n",        # duplicate sample
        "metric_total notanumber\n",
        'metric_total{label="unterminated\n',
        "metric_total\n",                          # missing value
    ])
    def test_parser_rejects_malformed_text(self, bad):
        with pytest.raises(PrometheusParseError):
            parse_prometheus(bad)

    def test_parser_accepts_inf_values(self):
        samples = parse_prometheus("up +Inf\ndown -Inf\n")
        assert samples[("up", ())] == float("inf")
        assert samples[("down", ())] == float("-inf")


# ---------------------------------------------------------------------------
# Clause 3c: the run report and its validator
# ---------------------------------------------------------------------------

class TestRunReport:
    @pytest.fixture()
    def document(self, params5, problem53):
        outcome, protocol, trace, recorder = _observed_run(params5,
                                                           problem53)
        return run_report(outcome, agents=protocol.agents, trace=trace,
                          recorder=recorder, parameters=params5)

    def test_real_report_validates(self, document):
        validate_run_report(document)  # must not raise

    def test_parallel_report_validates(self, params5, problem53):
        outcome, protocol, trace, recorder = _observed_run(
            params5, problem53, parallel=True)
        validate_run_report(run_report(outcome, agents=protocol.agents,
                                       trace=trace, recorder=recorder,
                                       parameters=params5))

    def test_report_summarises_outcome(self, document, params5, problem53):
        assert document["completed"] is True
        assert document["abort"] is None
        assert document["params"]["num_agents"] == params5.num_agents
        assert document["params"]["sigma"] == params5.sigma
        assert len(document["schedule"]) == problem53.num_tasks
        assert len(document["payments"]) == params5.num_agents
        assert len(document["phases"]) == 4 * problem53.num_tasks + 1
        assert document["trace"]  # tracing was on
        assert document["cache"]["hits"] > 0

    def test_report_is_json_serialisable(self, document, tmp_path):
        path = tmp_path / "report.json"
        write_run_report(str(path), document)
        reloaded = json.loads(path.read_text())
        validate_run_report(reloaded)
        assert reloaded["totals"] == json.loads(
            json.dumps(document["totals"]))

    def test_tampered_grand_total_is_rejected(self, document):
        document["totals"]["operations"]["multiplications"] += 1
        with pytest.raises(ReportSchemaError):
            validate_run_report(document)

    def test_tampered_phase_attribution_is_rejected(self, document):
        document["phases"][0]["network"]["point_to_point_messages"] += 1
        with pytest.raises(ReportSchemaError):
            validate_run_report(document)

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("totals"),
        lambda d: d.pop("metrics"),
        lambda d: d.update(version=999),
        lambda d: d.update(type="something_else"),
        lambda d: d["spans"][0].pop("duration_s"),
        lambda d: d["spans"][0].update(end_s=-1.0),
        lambda d: d["trace"][0].pop("kind"),
    ])
    def test_structural_violations_are_rejected(self, document, mutate):
        mutate(document)
        with pytest.raises(ReportSchemaError):
            validate_run_report(document)

    def test_minimal_report_without_recorder(self, params5, problem53):
        outcome = run_dmw(problem53, parameters=params5,
                          rng=random.Random(1))
        document = run_report(outcome)
        validate_run_report(document)
        assert document["phases"] == []
        assert document["spans"] == []
        assert document["trace"] is None


# ---------------------------------------------------------------------------
# Satellite: Prometheus label escaping is a true inverse pair
# ---------------------------------------------------------------------------

class TestLabelEscapingProperty:
    """`to_prometheus` -> `parse_prometheus` must round-trip every label
    value.  Historically the parser split lines with ``str.splitlines``,
    which also breaks at ``\\r``/``\\v``/``\\f``/``\\x85``/``\\u2028``/
    ``\\u2029`` — characters the writer leaves raw inside quoted label
    values — truncating such samples mid-line."""

    @staticmethod
    def _round_trip(value):
        registry = MetricsRegistry()
        counter = registry.counter("prop_total", "help", ["label"])
        counter.inc(1, label=value)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[("dmw_prop_total", (("label", value),))] == 1

    @pytest.mark.parametrize("value", [
        "carriage\rreturn",
        "vertical\vtab",
        "form\ffeed",
        "next\x85line",
        "line\u2028separator",
        "para\u2029separator",
        'mixed \\ " \n \r end',
    ])
    def test_exotic_line_breaks_round_trip(self, value):
        self._round_trip(value)

    @settings(max_examples=200, deadline=None)
    @given(st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)),
        max_size=40,
    ))
    def test_arbitrary_label_values_round_trip(self, value):
        self._round_trip(value)


# ---------------------------------------------------------------------------
# Satellite: schema versions 2, 3, and 4 all validate
# ---------------------------------------------------------------------------

class TestVersionCompatibility:
    @pytest.fixture()
    def v4_document(self, params5, problem53):
        outcome, protocol, trace, recorder = _observed_run(params5,
                                                           problem53)
        return run_report(outcome, agents=protocol.agents, trace=trace,
                          recorder=recorder, parameters=params5)

    def test_v4_is_current(self, v4_document):
        assert v4_document["version"] == 4
        for key in ("flight_summary", "profile", "provenance"):
            assert key in v4_document
        validate_run_report(v4_document)

    def test_v3_documents_still_validate(self, v4_document):
        document = json.loads(json.dumps(v4_document))
        document["version"] = 3
        for key in ("flight_summary", "profile", "provenance"):
            document.pop(key)
        validate_run_report(document)

    def test_v2_documents_still_validate(self, v4_document):
        document = json.loads(json.dumps(v4_document))
        document["version"] = 2
        for key in ("flight_summary", "profile", "provenance",
                    "parallelism"):
            document.pop(key)
        validate_run_report(document)

    def test_provenance_identifies_the_build(self, v4_document):
        provenance = v4_document["provenance"]
        assert provenance["package_version"]
        assert provenance["arithmetic_backend"] in ("python", "gmpy2")
        assert provenance["python_version"].count(".") == 2

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("provenance"),
        lambda d: d["provenance"].pop("arithmetic_backend"),
        lambda d: d["flight_summary"].update(
            {"events_recorded": 1, "events_retained": 2, "capacity": 4,
             "messages": 1, "by_type": {"send": 1}, "by_kind": {"x": 1}}),
        lambda d: d.update(profile={"phases": {"bidding": {}},
                                    "top_n": 10}),
    ])
    def test_v4_specific_violations_are_rejected(self, v4_document,
                                                 mutate):
        mutate(v4_document)
        with pytest.raises(ReportSchemaError):
            validate_run_report(v4_document)
