"""Unit tests for repro.crypto.secretsharing."""

import random

import pytest

from repro.crypto.secretsharing import (
    DegreeEncodingScheme,
    ShamirScheme,
    Share,
)

Q = 2 ** 31 - 1
POINTS = list(range(1, 11))


class TestShamir:
    def test_share_reconstruct_roundtrip(self, rng):
        scheme = ShamirScheme(Q, threshold=4)
        secret = 123456789
        shares = scheme.share(secret, POINTS, rng)
        assert scheme.reconstruct(shares[:4]) == secret
        assert scheme.reconstruct(shares[3:7]) == secret

    def test_too_few_shares_rejected(self, rng):
        scheme = ShamirScheme(Q, threshold=4)
        shares = scheme.share(7, POINTS, rng)
        with pytest.raises(ValueError):
            scheme.reconstruct(shares[:3])

    def test_below_threshold_reveals_nothing(self):
        # With threshold-1 shares, every secret is equally consistent:
        # the same 3 shares arise from sharings of different secrets.
        scheme = ShamirScheme(Q, threshold=4)
        shares_a = scheme.share(1, POINTS, random.Random(0))
        # Construct a sharing of a different secret agreeing on 3 points:
        # possible because 3 < threshold constraints leave freedom.
        found = False
        for seed in range(200):
            shares_b = scheme.share(2, POINTS, random.Random(seed))
            if all(a.value != b.value
                   for a, b in zip(shares_a[:3], shares_b[:3])):
                found = True
                break
        assert found  # shares alone do not pin down the secret

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            ShamirScheme(Q, threshold=0)
        scheme = ShamirScheme(Q, threshold=3)
        with pytest.raises(ValueError):
            scheme.share(1, [1, 2], rng)  # fewer points than threshold
        with pytest.raises(ValueError):
            scheme.share(1, [1, 1, 2], rng)  # duplicate points
        with pytest.raises(ValueError):
            scheme.share(1, [0, 1, 2], rng)  # zero point


class TestDegreeEncoding:
    def test_share_resolve_roundtrip(self, rng):
        scheme = DegreeEncodingScheme(Q, POINTS)
        for degree in range(1, 9):
            sharing = scheme.share_degree(degree, rng)
            assert sharing.encoded_degree == degree
            assert scheme.resolve(list(sharing.shares)) == degree

    def test_degree_bounds_enforced(self, rng):
        scheme = DegreeEncodingScheme(Q, POINTS)
        with pytest.raises(ValueError):
            scheme.share_degree(0, rng)
        with pytest.raises(ValueError):
            scheme.share_degree(len(POINTS), rng)

    def test_sum_resolves_to_max(self, rng):
        scheme = DegreeEncodingScheme(Q, POINTS)
        sharings = [scheme.share_degree(d, rng) for d in (2, 5, 3)]
        summed = scheme.sum_shares([s.shares for s in sharings])
        assert scheme.resolve(summed) == 5

    def test_sum_validates_point_alignment(self, rng):
        scheme = DegreeEncodingScheme(Q, POINTS)
        sharing = scheme.share_degree(3, rng)
        misaligned = list(sharing.shares)
        misaligned[0] = Share(point=99, value=misaligned[0].value)
        with pytest.raises(ValueError):
            scheme.sum_shares([misaligned])

    def test_sum_of_nothing_rejected(self):
        scheme = DegreeEncodingScheme(Q, POINTS)
        with pytest.raises(ValueError):
            scheme.sum_shares([])

    def test_candidates_filter(self, rng):
        scheme = DegreeEncodingScheme(Q, POINTS)
        sharing = scheme.share_degree(4, rng)
        assert scheme.resolve(list(sharing.shares), candidates=[2, 3]) is None
        assert scheme.resolve(list(sharing.shares), candidates=[3, 4]) == 4

    def test_invalid_points_rejected(self):
        with pytest.raises(ValueError):
            DegreeEncodingScheme(Q, [1, 1, 2])
        with pytest.raises(ValueError):
            DegreeEncodingScheme(Q, [0, 1])


class TestReconstructionAttack:
    """The Theorem 10 collusion primitive."""

    def test_enough_shares_expose_degree(self, rng):
        scheme = DegreeEncodingScheme(Q, POINTS)
        sharing = scheme.share_degree(4, rng)
        # Coalition of 5 shares + free (0,0) point: 6 points, can confirm
        # degree 4 (needs 4+2).
        coalition = list(sharing.shares[:5])
        outcomes = scheme.reconstruction_attack(coalition, [3, 4, 5])
        assert outcomes[4] is True
        assert outcomes[3] is False  # too low: inconsistent

    def test_too_few_shares_are_blind(self, rng):
        scheme = DegreeEncodingScheme(Q, POINTS)
        sharing = scheme.share_degree(4, rng)
        coalition = list(sharing.shares[:3])  # 3 shares < degree
        outcomes = scheme.reconstruction_attack(coalition, [4, 5, 6])
        assert outcomes[4] is False
        assert outcomes[5] is False

    def test_exactly_interpolating_count_cannot_confirm(self, rng):
        # degree+1 points (with the free zero) interpolate but cannot
        # *check*: no surplus point, so no confirmation.
        scheme = DegreeEncodingScheme(Q, POINTS)
        sharing = scheme.share_degree(4, rng)
        coalition = list(sharing.shares[:4])  # 4 shares + zero = 5 points
        outcomes = scheme.reconstruction_attack(coalition, [4])
        assert outcomes[4] is False

    def test_higher_candidates_also_consistent(self, rng):
        # Degrees above the true one stay consistent — the attack learns a
        # lower bound on the bid (upper bound on degree is what exposes).
        scheme = DegreeEncodingScheme(Q, POINTS)
        sharing = scheme.share_degree(3, rng)
        coalition = list(sharing.shares[:6])
        outcomes = scheme.reconstruction_attack(coalition, [3, 4, 5])
        assert outcomes[3] and outcomes[4]
