"""Unit tests for repro.scheduling.schedule."""

import pytest

from repro.scheduling.problem import SchedulingProblem
from repro.scheduling.schedule import Schedule


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [1, 2, 3],
        [4, 5, 6],
    ])


class TestConstruction:
    def test_assignment_recorded(self):
        schedule = Schedule([0, 1, 0], num_agents=2)
        assert schedule.assignment == (0, 1, 0)
        assert schedule.num_tasks == 3
        assert schedule.num_agents == 2

    def test_invalid_agent_rejected(self):
        with pytest.raises(ValueError):
            Schedule([0, 2], num_agents=2)
        with pytest.raises(ValueError):
            Schedule([-1], num_agents=2)

    def test_zero_agents_rejected(self):
        with pytest.raises(ValueError):
            Schedule([], num_agents=0)

    def test_from_partition_roundtrip(self):
        schedule = Schedule([0, 1, 0, 1], num_agents=2)
        rebuilt = Schedule.from_partition(schedule.partition(), 4)
        assert rebuilt == schedule

    def test_from_partition_detects_double_assignment(self):
        with pytest.raises(ValueError):
            Schedule.from_partition([[0, 1], [1]], num_tasks=2)

    def test_from_partition_detects_missing_task(self):
        with pytest.raises(ValueError):
            Schedule.from_partition([[0], []], num_tasks=2)

    def test_from_partition_detects_out_of_range(self):
        with pytest.raises(ValueError):
            Schedule.from_partition([[0, 5]], num_tasks=2)


class TestQueries:
    def test_agent_of_and_tasks_of(self):
        schedule = Schedule([0, 1, 0], num_agents=3)
        assert schedule.agent_of(1) == 1
        assert schedule.tasks_of(0) == (0, 2)
        assert schedule.tasks_of(2) == ()

    def test_partition_covers_all_agents(self):
        schedule = Schedule([1, 1], num_agents=3)
        partition = schedule.partition()
        assert len(partition) == 3
        assert partition[1] == (0, 1)
        assert partition[0] == ()


class TestObjectives:
    def test_completion_time(self, problem):
        schedule = Schedule([0, 0, 1], num_agents=2)
        assert schedule.completion_time(0, problem) == 1 + 2
        assert schedule.completion_time(1, problem) == 6

    def test_makespan(self, problem):
        schedule = Schedule([0, 0, 1], num_agents=2)
        assert schedule.makespan(problem) == 6

    def test_total_work(self, problem):
        schedule = Schedule([0, 1, 0], num_agents=2)
        assert schedule.total_work(problem) == 1 + 5 + 3

    def test_valuation_is_negated_completion(self, problem):
        schedule = Schedule([0, 0, 1], num_agents=2)
        assert schedule.valuation(0, problem) == -3
        assert schedule.valuation(1, problem) == -6

    def test_idle_agent_has_zero_valuation(self, problem):
        schedule = Schedule([0, 0, 0], num_agents=2)
        assert schedule.valuation(1, problem) == 0


class TestDunder:
    def test_equality_and_hash(self):
        a = Schedule([0, 1], num_agents=2)
        b = Schedule([0, 1], num_agents=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schedule([0, 1], num_agents=3)
        assert a != Schedule([1, 0], num_agents=2)
        assert a != 42

    def test_repr(self):
        assert "num_agents=2" in repr(Schedule([0], num_agents=2))
