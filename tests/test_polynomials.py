"""Unit tests for repro.crypto.polynomials."""

import random

import pytest

from repro.crypto.modular import OperationCounter
from repro.crypto.polynomials import Polynomial, sum_polynomials

Q = 97


class TestConstruction:
    def test_coefficients_normalized(self):
        poly = Polynomial([100, -1], Q)
        assert poly.coefficients == (3, 96)

    def test_trailing_zeros_stripped(self):
        poly = Polynomial([1, 2, 0, 0], Q)
        assert poly.degree == 1

    def test_zero_polynomial(self):
        zero = Polynomial.zero(Q)
        assert zero.degree == -1
        assert zero.is_zero()
        assert zero.evaluate(42) == 0

    def test_all_zero_coefficients_is_zero(self):
        assert Polynomial([0, 0, 0], Q).is_zero()

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            Polynomial([1], 1)

    def test_coefficient_accessor(self):
        poly = Polynomial([5, 7, 11], Q)
        assert poly.coefficient(0) == 5
        assert poly.coefficient(2) == 11
        assert poly.coefficient(9) == 0
        with pytest.raises(IndexError):
            poly.coefficient(-1)


class TestRandom:
    def test_exact_degree(self, rng):
        for degree in range(1, 12):
            poly = Polynomial.random(degree, Q, rng)
            assert poly.degree == degree

    def test_zero_constant_term(self, rng):
        poly = Polynomial.random(5, Q, rng)
        assert poly.coefficient(0) == 0
        assert poly.evaluate(0) == 0

    def test_nonzero_constant_allowed(self, rng):
        polys = [Polynomial.random(3, Q, rng, zero_constant_term=False)
                 for _ in range(30)]
        assert any(p.coefficient(0) != 0 for p in polys)

    def test_degree_minus_one_is_zero_poly(self, rng):
        assert Polynomial.random(-1, Q, rng).is_zero()

    def test_degree_zero_with_zero_constant_rejected(self, rng):
        with pytest.raises(ValueError):
            Polynomial.random(0, Q, rng)

    def test_invalid_degree_rejected(self, rng):
        with pytest.raises(ValueError):
            Polynomial.random(-2, Q, rng)


class TestArithmetic:
    def test_evaluate_horner(self):
        poly = Polynomial([1, 2, 3], Q)  # 1 + 2x + 3x^2
        assert poly.evaluate(4) == (1 + 8 + 48) % Q

    def test_evaluate_counts_operations(self):
        poly = Polynomial([1, 2, 3, 4], Q)
        counter = OperationCounter()
        poly.evaluate(2, counter)
        assert counter.multiplications == 4

    def test_addition(self):
        a = Polynomial([1, 2], Q)
        b = Polynomial([3, 4, 5], Q)
        assert (a + b).coefficients == (4, 6, 5)

    def test_addition_cancels_leading_terms(self):
        a = Polynomial([0, 1, 1], Q)
        b = Polynomial([0, 1, Q - 1], Q)
        assert (a + b).degree == 1

    def test_subtraction(self):
        a = Polynomial([5, 5], Q)
        b = Polynomial([2, 7], Q)
        assert (a - b).coefficients == (3, Q - 2)

    def test_multiplication(self):
        a = Polynomial([1, 1], Q)   # 1 + x
        b = Polynomial([1, 2], Q)   # 1 + 2x
        assert (a * b).coefficients == (1, 3, 2)

    def test_multiplication_by_zero(self):
        a = Polynomial([1, 2, 3], Q)
        assert (a * Polynomial.zero(Q)).is_zero()

    def test_product_degree_adds(self, rng):
        a = Polynomial.random(3, Q, rng)
        b = Polynomial.random(4, Q, rng)
        assert (a * b).degree == 7

    def test_product_evaluates_pointwise(self, rng):
        a = Polynomial.random(3, Q, rng)
        b = Polynomial.random(4, Q, rng)
        product = a * b
        for x in range(1, 10):
            assert product.evaluate(x) == (a.evaluate(x) * b.evaluate(x)) % Q

    def test_scale(self):
        a = Polynomial([1, 2], Q)
        assert a.scale(3).coefficients == (3, 6)
        assert a.scale(0).is_zero()

    def test_incompatible_moduli_rejected(self):
        with pytest.raises(ValueError):
            Polynomial([1], 97) + Polynomial([1], 101)


class TestProtocolHelpers:
    def test_shares_at(self, rng):
        poly = Polynomial.random(3, Q, rng)
        points = [1, 2, 3]
        assert poly.shares_at(points) == [poly.evaluate(x) for x in points]

    def test_padded_coefficients(self):
        poly = Polynomial([0, 5], Q)
        assert poly.padded_coefficients(4) == [0, 5, 0, 0]

    def test_padding_too_small_rejected(self):
        poly = Polynomial([0, 1, 2], Q)
        with pytest.raises(ValueError):
            poly.padded_coefficients(2)

    def test_sum_polynomials(self, rng):
        polys = [Polynomial.random(d, Q, rng) for d in (2, 3, 5)]
        total = sum_polynomials(polys, Q)
        assert total.degree == 5
        for x in range(1, 6):
            expected = sum(p.evaluate(x) for p in polys) % Q
            assert total.evaluate(x) == expected

    def test_sum_of_none(self):
        assert sum_polynomials([], Q).is_zero()


class TestDunder:
    def test_equality_and_hash(self):
        a = Polynomial([1, 2], Q)
        b = Polynomial([1, 2, 0], Q)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Polynomial([1, 2], 101)
        assert a != "not a polynomial"

    def test_repr_roundtrip_info(self):
        assert "97" in repr(Polynomial([1], Q))
