"""Unit tests for repro.core.agent (the suggested strategy)."""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.exceptions import ParameterError, ProtocolAbort
from repro.core.parameters import DMWParameters


def wire_agents(params, bids_per_agent, seed=0):
    """Create agents and exchange Phase II messages by hand."""
    master = random.Random(seed)
    agents = [
        DMWAgent(index, params, bids_per_agent[index],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(params.num_agents)
    ]
    task = 0
    outputs = [agent.begin_task(task) for agent in agents]
    for sender, (commitments, bundles) in enumerate(outputs):
        for receiver in range(params.num_agents):
            if receiver != sender:
                agents[receiver].receive_commitments(task, sender, commitments)
        for recipient, bundle in bundles.items():
            agents[recipient].receive_bundle(task, sender, bundle)
    return agents


class TestConstruction:
    def test_true_values_validated(self, params5):
        with pytest.raises(ParameterError):
            DMWAgent(0, params5, [1, 99])

    def test_pseudonym_lookup(self, params5):
        agent = DMWAgent(3, params5, [1])
        assert agent.pseudonym == params5.pseudonyms[3]

    def test_choose_bid_is_truthful(self, params5):
        agent = DMWAgent(0, params5, [2, 3, 1])
        assert [agent.choose_bid(t) for t in range(3)] == [2, 3, 1]


class TestPhaseII:
    def test_begin_task_keeps_own_bundle(self, params5):
        agent = DMWAgent(0, params5, [2])
        commitments, bundles = agent.begin_task(0)
        assert commitments is not None
        assert 0 not in bundles  # own bundle retained, not sent
        assert len(bundles) == params5.num_agents - 1
        state = agent.task_state(0)
        assert 0 in state.received_bundles

    def test_share_check_passes_on_honest_exchange(self, params5):
        agents = wire_agents(params5, [[1], [2], [3], [2], [1]])
        for agent in agents:
            assert agent.check_shares(0) is None

    def test_missing_commitments_detected(self, params5):
        agents = wire_agents(params5, [[1], [2], [3], [2], [1]])
        del agents[1].task_state(0).commitments[3]
        abort = agents[1].check_shares(0)
        assert abort is not None
        assert abort.offender == 3
        assert abort.phase == "bidding"

    def test_missing_bundle_detected(self, params5):
        agents = wire_agents(params5, [[1], [2], [3], [2], [1]])
        del agents[2].task_state(0).received_bundles[4]
        abort = agents[2].check_shares(0)
        assert abort is not None
        assert abort.offender == 4


class TestPhaseIII:
    def run_aggregates(self, agents):
        published = {a.index: a.publish_aggregates(0) for a in agents}
        for agent in agents:
            agent.validate_aggregates(0, published)
        return published

    def test_aggregates_validate_everywhere(self, params5):
        agents = wire_agents(params5, [[1], [2], [3], [2], [1]])
        self.run_aggregates(agents)
        for agent in agents:
            assert set(agent.task_state(0).valid_lambdas) == set(range(5))

    def test_first_price_agreement(self, params5):
        agents = wire_agents(params5, [[2], [2], [3], [2], [3]])
        self.run_aggregates(agents)
        prices = {agent.resolve_first(0) for agent in agents}
        assert prices == {2}

    def test_disclosure_set_is_prefix(self, params5):
        agents = wire_agents(params5, [[2], [2], [3], [2], [3]])
        self.run_aggregates(agents)
        for agent in agents:
            agent.resolve_first(0)
        # y* = 2 -> width = y* + 1 + c = 4
        ranks = [agent.disclosure_rank(0) for agent in agents]
        assert ranks == [0, 1, 2, 3, None]
        rows = [agent.disclose_f_shares(0) for agent in agents]
        assert all(row is not None for row in rows[:4])
        assert rows[4] is None

    def test_full_local_pipeline(self, params5):
        agents = wire_agents(params5, [[2], [1], [3], [2], [3]])
        self.run_aggregates(agents)
        for agent in agents:
            assert agent.resolve_first(0) == 1
        rows = {a.index: a.disclose_f_shares(0) for a in agents
                if a.disclose_f_shares(0) is not None}
        for agent in agents:
            agent.validate_disclosures(0, rows)
            assert agent.find_winner(0) == 1
        published = {a.index: a.publish_excluded_aggregates(0)
                     for a in agents}
        for agent in agents:
            agent.validate_excluded_aggregates(0, published)
            assert agent.resolve_second(0) == 2

    def test_invalid_disclosure_excluded(self, params5):
        agents = wire_agents(params5, [[2], [1], [3], [2], [3]])
        self.run_aggregates(agents)
        for agent in agents:
            agent.resolve_first(0)
        rows = {a.index: a.disclose_f_shares(0) for a in agents
                if a.disclosure_rank(0) is not None}
        # Corrupt row 0.
        q = params5.group.q
        f_value, h_value = rows[0][2]
        rows[0] = dict(rows[0])
        rows[0][2] = ((f_value + 1) % q, h_value)
        # Agent 4's assigned disclosers are 0 and 1, so it complains
        # about the corrupted row 0; arbitration then removes it.
        complaints = agents[4].validate_disclosures(0, rows)
        assert complaints == [0]
        agents[4].arbitrate_disclosures(0, rows, complaints)
        valid = set(agents[4].task_state(0).valid_disclosures)
        assert 0 not in valid
        assert agents[4].find_winner(0) == 1  # still resolvable via others


class TestPhaseIV:
    def test_payment_claim_sums_second_prices(self, params5):
        agents = wire_agents(params5, [[2], [1], [3], [2], [3]])
        published = {a.index: a.publish_aggregates(0) for a in agents}
        for agent in agents:
            agent.validate_aggregates(0, published)
            agent.resolve_first(0)
        rows = {a.index: a.disclose_f_shares(0) for a in agents
                if a.disclosure_rank(0) is not None}
        for agent in agents:
            agent.validate_disclosures(0, rows)
            agent.find_winner(0)
        excluded = {a.index: a.publish_excluded_aggregates(0) for a in agents}
        for agent in agents:
            agent.validate_excluded_aggregates(0, excluded)
            agent.resolve_second(0)
        for agent in agents:
            claim = agent.payment_claim()
            assert claim == [0.0, 2.0, 0.0, 0.0, 0.0]

    def test_claim_before_resolution_aborts(self, params5):
        agent = DMWAgent(0, params5, [1])
        agent.begin_task(0)
        with pytest.raises(ProtocolAbort):
            agent.payment_claim()
