"""Tests for the timeout network and DMW over slow links."""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.network.asynchronous import TimeoutNetwork
from repro.network.faults import FaultPlan
from repro.network.latency import LatencyModel
from repro.scheduling.problem import SchedulingProblem


def fast_model(rng, scale=None):
    return LatencyModel(rng, base=0.001, jitter=0.001,
                        per_link_scale=scale)


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [2, 1],
        [1, 3],
        [3, 2],
        [2, 2],
        [3, 3],
    ])


def run_dmw_over(network, params, problem, seed=0):
    master = random.Random(seed)
    agents = [
        DMWAgent(i, params,
                 [int(problem.time(i, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for i in range(5)
    ]
    protocol = DMWProtocol(params, agents, network=network)
    return protocol.execute(problem.num_tasks)


class TestTimeoutNetwork:
    def test_fast_links_all_arrive(self, rng):
        network = TimeoutNetwork(3, fast_model(rng), round_timeout=0.1)
        network.send(0, 1, "x", None)
        network.publish(2, "y", None)
        assert network.deliver() == 3
        assert network.late_messages == 0
        assert 0 < network.clock <= 0.002

    def test_slow_link_drops_as_late(self, rng):
        scale = {(0, 1): 1000.0}
        network = TimeoutNetwork(3, fast_model(rng, scale),
                                 round_timeout=0.1)
        network.send(0, 1, "x", None)
        network.send(0, 2, "y", None)
        delivered = network.deliver()
        assert delivered == 1
        assert network.late_messages == 1
        assert network.receive(1) == []
        assert len(network.receive(2)) == 1

    def test_barrier_waits_full_timeout_when_something_is_late(self, rng):
        scale = {(0, 1): 1000.0}
        network = TimeoutNetwork(3, fast_model(rng, scale),
                                 round_timeout=0.25)
        network.send(0, 1, "x", None)
        network.deliver()
        assert network.round_durations[-1] == pytest.approx(0.25)
        assert network.clock == pytest.approx(0.25)

    def test_late_messages_still_counted_as_sent(self, rng):
        scale = {(0, 1): 1000.0}
        network = TimeoutNetwork(2, fast_model(rng, scale),
                                 round_timeout=0.1)
        network.send(0, 1, "x", None)
        network.deliver()
        assert network.metrics.point_to_point_messages == 1

    def test_timeout_must_be_positive(self, rng):
        with pytest.raises(ValueError):
            TimeoutNetwork(2, fast_model(rng), round_timeout=0)


class TestBarrierRegression:
    """The barrier must wait its full timeout whenever *any* expected
    copy is missing — including copies withheld by the fault plan or a
    crashed sender, not only copies that are late under the latency
    model.  (Regression: the barrier used to release at the slowest
    on-time arrival when the only missing traffic was deterministically
    withheld, under-reporting the stall a real receiver would suffer.)"""

    def test_crashed_sender_holds_barrier_despite_on_time_traffic(self, rng):
        plan = FaultPlan(crashed_from_round={0: 0})
        network = TimeoutNetwork(3, fast_model(rng), round_timeout=0.25,
                                 fault_plan=plan)
        network.send(0, 1, "x", None)   # withheld: sender crashed
        network.send(2, 1, "y", None)   # arrives almost immediately
        network.deliver()
        assert len(network.receive(1)) == 1
        assert network.round_durations[-1] == pytest.approx(0.25)
        assert network.clock == pytest.approx(0.25)

    def test_dropped_link_holds_barrier_despite_on_time_traffic(self, rng):
        plan = FaultPlan(dropped_links={(0, 1)})
        network = TimeoutNetwork(3, fast_model(rng), round_timeout=0.25,
                                 fault_plan=plan)
        network.send(0, 1, "x", None)   # dropped by the plan
        network.send(2, 1, "y", None)
        network.deliver()
        assert network.round_durations[-1] == pytest.approx(0.25)

    def test_crashed_broadcast_holds_barrier(self, rng):
        plan = FaultPlan(crashed_from_round={0: 0})
        network = TimeoutNetwork(3, fast_model(rng), round_timeout=0.25,
                                 fault_plan=plan)
        network.publish(0, "x", None)   # all copies withheld
        network.publish(2, "y", None)
        network.deliver()
        assert network.round_durations[-1] == pytest.approx(0.25)

    def test_clean_round_still_releases_early(self, rng):
        network = TimeoutNetwork(3, fast_model(rng), round_timeout=0.25)
        network.send(0, 1, "x", None)
        network.send(2, 1, "y", None)
        network.deliver()
        # Nothing missing: the barrier releases at the slowest arrival.
        assert network.round_durations[-1] < 0.01


class TestDMWOverTimeouts:
    def test_fast_network_completes_and_matches(self, params5, problem):
        network = TimeoutNetwork(5, fast_model(random.Random(1)),
                                 round_timeout=0.1, extra_participants=1)
        outcome = run_dmw_over(network, params5, problem)
        assert outcome.completed
        expected = MinWork().run(truthful_bids(problem))
        assert outcome.schedule == expected.schedule
        assert network.clock > 0

    def test_isolated_slow_agent_looks_like_withholding(self, params5,
                                                        problem):
        """All of agent 3's outgoing links exceed the timeout: the rest of
        the system sees a withholding agent and terminates — never a
        wrong outcome."""
        scale = {(3, k): 1000.0 for k in range(6) if k != 3}
        network = TimeoutNetwork(5, fast_model(random.Random(1), scale),
                                 round_timeout=0.1, extra_participants=1)
        outcome = run_dmw_over(network, params5, problem)
        assert not outcome.completed
        assert outcome.abort.phase == "bidding"
        assert outcome.abort.offender == 3

    def test_safety_dichotomy_under_random_slow_links(self, params5,
                                                      problem):
        expected = MinWork().run(truthful_bids(problem))
        for seed in range(6):
            rng = random.Random(seed)
            scale = {}
            # Each directed link has a 3% chance of being too slow.
            for sender in range(5):
                for recipient in range(6):
                    if sender != recipient and rng.random() < 0.03:
                        scale[(sender, recipient)] = 1000.0
            network = TimeoutNetwork(5, fast_model(rng, scale),
                                     round_timeout=0.1,
                                     extra_participants=1)
            outcome = run_dmw_over(network, params5, problem, seed=seed)
            if outcome.completed:
                assert outcome.schedule == expected.schedule
                assert list(outcome.payments) == list(expected.payments)
            else:
                assert all(outcome.utility(i, problem) == 0
                           for i in range(5))

    def test_clock_reflects_timeout_stalls(self, params5, problem):
        fast = TimeoutNetwork(5, fast_model(random.Random(1)),
                              round_timeout=0.5, extra_participants=1)
        run_dmw_over(fast, params5, problem)
        scale = {(3, 0): 1000.0}
        stalled = TimeoutNetwork(5, fast_model(random.Random(1), scale),
                                 round_timeout=0.5, extra_participants=1)
        run_dmw_over(stalled, params5, problem)
        # The stalled network burns at least one full timeout.
        assert stalled.clock > fast.clock + 0.4
