"""Unit tests for repro.network (messages, metrics, simulator)."""

import pytest

from repro.network.message import BROADCAST, Message, estimate_bytes
from repro.network.metrics import NetworkMetrics
from repro.network.simulator import SynchronousNetwork


class TestMessage:
    def test_broadcast_detection(self):
        unicast = Message(sender=0, recipient=1, kind="x", payload=None)
        broadcast = Message(sender=0, recipient=BROADCAST, kind="x",
                            payload=None)
        assert not unicast.is_broadcast
        assert broadcast.is_broadcast

    def test_round_stamp(self):
        message = Message(sender=0, recipient=1, kind="x", payload="p",
                          field_elements=3)
        stamped = message.with_round(7)
        assert stamped.round_sent == 7
        assert stamped.payload == "p"
        assert stamped.field_elements == 3

    def test_estimate_bytes(self):
        assert estimate_bytes(10, p_bits=56) == 70
        assert estimate_bytes(1, p_bits=1) == 1


class TestMetrics:
    def test_unicast_counts_once(self):
        metrics = NetworkMetrics()
        metrics.record(Message(0, 1, "share", None, field_elements=4),
                       num_agents=5)
        assert metrics.point_to_point_messages == 1
        assert metrics.field_elements == 4
        assert metrics.by_kind["share"] == 1

    def test_broadcast_expands_to_n_minus_one(self):
        metrics = NetworkMetrics()
        metrics.record(Message(0, BROADCAST, "commit", None,
                               field_elements=3), num_agents=5)
        assert metrics.point_to_point_messages == 4
        assert metrics.broadcast_events == 1
        assert metrics.field_elements == 12

    def test_merge(self):
        a, b = NetworkMetrics(), NetworkMetrics()
        a.record(Message(0, 1, "x", None), num_agents=3)
        b.record(Message(1, 0, "y", None), num_agents=3)
        b.record_round()
        a.merge(b)
        assert a.point_to_point_messages == 2
        assert a.rounds == 1

    def test_as_dict_stable_keys(self):
        metrics = NetworkMetrics()
        metrics.record(Message(0, 1, "b", None), num_agents=2)
        metrics.record(Message(0, 1, "a", None), num_agents=2)
        keys = list(metrics.as_dict())
        assert keys.index("messages[a]") < keys.index("messages[b]")


class TestSimulator:
    def test_point_to_point_delivery(self):
        network = SynchronousNetwork(3)
        network.send(0, 2, "greeting", "hi")
        assert network.deliver() == 1
        inbox = network.receive(2)
        assert len(inbox) == 1
        assert inbox[0].payload == "hi"
        assert network.receive(2) == []  # drained

    def test_no_delivery_before_deliver(self):
        network = SynchronousNetwork(2)
        network.send(0, 1, "x", None)
        assert network.peek(1) == ()

    def test_broadcast_reaches_everyone_else(self):
        network = SynchronousNetwork(4)
        network.publish(1, "announce", 42)
        network.deliver()
        for agent in (0, 2, 3):
            messages = network.receive(agent)
            assert len(messages) == 1
            assert messages[0].payload == 42
        assert network.receive(1) == []  # not delivered to self

    def test_bulletin_board_retains_history(self):
        network = SynchronousNetwork(3)
        network.publish(0, "a", 1)
        network.publish(1, "b", 2)
        network.deliver()
        assert len(network.published()) == 2
        assert [m.payload for m in network.published("a")] == [1]

    def test_filtered_receive_leaves_other_kinds(self):
        network = SynchronousNetwork(2)
        network.send(0, 1, "x", 1)
        network.send(0, 1, "y", 2)
        network.deliver()
        assert len(network.receive(1, "x")) == 1
        assert len(network.receive(1, "y")) == 1

    def test_rounds_advance(self):
        network = SynchronousNetwork(2)
        network.send(0, 1, "x", None)
        network.deliver()
        network.send(1, 0, "y", None)
        network.deliver()
        assert network.round_index == 2
        assert network.metrics.rounds == 2

    def test_self_send_rejected(self):
        network = SynchronousNetwork(2)
        with pytest.raises(ValueError):
            network.send(0, 0, "x", None)

    def test_invalid_participants_rejected(self):
        network = SynchronousNetwork(2)
        with pytest.raises(ValueError):
            network.send(0, 5, "x", None)
        with pytest.raises(ValueError):
            network.send(-1, 0, "x", None)
        with pytest.raises(ValueError):
            network.receive(9)

    def test_extra_participant_can_communicate(self):
        network = SynchronousNetwork(2, extra_participants=1)
        network.send(0, 2, "claim", "data")
        network.deliver()
        assert network.receive(2)[0].payload == "data"

    def test_extra_participant_excluded_from_broadcast_by_default(self):
        # The documented contract: extras have full send/receive rights
        # but do not change the broadcast fan-out unless opted in, and
        # the metrics charge n - 1 copies (the Theorem 11 unit).
        network = SynchronousNetwork(2, extra_participants=1)
        network.publish(0, "announce", 1)
        network.deliver()
        assert len(network.receive(1)) == 1
        assert len(network.receive(2)) == 0
        assert network.metrics.point_to_point_messages == 1

    def test_extra_participant_included_when_opted_in(self):
        network = SynchronousNetwork(2, extra_participants=1,
                                     broadcast_to_extras=True)
        network.publish(0, "announce", 1)
        network.deliver()
        assert len(network.receive(1)) == 1
        assert len(network.receive(2)) == 1
        assert network.metrics.point_to_point_messages == 2

    def test_extra_participant_broadcast_reaches_all_agents(self):
        # An extra-participant *sender* publishing with extras excluded
        # still reaches every agent, and the metrics charge the actual
        # recipient count (n copies here, not n - 1).
        network = SynchronousNetwork(2, extra_participants=1)
        network.publish(2, "outcome", 1)
        network.deliver()
        assert len(network.receive(0)) == 1
        assert len(network.receive(1)) == 1
        assert network.metrics.point_to_point_messages == 2

    def test_metrics_track_broadcast_expansion(self):
        network = SynchronousNetwork(5)
        network.publish(0, "x", None, field_elements=2)
        network.deliver()
        assert network.metrics.point_to_point_messages == 4
        assert network.metrics.field_elements == 8

    def test_needs_one_agent(self):
        with pytest.raises(ValueError):
            SynchronousNetwork(0)
        with pytest.raises(ValueError):
            SynchronousNetwork(2, extra_participants=-1)
