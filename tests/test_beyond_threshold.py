"""Coordinated deviations beyond the trust bound ``c``.

The assigned-verifier regime assumes at most ``c`` faulty agents (then
every publisher has an honest verifier).  These tests probe what happens
when a *coalition larger than c* coordinates — e.g. a corrupt publisher
whose assigned verifiers deliberately stay silent.  The paper makes no
liveness promise there ("if the number of agents drops below the
threshold, the mechanism cannot be resolved"), but *safety* must survive:
the run either completes with the exact MinWork outcome or terminates —
a wrong schedule or payment is never produced, because resolution itself
re-checks the algebra (a corrupted aggregate that survives complaint
suppression still fails eq. (12) at the true degree).
"""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.deviant import DeviantAgent, WrongAggregatesAgent
from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.scheduling.problem import SchedulingProblem


class SilentVerifierAgent(DeviantAgent):
    """Performs its assigned verifications but never complains."""

    def validate_aggregates(self, task, published):
        super().validate_aggregates(task, published)
        return []

    def validate_disclosures(self, task, rows):
        super().validate_disclosures(task, rows)
        return []

    def validate_excluded_aggregates(self, task, published):
        super().validate_excluded_aggregates(task, published)
        return []


def run_coalition(params, problem, corrupt_publisher, silent_verifiers,
                  seed=0):
    master = random.Random(seed)
    agents = []
    for index in range(params.num_agents):
        rng = random.Random(master.getrandbits(64))
        values = [int(problem.time(index, j))
                  for j in range(problem.num_tasks)]
        if index == corrupt_publisher:
            agents.append(WrongAggregatesAgent(index, params, values,
                                               rng=rng))
        elif index in silent_verifiers:
            agents.append(SilentVerifierAgent(index, params, values,
                                              rng=rng))
        else:
            agents.append(DMWAgent(index, params, values, rng=rng))
    protocol = DMWProtocol(params, agents)
    return protocol.execute(problem.num_tasks)


@pytest.fixture()
def problem():
    # All bids 3: maximal resolution slack, the friendliest case for a
    # corrupted value to try to slip through.
    return SchedulingProblem([[3]] * 5)


class TestBeyondThreshold:
    def test_within_bound_complaints_neutralize(self, params5, problem):
        """Control: c = 1 deviant alone -> complaint -> excluded -> the
        run completes correctly."""
        outcome = run_coalition(params5, problem, corrupt_publisher=4,
                                silent_verifiers=[])
        assert outcome.completed
        expected = MinWork().run(truthful_bids(problem))
        assert outcome.schedule == expected.schedule

    def test_suppressed_complaints_never_yield_wrong_outcome(self, params5,
                                                             problem):
        """The coalition: corrupt publisher 4 plus BOTH its assigned
        verifiers (3 and 2) staying silent — 3 coordinated deviants with
        c = 1.  The corrupted aggregate survives the complaint phase, but
        eq. (12) still fails on it: the run aborts; it never mis-resolves.
        """
        verifiers = params5.assigned_verifiers(4)
        outcome = run_coalition(params5, problem, corrupt_publisher=4,
                                silent_verifiers=verifiers)
        expected = MinWork().run(truthful_bids(problem))
        if outcome.completed:
            assert outcome.schedule == expected.schedule
            assert list(outcome.payments) == list(expected.payments)
        else:
            assert all(outcome.utility(i, problem) == 0 for i in range(5))

    def test_partial_suppression_still_detected(self, params5, problem):
        """Only ONE of the two assigned verifiers colludes: the other is
        honest, complains, and the run completes correctly — the c+1
        redundancy doing exactly its job."""
        verifiers = params5.assigned_verifiers(4)
        outcome = run_coalition(params5, problem, corrupt_publisher=4,
                                silent_verifiers=verifiers[:1])
        assert outcome.completed
        expected = MinWork().run(truthful_bids(problem))
        assert outcome.schedule == expected.schedule

    def test_safety_sweep_over_coalition_placements(self, params5):
        """Every (publisher, suppressed-verifier-subset) placement on a
        mixed instance: never a wrong outcome."""
        instance = SchedulingProblem([[2], [3], [2], [3], [2]])
        expected = MinWork().run(truthful_bids(instance))
        for publisher in range(5):
            verifiers = params5.assigned_verifiers(publisher)
            for suppress in ([], verifiers[:1], verifiers):
                outcome = run_coalition(params5, instance, publisher,
                                        suppress)
                if outcome.completed:
                    assert outcome.schedule == expected.schedule
                    assert list(outcome.payments) == \
                        list(expected.payments)
                else:
                    assert all(outcome.utility(i, instance) == 0
                               for i in range(5))
