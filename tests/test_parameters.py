"""Unit tests for repro.core.parameters (Phase I)."""

import pytest

from repro.core.exceptions import ParameterError
from repro.core.parameters import DMWParameters


class TestValidation:
    def test_generated_parameters_valid(self, params5):
        assert params5.num_agents == 5
        assert params5.fault_bound == 1
        assert params5.bid_values == (1, 2, 3)
        assert params5.sigma == 5  # w_k + c + 1 = 3 + 1 + 1

    def test_needs_two_agents(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(1,), bid_values=(1,))

    def test_fault_bound_range(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=-1,
                          pseudonyms=(1, 2, 3), bid_values=(1,))
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=3,
                          pseudonyms=(1, 2, 3), bid_values=(1,))

    def test_pseudonyms_distinct_nonzero(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(1, 1, 2), bid_values=(1,))
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(0, 1, 2), bid_values=(1,))

    def test_pseudonyms_distinct_mod_q(self, group_small):
        q = group_small.group.q
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(1, 1 + q, 2), bid_values=(1,))

    def test_bid_set_ordering(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(1, 2, 3, 4), bid_values=(2, 1))
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(1, 2, 3, 4), bid_values=(1, 1, 2))

    def test_bid_set_must_be_positive(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(1, 2, 3, 4), bid_values=(0, 1))

    def test_bid_set_must_be_nonempty(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=0,
                          pseudonyms=(1, 2, 3, 4), bid_values=())

    def test_max_bid_bounded_by_n_c(self, group_small):
        # n=4, c=1: w_k must be <= n - c - 1 = 2.
        with pytest.raises(ParameterError):
            DMWParameters(group_parameters=group_small, fault_bound=1,
                          pseudonyms=(1, 2, 3, 4), bid_values=(1, 2, 3))

    def test_resolvability_constraint(self, group_small):
        # n=4, c=0, W={3}: sigma=4, sigma-w_1=1 <= 3, fine.
        DMWParameters(group_parameters=group_small, fault_bound=0,
                      pseudonyms=(1, 2, 3, 4), bid_values=(3,))
        # n=4, c=2, W={1}: sigma=4, sigma-w_1=3 <= 3, boundary case fine.
        DMWParameters(group_parameters=group_small, fault_bound=2,
                      pseudonyms=(1, 2, 3, 4), bid_values=(1,))


class TestDerived:
    def test_degree_bid_roundtrip(self, params5):
        for bid in params5.bid_values:
            degree = params5.degree_for_bid(bid)
            assert params5.bid_for_degree(degree) == bid

    def test_degree_inversely_related_to_bid(self, params5):
        degrees = [params5.degree_for_bid(b) for b in params5.bid_values]
        assert degrees == sorted(degrees, reverse=True)

    def test_minimum_degree_exceeds_fault_bound(self, params5):
        # tau = sigma - y >= c + 1 — the collusion-resistance floor.
        smallest = params5.degree_for_bid(params5.bid_values[-1])
        assert smallest == params5.fault_bound + 1

    def test_invalid_bid_rejected(self, params5):
        with pytest.raises(ParameterError):
            params5.degree_for_bid(99)
        with pytest.raises(ParameterError):
            params5.bid_for_degree(0)

    def test_first_price_candidates_ascending(self, params5):
        candidates = params5.first_price_degree_candidates()
        assert candidates == sorted(candidates)
        assert candidates == [params5.sigma - w
                              for w in reversed(params5.bid_values)]

    def test_disclosure_width(self, params5):
        # y*=1: 2 rows + c=1 slack = 3.
        assert params5.disclosure_width(1) == 3
        # capped at n
        assert params5.disclosure_width(5) == 5


class TestGenerate:
    def test_default_bid_set_maximal(self, group_small):
        params = DMWParameters.generate(8, fault_bound=2,
                                        group_parameters=group_small)
        assert params.bid_values == (1, 2, 3, 4, 5)

    def test_pseudonyms_sequential(self, group_small):
        params = DMWParameters.generate(4, fault_bound=1,
                                        group_parameters=group_small)
        assert params.pseudonyms == (1, 2, 3, 4)

    def test_impossible_configuration_rejected(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters.generate(3, fault_bound=2,
                                   group_parameters=group_small)

    def test_custom_bid_values(self, group_small):
        params = DMWParameters.generate(6, fault_bound=1,
                                        bid_values=[2, 4],
                                        group_parameters=group_small)
        assert params.bid_values == (2, 4)
        assert params.sigma == 6
