"""Always-on auction service: gateway, engine, warm caches, backends.

Pins the daemon's contracts (``docs/SERVICE.md``):

1. **Lifecycle over HTTP** — submit / status / versioned report /
   metrics round-trip through the hand-rolled asyncio gateway.
2. **Concurrent-job determinism** — the same (n, m, seed) job submitted
   twice concurrently (and once cold, once warm) yields bit-identical
   outcomes and Table 1 counters, and both run reports validate; the
   only divergence is ``cache_stats`` (warm jobs hit more), which is
   the documented by-design exception.
3. **Reject path** — malformed submissions get a structured 400 with
   field-level errors and the queue is untouched.
4. **Per-job backends** — two queued jobs requesting different
   arithmetic backends both get what they asked for, even though
   ``DMW_BACKEND`` is only read at import (the daemon routes selection
   through ``using_backend()`` per job).
5. **Warm-cache store semantics** — entries survive between jobs keyed
   by group, eviction clears the group's fixed-base tables.
"""

import json
import os
import sys
import threading
import urllib.error
import urllib.request

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.crypto import backend as crypto_backend
from repro.crypto import fastexp
from repro.crypto.groups import fixture_group
from repro.obs.export import parse_prometheus, validate_run_report
from repro.service import (AuctionService, JobValidationError, ServiceGateway,
                           WarmCacheStore, parse_job)
from repro.service.engine import JobRecord  # noqa: F401 - re-export check


# ---------------------------------------------------------------------------
# Harness: one service + gateway per test that needs HTTP
# ---------------------------------------------------------------------------

class _Client:
    def __init__(self, port):
        self.base = "http://127.0.0.1:%d" % port

    def get(self, path):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as r:
                body = r.read()
                kind = r.headers.get("Content-Type", "")
                return r.status, (json.loads(body) if "json" in kind
                                  else body.decode())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def post(self, path, document):
        data = json.dumps(document).encode()
        request = urllib.request.Request(
            self.base + path, data=data,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=30) as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture
def service():
    service = AuctionService(warm_capacity=4, pool_workers=2)
    yield service
    service.close()


@pytest.fixture
def client(service):
    import asyncio

    gateway = ServiceGateway(service)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        loop.run_until_complete(gateway.start())
        started.set()
        loop.run_forever()
        loop.run_until_complete(gateway.stop())
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10)
    yield _Client(gateway.port)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)
    assert loop.is_closed()


JOB = {"agents": 5, "tasks": 3, "seed": 7}


def _signature(report):
    """The bit-identity surface: outcome + Table 1 counters."""
    return {
        "schedule": report["schedule"],
        "payments": report["payments"],
        "totals": report["totals"],
        "params": report["params"],
    }


# ---------------------------------------------------------------------------
# 1. Lifecycle over HTTP
# ---------------------------------------------------------------------------

class TestGatewayLifecycle:
    def test_submit_status_report_roundtrip(self, service, client):
        status, health = client.get("/healthz")
        assert (status, health["status"]) == (200, "ok")
        status, record = client.post("/jobs", JOB)
        assert status == 202
        assert record["state"] == "queued"
        job_id = record["id"]
        assert service.wait_idle(120)
        status, record = client.get("/jobs/" + job_id)
        assert status == 200
        assert record["state"] == "done"
        assert record["completed"] is True
        assert record["duration_s"] > 0
        status, report = client.get("/jobs/%s/report" % job_id)
        assert status == 200
        validate_run_report(report)
        assert report["version"] == 4

    def test_unknown_routes_and_methods(self, service, client):
        assert client.get("/jobs/nope")[0] == 404
        assert client.get("/bogus")[0] == 404
        status, _ = client.post("/healthz", {})
        assert status == 405

    def test_report_conflict_until_finished(self, service, client):
        status, record = client.post("/jobs", JOB)
        assert status == 202
        # Queued or running either way: the report is not served early.
        status, body = client.get("/jobs/%s/report" % record["id"])
        assert status in (200, 409)
        assert service.wait_idle(120)
        status, _ = client.get("/jobs/%s/report" % record["id"])
        assert status == 200


# ---------------------------------------------------------------------------
# 2. Concurrent-job determinism + warm/cold bit-identity
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_concurrent_same_job_bit_identical(self, service, client):
        results = []

        def submit():
            results.append(client.post("/jobs", JOB))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [status for status, _ in results] == [202, 202]
        assert service.wait_idle(120)
        ids = sorted(record["id"] for _, record in results)
        reports = []
        for job_id in ids:
            status, report = client.get("/jobs/%s/report" % job_id)
            assert status == 200
            validate_run_report(report)
            reports.append(report)
        assert _signature(reports[0]) == _signature(reports[1])

    def test_warm_vs_cold_bit_identical(self, service):
        cold = service.submit(JOB)
        warm = service.submit(JOB)
        assert service.wait_idle(120)
        assert (cold.state, warm.state) == ("done", "done")
        assert cold.warm is False
        assert warm.warm is True
        validate_run_report(cold.report)
        validate_run_report(warm.report)
        assert _signature(cold.report) == _signature(warm.report)
        # Outcome-level bit identity: schedule, payments, per-agent
        # Table 1 counter snapshots.
        assert cold.outcome.schedule.assignment == \
            warm.outcome.schedule.assignment
        assert cold.outcome.payments == warm.outcome.payments
        assert cold.outcome.agent_operations == \
            warm.outcome.agent_operations
        # The documented divergence: the warm job serves lookups from
        # the seeded entries, so it hits strictly more.
        assert warm.cache_stats["hits"] > cold.cache_stats["hits"]

    def test_matches_direct_protocol_run(self, service):
        record = service.submit(JOB)
        assert service.wait_idle(120)
        import random

        from repro.core.agent import DMWAgent
        from repro.core.parameters import DMWParameters
        from repro.core.protocol import DMWProtocol
        from repro.scheduling import workloads

        parameters = DMWParameters.generate(5, fault_bound=1)
        problem = workloads.random_discrete(5, 3, parameters.bid_values,
                                            random.Random(7))
        master = random.Random(8)
        agents = [DMWAgent(i, parameters,
                           [int(problem.time(i, j)) for j in range(3)],
                           rng=random.Random(master.getrandbits(64)))
                  for i in range(5)]
        outcome = DMWProtocol(parameters, agents).execute(3)
        assert record.outcome.schedule.assignment == \
            outcome.schedule.assignment
        assert record.outcome.payments == outcome.payments
        assert record.outcome.agent_operations == outcome.agent_operations

    def test_pool_mode_matches_sequential(self, service):
        sequential = service.submit(JOB)
        pooled = service.submit({**JOB, "mode": "pool", "workers": 2})
        pooled_again = service.submit({**JOB, "mode": "pool", "workers": 2})
        assert service.wait_idle(300)
        assert sequential.state == "done", sequential.error
        assert pooled.state == "done", pooled.error
        assert pooled_again.state == "done", pooled_again.error
        assert pooled.outcome.schedule.assignment == \
            sequential.outcome.schedule.assignment
        assert pooled.outcome.payments == sequential.outcome.payments
        assert pooled.outcome.agent_operations == \
            sequential.outcome.agent_operations
        # The resident executor served both pool jobs.
        assert pooled.outcome.parallelism["workers"] == 2
        assert pooled_again.outcome.agent_operations == \
            pooled.outcome.agent_operations


# ---------------------------------------------------------------------------
# 3. Reject path: structured 4xx, queue untouched
# ---------------------------------------------------------------------------

class TestRejectPath:
    @pytest.mark.parametrize("payload, field", [
        ({"agents": 2, "tasks": 3, "seed": 1}, "agents"),
        ({"agents": 5, "tasks": 0, "seed": 1}, "tasks"),
        ({"agents": 5, "tasks": 3}, "seed"),
        ({"agents": 5, "tasks": 3, "seed": 1, "mode": "warp"}, "mode"),
        ({"agents": 5, "tasks": 3, "seed": 1, "backend": "abacus"},
         "backend"),
        ({"agents": 5, "tasks": 3, "seed": 1, "group_size": "galactic"},
         "group_size"),
        ({"agents": 5, "tasks": 3, "seed": 1, "surprise": True},
         "surprise"),
        ({"agents": 5, "tasks": 3, "seed": 1, "times": [[1]]}, "times"),
    ])
    def test_malformed_submission_structured_400(self, service, client,
                                                 payload, field):
        before = len(service.jobs())
        status, body = client.post("/jobs", payload)
        assert status == 400
        assert body["error"] == "invalid_job"
        assert field in {entry["field"] for entry in body["detail"]}
        assert len(service.jobs()) == before  # queue untouched

    def test_non_json_body_rejected(self, service, client):
        request = urllib.request.Request(
            client.base + "/jobs", data=b"not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_parse_job_errors_carry_every_field(self):
        with pytest.raises(JobValidationError) as excinfo:
            parse_job({"agents": 1, "tasks": -2})
        fields = {entry["field"] for entry in excinfo.value.errors}
        assert {"agents", "tasks", "seed"} <= fields


# ---------------------------------------------------------------------------
# 4. Per-job arithmetic backend selection
# ---------------------------------------------------------------------------

class TestPerJobBackend:
    def test_two_jobs_two_backends(self, service, monkeypatch):
        # The container has only the python engine; register a named
        # clone so two *different* names are selectable.
        class AltBackend(crypto_backend.PythonBackend):
            name = "python-alt"

        monkeypatch.setitem(crypto_backend._FACTORIES, "python-alt",
                            AltBackend)
        monkeypatch.setattr(
            crypto_backend, "available_backends",
            lambda: ["python", "python-alt"])
        first = service.submit({**JOB, "backend": "python"})
        second = service.submit({**JOB, "backend": "python-alt"})
        assert service.wait_idle(120)
        assert first.state == "done", first.error
        assert second.state == "done", second.error
        assert first.report["provenance"]["arithmetic_backend"] == "python"
        assert second.report["provenance"]["arithmetic_backend"] == \
            "python-alt"
        # The daemon's ambient engine is restored between jobs.
        assert crypto_backend.ACTIVE.name == "python"
        # Backends never change computed values.
        assert first.outcome.agent_operations == \
            second.outcome.agent_operations
        assert first.outcome.schedule.assignment == \
            second.outcome.schedule.assignment


# ---------------------------------------------------------------------------
# 5. Warm-cache store semantics
# ---------------------------------------------------------------------------

class TestWarmCacheStore:
    def _parameters(self, size):
        from repro.core.parameters import DMWParameters
        return DMWParameters.generate(5, group_parameters=None,
                                      group_size=size)

    def test_entries_survive_and_stats_stay_per_job(self):
        store = WarmCacheStore(capacity=2)
        parameters = self._parameters("tiny")
        cold = store.cache_for(parameters)
        assert store.warm(parameters) is False
        cold.put_evaluation(("k",), ("v",))
        cold.get_evaluation(("k",))
        store.absorb(parameters, cold)
        assert store.warm(parameters) is True
        warm = store.cache_for(parameters)
        # Entries came across, counters did not.
        assert warm.get_evaluation(("k",)) == ("v",)
        assert warm.hits == 1 and warm.misses == 0

    def test_eviction_clears_fixed_base_tables(self):
        store = WarmCacheStore(capacity=1)
        tiny = self._parameters("tiny")
        small = self._parameters("small")
        fastexp.clear_fixed_base_tables()
        # Touch both groups' generator tables.
        tiny.group_parameters.exp_z1(3)
        small.group_parameters.exp_z1(3)
        tiny_p = tiny.group_parameters.group.p
        entries = fastexp.fixed_base_table_stats()["entries"]
        assert entries >= 2
        store.absorb(tiny, store.cache_for(tiny))
        store.absorb(small, store.cache_for(small))  # evicts tiny
        assert store.stats()["evictions"] == 1
        remaining = fastexp.TABLE_CACHE._tables
        assert not any(key[1] == tiny_p for key in remaining)

    def test_group_key_distinguishes_fixtures(self):
        from repro.service.warmcache import group_key
        assert group_key(fixture_group("tiny")) != \
            group_key(fixture_group("small"))
        assert group_key(fixture_group("tiny")) == \
            group_key(fixture_group("tiny"))


# ---------------------------------------------------------------------------
# 6. Metrics endpoint
# ---------------------------------------------------------------------------

class TestMetricsEndpoint:
    def test_canonical_series_and_histogram(self, service, client):
        status, _ = client.post("/jobs", JOB)
        assert status == 202
        assert service.wait_idle(120)
        status, text = client.get("/metrics")
        assert status == 200
        samples = parse_prometheus(text)
        names = {name for name, _ in samples}
        for name in ("dmw_service_jobs_total", "dmw_service_queue_depth",
                     "dmw_service_job_duration_seconds_bucket",
                     "dmw_service_job_duration_seconds_count",
                     "dmw_warm_cache_groups", "dmw_warm_cache_entries",
                     "dmw_fixed_base_table_entries",
                     "dmw_fixed_base_table_hits",
                     "dmw_run_completed", "dmw_network_messages_total",
                     "dmw_agent_operations_total",
                     "dmw_cache_events_total"):
            assert name in names, "missing %s" % name
        # The latency histogram carries mode/cache labels per job class.
        assert any(name == "dmw_service_job_duration_seconds_count"
                   and dict(labels).get("cache") == "cold"
                   for name, labels in samples)
