"""Tests for the assigned-verifier/complaint regime vs full verification.

The Theorem 12 cost budget ``O(m n^2 log p)`` per agent holds only when
each published value is checked by ``c + 1`` assigned verifiers instead of
everyone (DESIGN.md); these tests pin down that the two regimes produce
identical outcomes, that the assigned regime is asymptotically cheaper,
and that the complaint/arbitration path neutralizes the deviations it
introduces.
"""

import random

import pytest

from repro.analysis.faithfulness import (
    evaluate_deviation,
    faithfulness_violations,
    honest_factory,
    participation_violations,
    run_deviation_matrix,
    run_with_agents,
)
from repro.core.deviant import (
    FalseComplaintAgent,
    FalseWinnerClaimAgent,
    SilentWinnerAgent,
    WrongAggregatesAgent,
    standard_deviations,
)
from repro.core.exceptions import ParameterError
from repro.core.parameters import DMWParameters
from repro.core.protocol import run_dmw
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture(scope="module")
def full_params(group_small):
    return DMWParameters.generate(5, fault_bound=1,
                                  group_parameters=group_small,
                                  verification_mode="full")


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [2, 1],
        [1, 3],
        [3, 2],
        [2, 2],
        [3, 3],
    ])


class TestModeValidation:
    def test_invalid_mode_rejected(self, group_small):
        with pytest.raises(ParameterError):
            DMWParameters.generate(5, group_parameters=group_small,
                                   verification_mode="paranoid")


class TestVerifierAssignment:
    def test_each_publisher_has_c_plus_one_verifiers(self, params5):
        for publisher in range(5):
            verifiers = params5.assigned_verifiers(publisher)
            assert len(verifiers) == params5.fault_bound + 1
            assert publisher not in verifiers
            assert len(set(verifiers)) == len(verifiers)

    def test_assignments_are_inverse_of_verifiers(self, params5):
        for verifier in range(5):
            for publisher in params5.verification_assignments(verifier):
                assert verifier in params5.assigned_verifiers(publisher)


class TestOutcomeEquivalence:
    def test_same_outcome_in_both_modes(self, problem, params5, full_params):
        assigned = run_dmw(problem, parameters=params5,
                           rng=random.Random(1))
        full = run_dmw(problem, parameters=full_params,
                       rng=random.Random(1))
        assert assigned.completed and full.completed
        assert assigned.schedule == full.schedule
        assert assigned.payments == full.payments
        # Both match centralized MinWork.
        result = MinWork().run(truthful_bids(problem))
        assert assigned.schedule == result.schedule

    def test_honest_message_counts_identical(self, problem, params5,
                                             full_params):
        """No complaints on honest runs: the complaint machinery is free."""
        assigned = run_dmw(problem, parameters=params5)
        full = run_dmw(problem, parameters=full_params)
        assert assigned.network_metrics.point_to_point_messages == \
            full.network_metrics.point_to_point_messages
        assert assigned.network_metrics.rounds == full.network_metrics.rounds

    def test_assigned_mode_is_cheaper_per_agent(self, problem, params5,
                                                full_params):
        assigned = run_dmw(problem, parameters=params5)
        full = run_dmw(problem, parameters=full_params)
        assert assigned.max_agent_work < full.max_agent_work


class TestComplaintPath:
    def test_wrong_aggregates_triggers_complaints_and_exclusion(self):
        params = DMWParameters.generate(5, fault_bound=1)
        # Minimum bid 3 -> resolution has slack: the excluded publisher
        # does not break the protocol.
        problem = SchedulingProblem([[3], [3], [3], [3], [3]])

        def factory(index, parameters, true_values, rng):
            return WrongAggregatesAgent(index, parameters, true_values,
                                        rng=rng)

        outcome = evaluate_deviation(problem, params, "wrong", factory,
                                     deviant_index=2)
        assert outcome.completed
        assert outcome.gain <= 0

    def test_false_complaints_change_nothing(self, problem, params5):
        def factory(index, parameters, true_values, rng):
            return FalseComplaintAgent(index, parameters, true_values,
                                       rng=rng)

        outcome = evaluate_deviation(problem, params5, "false_complaint",
                                     factory, deviant_index=1)
        assert outcome.completed
        assert outcome.gain == 0.0
        assert outcome.min_honest_utility >= 0

    def test_false_complaint_outcome_matches_honest(self, problem, params5):
        honest = run_with_agents(params5, [honest_factory] * 5, problem)

        def factory(index, parameters, true_values, rng):
            return FalseComplaintAgent(index, parameters, true_values,
                                       rng=rng)

        factories = [honest_factory] * 5
        factories[3] = factory
        deviating = run_with_agents(params5, factories, problem)
        assert deviating.schedule == honest.schedule
        assert deviating.payments == honest.payments


class TestWinnerClaims:
    def test_silent_winner_still_identified(self, problem, params5):
        def factory(index, parameters, true_values, rng):
            return SilentWinnerAgent(index, parameters, true_values, rng=rng)

        # Agent 1 wins task 0 (bid 1); make IT the silent one.
        outcome = evaluate_deviation(problem, params5, "silent", factory,
                                     deviant_index=1)
        assert outcome.completed
        assert outcome.gain == 0.0

    def test_false_claim_discarded(self, problem, params5):
        def factory(index, parameters, true_values, rng):
            return FalseWinnerClaimAgent(index, parameters, true_values,
                                         rng=rng)

        outcome = evaluate_deviation(problem, params5, "claim", factory,
                                     deviant_index=4)  # bids 3,3: never wins
        assert outcome.completed
        assert outcome.gain == 0.0

    def test_claims_match_winners_on_honest_run(self, problem, params5):
        outcome = run_dmw(problem, parameters=params5)
        # Every task's winner claimed (its bid equals the first price).
        assert outcome.network_metrics.by_kind["winner_claim"] > 0


class TestFullMatrixInBothModes:
    @pytest.mark.parametrize("mode", ["assigned", "full"])
    def test_no_deviation_profits_in_either_mode(self, problem, group_small,
                                                 mode):
        params = DMWParameters.generate(5, fault_bound=1,
                                        group_parameters=group_small,
                                        verification_mode=mode)
        outcomes = run_deviation_matrix(problem, params,
                                        deviant_indices=[1])
        assert faithfulness_violations(outcomes) == []
        assert participation_violations(outcomes) == []
