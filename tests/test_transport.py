"""Transport seam: golden bit-identity, socket parity, timeout parity.

Three guarantees pinned here:

1. **Golden bit-identity** — the machine/transport refactor changed the
   driver's shape, not its behaviour: every golden fixture entry
   (captured at the pre-refactor driver, sequential / phase-barrier /
   process-pool) reproduces exactly over the in-process transport.
2. **Asyncio socket parity** — the localhost-TCP transport produces
   identical outcomes, per-agent Table 1 counters, and network totals to
   the in-process simulator, including under the latency model with
   retries (it consumes the same RNG streams in the same order).
3. **Timeout/synchronous differential** — a ``TimeoutNetwork`` with
   :data:`~repro.network.asynchronous.NO_RETRY` and a zero-latency model
   is bit-identical to a bare ``SynchronousNetwork``: outcomes,
   ``NetworkMetrics``, and the full flight-event sequence, under fault
   plans with dropped links and crashes.
"""

import gc
import json
import os
import random
import sys
import warnings

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from golden_transport import FIXTURE_PATH, GOLDEN_DRIVERS, capture_run

from repro.core import DMWParameters
from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol, run_dmw
from repro.network.asynchronous import NO_RETRY, RetryPolicy, TimeoutNetwork
from repro.network.faults import FaultPlan
from repro.network.latency import LatencyModel
from repro.network.simulator import SynchronousNetwork
from repro.network.transport import (InProcessTransport, TransportError,
                                     create_transport)
from repro.obs.flight import FlightRecorder
from repro.scheduling import workloads


def _load_fixture():
    with open(FIXTURE_PATH) as handle:
        return json.load(handle)


GOLDEN = _load_fixture()


# ---------------------------------------------------------------------------
# 1. Golden bit-identity of the refactored driver
# ---------------------------------------------------------------------------

class TestGoldenBitIdentity:
    """Every fixture entry reproduces exactly over InProcessTransport."""

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_entry_is_bit_identical(self, key):
        shape, driver = key.rsplit("/", 1)
        n_part, m_part, seed_part = shape.split("_")
        n, m, seed = int(n_part[1:]), int(m_part[1:]), int(seed_part[4:])
        assert driver in GOLDEN_DRIVERS
        fresh = capture_run(n, m, seed, driver)
        golden = GOLDEN[key]
        for field in golden:
            assert fresh[field] == golden[field], \
                "%s diverged on %s" % (key, field)


# ---------------------------------------------------------------------------
# 2. Transport interface units
# ---------------------------------------------------------------------------

class TestTransportFactory:
    def test_inprocess_delegates_to_network(self):
        network = SynchronousNetwork(3, extra_participants=1)
        transport = InProcessTransport(network)
        assert transport.network_view() is network
        transport.send(0, 1, "x", "payload")
        transport.publish(2, "y", "board")
        assert transport.step() == 3  # 1 unicast + 2 broadcast copies
        assert transport.receive(1, "x")[0].payload == "payload"
        assert [m.payload for m in transport.receive(0)] == ["board"]
        assert transport.num_agents == 3
        assert transport.num_participants == 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            create_transport("carrier-pigeon", 3)

    def test_inprocess_rejects_socket_options(self):
        with pytest.raises(ValueError):
            create_transport("inprocess", 3, round_timeout=0.5)

    def test_close_is_noop_for_inprocess(self):
        transport = create_transport("inprocess", 2)
        transport.close()  # must not raise


class TestAsyncioTransportUnit:
    def test_round_trip_and_validation(self):
        transport = create_transport("asyncio", 3)
        try:
            transport.send(0, 1, "x", {"value": 41})
            transport.publish(2, "y", "board")
            with pytest.raises(ValueError):
                transport.send(0, 0, "self", None)
            with pytest.raises(ValueError):
                transport.send(0, 9, "oob", None)
            assert transport.step() == 3
            assert transport.receive(1, "x")[0].payload == {"value": 41}
            assert [m.payload for m in transport.receive(0)] == ["board"]
            assert transport.round_index == 1
            assert len(transport.published("y")) == 1
        finally:
            transport.close()

    def test_step_after_close_raises_transport_error(self):
        transport = create_transport("asyncio", 2)
        transport.close()
        transport.close()  # idempotent
        with pytest.raises(TransportError):
            transport.step()


class TestAsyncioTransportLifecycle:
    """Daemon-grade shutdown: repeated runs must not leak loop state.

    A long-lived service (``dmw serve``) creates and destroys many
    transports in one process; ``close()`` has to drain every reader
    task and socket, and even a transport dropped *without* ``close()``
    (a run aborting mid-round and unwinding past its finally) must be
    finalized without pending tasks or ``ResourceWarning``s.
    """

    def test_repeated_runs_drain_tasks_and_raise_no_warnings(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                transport = create_transport("asyncio", 3)
                transport.send(0, 1, "x", 1)
                transport.step()
                # Abort mid-round: a message is queued but never stepped.
                transport.send(1, 2, "y", 2)
                tasks = list(transport._tasks)
                loop = transport._loop
                transport.close()
                assert all(task.done() for task in tasks)
                assert transport._tasks == []
                assert transport._hub_writers == {}
                assert transport._client_writers == {}
                assert loop.is_closed()
                transport.close()  # stays idempotent after the drain
            gc.collect()
        leaked = [w for w in caught
                  if issubclass(w.category, ResourceWarning)]
        assert not leaked, [str(w.message) for w in leaked]

    def test_transport_dropped_without_close_is_finalized(self):
        import weakref

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            transport = create_transport("asyncio", 3)
            transport.send(0, 1, "x", 1)
            transport.step()
            # Weak refs only: a strong ref from the test would keep the
            # loop <-> task <-> transport cycle reachable forever.
            transport_ref = weakref.ref(transport)
            loop_ref = weakref.ref(transport._loop)
            # The daemon crash path: the object is dropped with live
            # reader tasks, open sockets, and an open private loop.
            del transport
            for _ in range(3):
                gc.collect()
        assert transport_ref() is None
        loop = loop_ref()
        assert loop is None or loop.is_closed()
        leaked = [w for w in caught
                  if issubclass(w.category, ResourceWarning)]
        assert not leaked, [str(w.message) for w in leaked]


# ---------------------------------------------------------------------------
# 3. Asyncio socket parity with the in-process simulator
# ---------------------------------------------------------------------------

def _outcome_signature(outcome):
    return {
        "completed": outcome.completed,
        "schedule": (list(outcome.schedule.assignment)
                     if outcome.schedule else None),
        "payments": list(outcome.payments) if outcome.payments else None,
        "agent_operations": [dict(ops) for ops in outcome.agent_operations],
        "network": outcome.network_metrics.as_dict(),
    }


class TestAsyncioSocketParity:
    @pytest.mark.parametrize("n,m,seed", [(5, 3, 7), (4, 2, 11)])
    def test_identical_outcome_and_counters(self, n, m, seed):
        parameters = DMWParameters.generate(n, fault_bound=1,
                                            group_size="small")
        problem = workloads.random_discrete(n, m, parameters.bid_values,
                                            random.Random(seed))
        reference = run_dmw(problem, parameters=parameters,
                            rng=random.Random(seed + 1))
        socketed = run_dmw(problem, parameters=parameters,
                           rng=random.Random(seed + 1),
                           transport="asyncio")
        assert _outcome_signature(socketed) == _outcome_signature(reference)

    def test_timeout_and_retry_parity_with_timeout_network(self):
        """Same latency seed, timeout, and retry policy => same totals."""
        n, m, seed = 5, 2, 4
        parameters = DMWParameters.generate(n, fault_bound=1,
                                            group_size="small")
        problem = workloads.random_discrete(n, m, parameters.bid_values,
                                            random.Random(seed))
        policy = RetryPolicy(max_attempts=2)
        timeout = 0.05

        network = TimeoutNetwork(
            n, LatencyModel(random.Random(99)), round_timeout=timeout,
            extra_participants=1, retry_policy=policy)
        reference = _run_protocol(parameters, problem, seed, network=network)

        transport = create_transport(
            "asyncio", n, latency_model=LatencyModel(random.Random(99)),
            round_timeout=timeout, retry_policy=policy)
        try:
            socketed = _run_protocol(parameters, problem, seed,
                                     transport=transport)
        finally:
            transport.close()

        assert _outcome_signature(socketed) == _outcome_signature(reference)
        view = transport
        assert view.clock == pytest.approx(network.clock)
        assert view.late_messages == network.late_messages
        assert view.retries == network.retries
        assert view.recovered == network.recovered
        assert view.round_durations == pytest.approx(network.round_durations)


def _agents_for(parameters, problem, seed):
    master = random.Random(seed + 1)
    return [
        DMWAgent(index, parameters,
                 [int(problem.time(index, task))
                  for task in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(parameters.num_agents)
    ]


def _run_protocol(parameters, problem, seed, network=None, transport=None,
                  flight=None, degraded=False):
    agents = _agents_for(parameters, problem, seed)
    protocol = DMWProtocol(parameters, agents, network=network,
                           transport=transport, flight=flight)
    return protocol.execute(problem.num_tasks, degraded=degraded)


# ---------------------------------------------------------------------------
# 4. TimeoutNetwork(NO_RETRY, zero latency) == SynchronousNetwork
# ---------------------------------------------------------------------------

def _zero_latency():
    return LatencyModel(random.Random(0), base=0.0, jitter=0.0)


def _flight_signature(flight):
    """The full event sequence minus wall-clock (and span) identity."""
    return [(e.seq, e.type, e.round, e.kind, e.sender, e.receiver,
             e.field_elements, e.task, e.attempt, e.link, e.detail)
            for e in flight.events]


FAULT_PLANS = {
    "clean": lambda: None,
    "dropped_links": lambda: FaultPlan(dropped_links={(0, 2), (3, 1)}),
    "crash": lambda: FaultPlan(crashed_from_round={2: 2}),
    "drop_and_crash": lambda: FaultPlan(dropped_links={(1, 0)},
                                        crashed_from_round={3: 4}),
}


class TestTimeoutMatchesSynchronousDifferential:
    """NO_RETRY + zero latency must be indistinguishable from synchrony.

    The timeout barrier only changes behaviour when a copy is *late*;
    with a zero-latency model nothing ever is, so outcomes, metrics, and
    the complete flight-event stream (link fields included) must be
    bit-identical under any fault plan.
    """

    @pytest.mark.parametrize("plan_name", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("degraded", [False, True])
    def test_bit_identical_under_fault_plan(self, plan_name, degraded):
        n, m, seed = 5, 2, 13
        parameters = DMWParameters.generate(n, fault_bound=1,
                                            group_size="small")
        problem = workloads.random_discrete(n, m, parameters.bid_values,
                                            random.Random(seed))

        sync_flight = FlightRecorder()
        sync_network = SynchronousNetwork(
            n, fault_plan=FAULT_PLANS[plan_name](), extra_participants=1)
        sync_outcome = _run_protocol(parameters, problem, seed,
                                     network=sync_network,
                                     flight=sync_flight, degraded=degraded)

        timeout_flight = FlightRecorder()
        timeout_network = TimeoutNetwork(
            n, _zero_latency(), round_timeout=1.0,
            fault_plan=FAULT_PLANS[plan_name](), extra_participants=1,
            retry_policy=NO_RETRY)
        timeout_outcome = _run_protocol(parameters, problem, seed,
                                        network=timeout_network,
                                        flight=timeout_flight,
                                        degraded=degraded)

        assert _outcome_signature(timeout_outcome) == \
            _outcome_signature(sync_outcome)
        if sync_outcome.abort is not None:
            assert timeout_outcome.abort.reason == sync_outcome.abort.reason
            assert timeout_outcome.abort.phase == sync_outcome.abort.phase
        assert sorted(timeout_outcome.task_aborts) == \
            sorted(sync_outcome.task_aborts)
        assert _flight_signature(timeout_flight) == \
            _flight_signature(sync_flight)
        assert timeout_flight.summary() == sync_flight.summary()
        # Nothing was ever late, so the timeout bookkeeping must be inert.
        assert timeout_network.late_messages == 0
        assert timeout_network.retries == 0
        assert timeout_network.recovered == 0
