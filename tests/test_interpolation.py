"""Unit tests for repro.crypto.interpolation (paper §2.4)."""

import random

import pytest

from repro.crypto.interpolation import (
    interpolate_at_zero,
    lagrange_weights_at_zero,
    resolve_degree,
    resolve_degree_in_exponent,
)
from repro.crypto.modular import OperationCounter
from repro.crypto.polynomials import Polynomial

Q = 2 ** 31 - 1  # Mersenne prime, large enough to make accidents unlikely


def shares_of(poly, points):
    return [poly.evaluate(x) for x in points]


class TestLagrangeWeights:
    def test_weights_reconstruct_constant(self):
        # For f(x) = 7 (degree 0) any weights must satisfy sum(w) == 1.
        weights = lagrange_weights_at_zero([1, 2, 3], Q)
        assert sum(weights) % Q == 1

    def test_weights_match_direct_interpolation(self, rng):
        poly = Polynomial.random(2, Q, rng, zero_constant_term=False)
        points = [5, 9, 11]
        weights = lagrange_weights_at_zero(points, Q)
        direct = sum(w * poly.evaluate(x) for w, x in zip(weights, points)) % Q
        assert direct == poly.coefficient(0)

    def test_rejects_duplicate_points(self):
        with pytest.raises(ValueError):
            lagrange_weights_at_zero([1, 2, 1], Q)

    def test_rejects_zero_point(self):
        with pytest.raises(ValueError):
            lagrange_weights_at_zero([0, 1], Q)

    def test_rejects_points_equal_mod_q(self):
        with pytest.raises(ValueError):
            lagrange_weights_at_zero([1, 1 + Q], Q)


class TestInterpolateAtZero:
    def test_recovers_constant_term_exactly(self, rng):
        for degree in range(1, 6):
            poly = Polynomial.random(degree, Q, rng,
                                     zero_constant_term=False)
            points = list(range(1, degree + 2))
            value = interpolate_at_zero(points, shares_of(poly, points), Q)
            assert value == poly.coefficient(0)

    def test_zero_constant_term_gives_zero(self, rng):
        poly = Polynomial.random(4, Q, rng)
        points = list(range(1, 6))
        assert interpolate_at_zero(points, shares_of(poly, points), Q) == 0

    def test_too_few_points_generally_wrong(self, rng):
        # s = degree points of a degree-d polynomial: interpolant differs
        # from f at 0 (this is DESIGN.md decision 2 — the paper's s=d claim
        # does not hold; the concrete counterexample is f(x) = x^2).
        poly = Polynomial([0, 0, 1], Q)  # x^2
        value = interpolate_at_zero([1, 2], shares_of(poly, [1, 2]), Q)
        assert value != 0

    def test_extra_points_still_exact(self, rng):
        poly = Polynomial.random(3, Q, rng, zero_constant_term=False)
        points = list(range(1, 9))
        value = interpolate_at_zero(points, shares_of(poly, points), Q)
        assert value == poly.coefficient(0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            interpolate_at_zero([1, 2], [1], Q)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interpolate_at_zero([], [], Q)

    def test_quadratic_cost(self):
        poly = Polynomial([3, 1, 4, 1, 5, 9], Q)
        points = list(range(1, 7))
        small, large = OperationCounter(), OperationCounter()
        interpolate_at_zero(points[:3], shares_of(poly, points[:3]), Q, small)
        interpolate_at_zero(points, shares_of(poly, points), Q, large)
        # Theta(s^2): doubling s roughly quadruples multiplications.
        assert large.multiplications > 2.5 * small.multiplications


class TestResolveDegree:
    def test_resolves_exact_degree(self, rng):
        for degree in range(1, 8):
            poly = Polynomial.random(degree, Q, rng)
            points = list(range(1, 12))
            resolved = resolve_degree(points, shares_of(poly, points), Q)
            assert resolved == degree

    def test_respects_candidate_list(self, rng):
        poly = Polynomial.random(4, Q, rng)
        points = list(range(1, 10))
        values = shares_of(poly, points)
        assert resolve_degree(points, values, Q, candidates=[4]) == 4
        assert resolve_degree(points, values, Q, candidates=[2, 3]) is None

    def test_candidates_above_true_degree_pass(self, rng):
        # Interpolating more points than the degree needs still vanishes.
        poly = Polynomial.random(3, Q, rng)
        points = list(range(1, 10))
        values = shares_of(poly, points)
        assert resolve_degree(points, values, Q, candidates=[5]) == 5

    def test_insufficient_points_skipped(self, rng):
        poly = Polynomial.random(5, Q, rng)
        points = list(range(1, 5))  # only 4 points: degree 5 needs 6
        assert resolve_degree(points, shares_of(poly, points), Q,
                              candidates=[5]) is None

    def test_sum_resolves_to_max_degree(self, rng):
        a = Polynomial.random(3, Q, rng)
        b = Polynomial.random(6, Q, rng)
        total = a + b
        points = list(range(1, 10))
        assert resolve_degree(points, shares_of(total, points), Q) == 6


class TestResolveDegreeInExponent:
    def test_matches_plaintext_resolution(self, group_small, rng):
        group = group_small.group
        q = group.q
        poly = Polynomial.random(4, q, rng)
        points = list(range(1, 9))
        values = [group.exp(group_small.z1, poly.evaluate(x))
                  for x in points]
        assert resolve_degree_in_exponent(group, points, values) == 4

    def test_candidates_respected(self, group_small, rng):
        group = group_small.group
        poly = Polynomial.random(3, group.q, rng)
        points = list(range(1, 8))
        values = [group.exp(group_small.z1, poly.evaluate(x))
                  for x in points]
        assert resolve_degree_in_exponent(group, points, values,
                                          candidates=[2]) is None
        assert resolve_degree_in_exponent(group, points, values,
                                          candidates=[2, 3]) == 3

    def test_corrupted_value_breaks_resolution(self, group_small, rng):
        group = group_small.group
        poly = Polynomial.random(3, group.q, rng)
        points = list(range(1, 6))
        values = [group.exp(group_small.z1, poly.evaluate(x))
                  for x in points]
        values[0] = group.mul(values[0], group_small.z1)
        assert resolve_degree_in_exponent(group, points, values,
                                          candidates=[3]) is None

    def test_length_mismatch_rejected(self, group_small):
        with pytest.raises(ValueError):
            resolve_degree_in_exponent(group_small.group, [1, 2], [1])
