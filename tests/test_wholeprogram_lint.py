"""Acceptance tests for the whole-program dmwlint layer.

Covers the cross-file capabilities the per-file engine cannot express:
the interprocedural DMW004 taint pass (asserted both ways against the
intra-function pass), DMW009 on a reordered-phase mutant of the real
``core/machine.py``, SARIF 2.1.0 export, the baseline ratchet, the
parallel per-file pass, and the new CLI surface.
"""

import ast
import json
import os

import pytest

from repro.analysis.static import (
    DEFAULT_RULES,
    UsageError,
    discover_files,
    lint_source,
    rule_by_id,
    run_paths,
    to_sarif,
)
from repro.analysis.static.base import FileContext, Violation
from repro.analysis.static.baseline import (
    BaselineError,
    apply_baseline,
    fingerprint_violations,
    load_baseline,
    write_baseline,
)
from repro.analysis.static.cli import main as lint_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "fixtures", "dmwlint")
PROJECT_FIXTURES = os.path.join(FIXTURE_DIR, "project_dmw004")
MACHINE_PATH = os.path.join(REPO_ROOT, "src", "repro", "core", "machine.py")


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


class TestInterproceduralTaint:
    """The two-hop cross-module leak, asserted both ways."""

    def test_intra_pass_provably_misses_the_leak(self):
        rule = rule_by_id("DMW004")
        for name in ("handler.py", "relay.py", "audit.py"):
            path = os.path.join(PROJECT_FIXTURES, "violating", "core", name)
            source = _read(path)
            context = FileContext(path=path, source=source,
                                  tree=ast.parse(source))
            assert list(rule.check(context)) == [], (
                "intra-function pass unexpectedly caught %s" % name)

    def test_project_pass_catches_the_leak(self):
        rule = rule_by_id("DMW004")
        report = run_paths([os.path.join(PROJECT_FIXTURES, "violating")],
                           [rule])
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.rule_id == "DMW004"
        assert "interprocedural" in violation.message
        assert "`bid`" in violation.message
        assert "relay_amount" in violation.message
        assert "emit_record" in violation.message
        assert violation.path.endswith("handler.py")

    def test_declassified_chain_is_clean(self):
        rule = rule_by_id("DMW004")
        report = run_paths([os.path.join(PROJECT_FIXTURES, "clean")], [rule])
        assert report.ok, "\n" + report.render_human()


class TestProtocolFlowOnRealSource:
    def test_real_machine_lints_clean(self):
        report = lint_source("src/repro/core/machine.py",
                             _read(MACHINE_PATH), [rule_by_id("DMW009")])
        assert report.ok, "\n" + report.render_human()

    def test_reordered_phase_mutant_is_caught(self):
        """Swapping an aggregates kind for a second-price kind in the real
        machine source must trip DMW009."""
        source = _read(MACHINE_PATH)
        assert '"lambda_psi"' in source
        mutant = source.replace('"lambda_psi"', '"second_price"')
        report = lint_source("src/repro/core/machine.py", mutant,
                             [rule_by_id("DMW009")])
        assert report.violations, "mutant went undetected"
        assert any("second_price" in v.message and "aggregates" in v.message
                   for v in report.violations)

    def test_default_rule_set_has_eleven_rules(self):
        assert len(DEFAULT_RULES) == 11
        assert [rule.rule_id for rule in DEFAULT_RULES] == [
            "DMW%03d" % n for n in range(1, 12)]


class TestSarif:
    def _violating_report(self):
        return lint_source("src/repro/core/fixture.py",
                           "import random\nrandom.random()\n",
                           [rule_by_id("DMW001")])

    def test_required_property_shape(self):
        report = self._violating_report()
        rules = [rule_by_id("DMW001")]
        log = to_sarif(report, rules)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "dmwlint"
        assert driver["rules"][0]["id"] == "DMW001"
        assert driver["rules"][0]["shortDescription"]["text"]
        assert len(run["results"]) == 1
        result = run["results"][0]
        assert result["ruleId"] == "DMW001"
        assert result["ruleIndex"] == 0
        assert result["level"] == "error"
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("fixture.py")
        assert location["region"]["startLine"] == 2
        assert location["region"]["startColumn"] >= 1
        assert result["partialFingerprints"]
        assert run["invocations"][0]["executionSuccessful"] is True

    def test_round_trips_through_json(self):
        report = self._violating_report()
        rules = [rule_by_id("DMW001")]
        rendered = json.dumps(to_sarif(report, rules))
        assert json.loads(rendered)["version"] == "2.1.0"

    def test_fingerprints_match_the_baseline_scheme(self):
        report = self._violating_report()
        log = to_sarif(report, [rule_by_id("DMW001")])
        sarif_fp = log["runs"][0]["results"][0]["partialFingerprints"]
        (_, digest), = fingerprint_violations(report.sorted_violations())
        assert sarif_fp == {"dmwlintFingerprint/v1": digest}

    def test_parse_errors_become_notifications(self):
        report = lint_source("src/broken.py", "def broken(:\n",
                             [rule_by_id("DMW001")])
        log = to_sarif(report, [rule_by_id("DMW001")])
        invocation = log["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        assert invocation["toolExecutionNotifications"]


class TestBaseline:
    def _report(self):
        return lint_source("src/repro/core/fixture.py",
                           "import random\nrandom.random()\n",
                           [rule_by_id("DMW001")])

    def test_round_trip_swallows_known_findings(self, tmp_path):
        report = self._report()
        baseline_path = str(tmp_path / "baseline.json")
        assert write_baseline(report, baseline_path) == 1
        assert len(load_baseline(baseline_path)) == 1
        fresh = self._report()
        apply_baseline(fresh, baseline_path)
        assert fresh.ok
        assert fresh.baselined_count == 1
        assert "1 baselined" in fresh.render_human()

    def test_new_finding_still_fails(self, tmp_path):
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(self._report(), baseline_path)
        grown = lint_source(
            "src/repro/core/fixture.py",
            "import random\nrandom.random()\nrandom.randint(0, 9)\n",
            [rule_by_id("DMW001")])
        apply_baseline(grown, baseline_path)
        assert not grown.ok
        assert len(grown.violations) == 1
        assert grown.baselined_count == 1

    def test_fingerprints_ignore_line_shifts(self):
        a = Violation(rule_id="DMW001", path="src/x.py", line=3, col=0,
                      message="same finding")
        b = Violation(rule_id="DMW001", path="src/x.py", line=30, col=4,
                      message="same finding")
        (_, fp_a), = fingerprint_violations([a])
        (_, fp_b), = fingerprint_violations([b])
        assert fp_a == fp_b

    def test_duplicate_findings_get_distinct_fingerprints(self):
        a = Violation(rule_id="DMW001", path="src/x.py", line=3, col=0,
                      message="same finding")
        b = Violation(rule_id="DMW001", path="src/x.py", line=9, col=0,
                      message="same finding")
        pairs = fingerprint_violations([a, b])
        assert pairs[0][1] != pairs[1][1]

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "absent.json"))

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"version\": 99}")
        with pytest.raises(BaselineError):
            load_baseline(str(bad))


class TestParallelJobs:
    def test_jobs_report_matches_serial(self):
        serial = run_paths([FIXTURE_DIR], DEFAULT_RULES, jobs=1)
        parallel = run_paths([FIXTURE_DIR], DEFAULT_RULES, jobs=2)

        def keyed(report):
            return [(v.path, v.line, v.col, v.rule_id, v.message)
                    for v in report.sorted_violations()]

        assert keyed(serial) == keyed(parallel)
        assert serial.files_checked == parallel.files_checked
        assert serial.suppressed_count == parallel.suppressed_count
        assert serial.violations, "fixture tree should produce findings"


class TestDiscovery:
    def test_unknown_path_raises_usage_error(self):
        with pytest.raises(UsageError):
            discover_files(["definitely/not/a/path.py"])

    def test_cli_unknown_path_exits_two(self, capsys):
        assert lint_main(["definitely/not/a/path.py"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestCliSurface:
    def test_ignore_unknown_rule_exits_two(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("VALUE = 1\n")
        assert lint_main(["--ignore", "DMW999", str(tmp_path)]) == 2
        assert "DMW999" in capsys.readouterr().err

    def test_ignore_drops_rule(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrandom.random()\n")
        assert lint_main(["--ignore", "DMW001", str(bad)]) == 0
        capsys.readouterr()

    def test_jobs_zero_exits_two(self, capsys):
        assert lint_main(["--jobs", "0", "."]) == 2
        capsys.readouterr()

    def test_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrandom.random()\n")
        assert lint_main(["--format", "sarif", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"][0]["ruleId"] == "DMW001"

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrandom.random()\n")
        baseline = str(tmp_path / "baseline.json")
        assert lint_main(["--write-baseline", baseline, str(bad)]) == 0
        capsys.readouterr()
        assert lint_main(["--baseline", baseline, str(bad)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # A new finding is not absorbed by the baseline.
        bad.write_text("import random\nrandom.random()\n"
                       "random.randint(0, 9)\n")
        assert lint_main(["--baseline", baseline, str(bad)]) == 1
        capsys.readouterr()

    def test_default_scope_covers_example_trees(self, tmp_path, monkeypatch,
                                                capsys):
        core = tmp_path / "src" / "repro" / "core"
        core.mkdir(parents=True)
        (core / "bad.py").write_text("import random\nrandom.random()\n")
        bench = tmp_path / "benchmarks"
        bench.mkdir()
        (bench / "bench.py").write_text("import random\nrandom.random()\n")
        monkeypatch.chdir(tmp_path)
        assert lint_main([]) == 1
        out = capsys.readouterr().out
        assert "src" in out and "benchmarks" in out
        assert out.count("DMW001") == 2

    def test_repo_baseline_is_empty_and_loadable(self):
        path = os.path.join(REPO_ROOT, "dmwlint-baseline.json")
        assert load_baseline(path) == {}
