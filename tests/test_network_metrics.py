"""Theorem 11 closed-form message accounting and NetworkMetrics units.

The proof of Theorem 11 counts every published value as ``P - 1``
point-to-point copies (no broadcast facility), where ``P = n + 1``
participants (the ``n`` agents plus the payment infrastructure
endpoint).  An honest execution's exact totals follow in closed form
from Fig. 2:

per task ``t``::

    commitments    n broadcasts  x  3*sigma field elements
    share_bundle   n*(n-1) unicasts  x  4
    lambda_psi     n broadcasts  x  2
    f_disclosure   d_t broadcasts  x  2n      d_t = disclosure_width(y*_t)
    winner_claim   k_t broadcasts  x  1       k_t = #{i : b_i(t) = y*_t}
    second_price   n broadcasts  x  2

plus ``n`` unicast payment claims of ``n`` field elements each.  These
tests pin the simulator's measured totals to that closed form across an
``(n, m, c)`` grid, and unit-test ``merge``/``as_dict``.
"""

import random

import pytest

from repro.core import DMWParameters
from repro.core.protocol import run_dmw
from repro.network.message import BROADCAST, Message
from repro.network.metrics import NetworkMetrics
from repro.scheduling import workloads


def _message(kind="x", sender=0, recipient=1, field_elements=1):
    return Message(sender=sender, recipient=recipient, kind=kind,
                   payload=None, field_elements=field_elements)


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------

class TestNetworkMetricsUnit:
    def test_unicast_counts_once(self):
        metrics = NetworkMetrics()
        metrics.record(_message(field_elements=3), num_agents=6)
        assert metrics.point_to_point_messages == 1
        assert metrics.broadcast_events == 0
        assert metrics.field_elements == 3
        assert metrics.by_kind["x"] == 1

    def test_broadcast_expands_to_n_minus_one_copies(self):
        metrics = NetworkMetrics()
        metrics.record(_message(recipient=BROADCAST, field_elements=2),
                       num_agents=6)
        assert metrics.point_to_point_messages == 5
        assert metrics.broadcast_events == 1
        assert metrics.field_elements == 10
        assert metrics.by_kind["x"] == 5

    def test_merge_adds_all_totals_and_kinds(self):
        left = NetworkMetrics()
        left.record(_message(kind="a"), num_agents=4)
        left.record(_message(kind="b", recipient=BROADCAST,
                             field_elements=2), num_agents=4)
        left.record_round()
        right = NetworkMetrics()
        right.record(_message(kind="a", field_elements=5), num_agents=4)
        right.record_round()
        right.record_round()
        left.merge(right)
        assert left.point_to_point_messages == 1 + 3 + 1
        assert left.broadcast_events == 1
        assert left.field_elements == 1 + 6 + 5
        assert left.rounds == 3
        assert left.by_kind == {"a": 2, "b": 3}

    def test_as_dict_is_stable_and_complete(self):
        metrics = NetworkMetrics()
        metrics.record(_message(kind="beta"), num_agents=3)
        metrics.record(_message(kind="alpha", recipient=BROADCAST),
                       num_agents=3)
        metrics.record_round()
        summary = metrics.as_dict()
        assert summary == {
            "point_to_point_messages": 3,
            "broadcast_events": 1,
            "field_elements": 3,
            "rounds": 1,
            "messages[alpha]": 2,
            "messages[beta]": 1,
        }
        # Per-kind keys come after the scalar totals, sorted by kind.
        assert list(summary)[4:] == ["messages[alpha]", "messages[beta]"]


# ---------------------------------------------------------------------------
# Theorem 11 closed form on real executions
# ---------------------------------------------------------------------------

def _expected_totals(parameters, problem, outcome):
    """The closed-form honest-run totals (module docstring)."""
    n = parameters.num_agents
    sigma = parameters.sigma
    copies = n  # P - 1 with P = n + 1 participants
    messages = 0
    elements = 0
    broadcasts = 0
    by_kind = {
        "commitments": 0, "share_bundle": 0, "lambda_psi": 0,
        "f_disclosure": 0, "winner_claim": 0, "second_price": 0,
        "payment_claim": 0,
    }
    for transcript in outcome.transcripts:
        task = transcript.task
        first_price = transcript.first_price
        d_t = parameters.disclosure_width(first_price)
        k_t = sum(1 for agent in range(n)
                  if int(problem.time(agent, task)) == first_price)
        assert first_price == min(int(problem.time(agent, task))
                                  for agent in range(n))
        by_kind["commitments"] += n * copies
        by_kind["share_bundle"] += n * (n - 1)
        by_kind["lambda_psi"] += n * copies
        by_kind["f_disclosure"] += d_t * copies
        by_kind["winner_claim"] += k_t * copies
        by_kind["second_price"] += n * copies
        broadcasts += 3 * n + d_t + k_t
        elements += (n * copies * 3 * sigma      # commitments
                     + n * (n - 1) * 4           # share bundles
                     + n * copies * 2            # lambda_psi
                     + d_t * copies * 2 * n      # f_disclosure rows
                     + k_t * copies * 1          # winner claims
                     + n * copies * 2)           # second_price
    by_kind["payment_claim"] = n
    elements += n * n                            # payment claim vectors
    messages = sum(by_kind.values())
    return messages, elements, broadcasts, by_kind


@pytest.mark.parametrize("n,m,c", [
    (4, 1, 1),
    (4, 3, 1),
    (5, 2, 1),
    (6, 2, 1),
    (6, 1, 2),
    (6, 3, 2),
])
def test_honest_run_matches_closed_form(n, m, c):
    parameters = DMWParameters.generate(n, fault_bound=c,
                                        group_size="small")
    problem = workloads.random_discrete(n, m, parameters.bid_values,
                                        random.Random(7 * n + m + c))
    outcome = run_dmw(problem, parameters=parameters,
                      rng=random.Random(42))
    assert outcome.completed
    expected_messages, expected_elements, expected_broadcasts, by_kind = \
        _expected_totals(parameters, problem, outcome)
    metrics = outcome.network_metrics
    assert metrics.point_to_point_messages == expected_messages
    assert metrics.field_elements == expected_elements
    assert metrics.broadcast_events == expected_broadcasts
    assert dict(metrics.by_kind) == by_kind
    # Sequential schedule: four barrier rounds per auction plus payments.
    assert metrics.rounds == 4 * m + 1


class TestExtraParticipantFanOut:
    """The broadcast fan-out contract with ``extra_participants=1``.

    DMW opts its payment endpoint into every broadcast explicitly, so
    each published message expands to exactly ``P - 1 = n`` copies —
    never ``num_participants`` by accident, never ``n - 1`` silently.
    """

    def test_default_fan_out_excludes_the_extra(self):
        from repro.network.simulator import SynchronousNetwork
        network = SynchronousNetwork(4, extra_participants=1)
        network.publish(0, "lambda_psi", None, field_elements=2)
        network.deliver()
        assert network.metrics.point_to_point_messages == 3
        assert network.metrics.field_elements == 6
        assert network.receive(4) == []

    def test_opted_in_fan_out_charges_n_copies(self):
        from repro.network.simulator import SynchronousNetwork
        network = SynchronousNetwork(4, extra_participants=1,
                                     broadcast_to_extras=True)
        network.publish(0, "lambda_psi", None, field_elements=2)
        network.deliver()
        assert network.metrics.point_to_point_messages == 4
        assert network.metrics.field_elements == 8
        assert len(network.receive(4)) == 1

    def test_protocol_network_pins_theorem11_copies(self):
        """A real run's broadcasts expand to n copies (P - 1, P = n + 1).

        This is the closed-form grid's ``copies = n`` assumption made
        explicit: the protocol's own network carries one extra
        participant and includes it in every broadcast.
        """
        n, m = 5, 2
        parameters = DMWParameters.generate(n, fault_bound=1,
                                            group_size="small")
        problem = workloads.random_discrete(n, m, parameters.bid_values,
                                            random.Random(5))
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(9))
        assert outcome.completed
        metrics = outcome.network_metrics
        # lambda_psi: one broadcast per agent per task, n copies each.
        assert metrics.by_kind["lambda_psi"] == m * n * n
        assert metrics.by_kind["commitments"] == m * n * n
        assert metrics.by_kind["second_price"] == m * n * n


def test_parallel_run_same_totals_fewer_rounds():
    """Phase-parallel execution keeps the Theorem 11 message budget."""
    n, m = 5, 3
    parameters = DMWParameters.generate(n, fault_bound=1,
                                        group_size="small")
    problem = workloads.random_discrete(n, m, parameters.bid_values,
                                        random.Random(11))
    sequential = run_dmw(problem, parameters=parameters,
                         rng=random.Random(3))
    parallel = run_dmw(problem, parameters=parameters,
                       rng=random.Random(3), parallel=True)
    assert sequential.completed and parallel.completed
    seq = sequential.network_metrics
    par = parallel.network_metrics
    assert par.point_to_point_messages == seq.point_to_point_messages
    assert par.field_elements == seq.field_elements
    assert dict(par.by_kind) == dict(seq.by_kind)
    assert par.rounds == 5 < seq.rounds == 4 * m + 1
