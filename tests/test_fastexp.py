"""The execution fast paths (repro.crypto.fastexp).

Two layers of guarantees:

* **primitive correctness** — fixed-base tables, Straus multi-
  exponentiation and Montgomery batch inversion agree with the naive
  implementations on random and edge-case inputs, including the error
  diagnostics of :func:`~repro.crypto.modular.mod_inv`;
* **whole-protocol equivalence** — running DMW with the fast paths on
  and off (``fastexp.naive_mode``) produces byte-identical outcomes:
  schedules, payments, transcripts, the full bulletin board, and every
  agent's :class:`~repro.crypto.modular.OperationCounter` snapshot.  The
  fast paths change wall-clock only; the paper's counted cost model
  (Theorem 12, Table 1) is charged on the same analytic schedule either
  way.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.audit import audit_protocol_run
from repro.core.deviant import standard_deviations
from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol
from repro.core.agent import DMWAgent
from repro.crypto import fastexp
from repro.crypto.fastexp import (
    FixedBaseTable,
    PublicValueCache,
    batch_mod_inv,
    fixed_base_table,
    multi_exp,
    multi_exp_with_tables,
    naive_mode,
    straus_tables,
)
from repro.crypto.groups import fixture_group
from repro.crypto.modular import NULL_COUNTER, OperationCounter, mod_inv
from repro.scheduling.problem import SchedulingProblem


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------

class TestFixedBaseTable:
    def test_matches_builtin_pow(self, group_small, rng):
        group = group_small.group
        table = FixedBaseTable(group_small.z1, group.p, group.q.bit_length())
        for exponent in [0, 1, 2, group.q - 1,
                         *(rng.randrange(group.q) for _ in range(50))]:
            assert table.pow(exponent) == pow(group_small.z1, exponent,
                                              group.p)

    def test_out_of_range_exponent_falls_back(self, group_small):
        group = group_small.group
        table = FixedBaseTable(group_small.z1, group.p, 8, window=4)
        big = group.q + 12345
        assert table.pow(big) == pow(group_small.z1, big, group.p)

    def test_negative_exponent_rejected(self, group_small):
        table = FixedBaseTable(group_small.z1, group_small.group.p, 16)
        with pytest.raises(ValueError):
            table.pow(-1)

    def test_factory_is_cached(self, group_small):
        group = group_small.group
        first = fixed_base_table(group_small.z1, group.p,
                                 group.q.bit_length())
        second = fixed_base_table(group_small.z1, group.p,
                                  group.q.bit_length())
        assert first is second

    def test_window_one(self):
        table = FixedBaseTable(3, 101, 6, window=1)
        for exponent in range(64):
            assert table.pow(exponent) == pow(3, exponent, 101)


class TestFixedBaseTableCache:
    """Daemon-grade table cache: observable, bounded, evictable.

    Regression guard for the former opaque ``@lru_cache`` on the factory
    — a long-lived service needs hit/size/byte stats for the metrics
    registry and a per-modulus eviction hook for the warm-cache store.
    """

    def test_stats_observe_hits_misses_and_bytes(self, group_small):
        group = group_small.group
        cache = fastexp.FixedBaseTableCache(maxsize=8)
        before = dict(hits=cache.hits, misses=cache.misses)
        first = cache.get(group_small.z1, group.p, group.q.bit_length())
        again = cache.get(group_small.z1, group.p, group.q.bit_length())
        assert again is first
        assert cache.misses == before["misses"] + 1
        assert cache.hits == before["hits"] + 1
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["approx_bytes"] > 0

    def test_lru_bound_evicts_oldest(self):
        cache = fastexp.FixedBaseTableCache(maxsize=2)
        cache.get(3, 101, 6)
        cache.get(5, 101, 6)
        cache.get(3, 101, 6)  # refresh 3 so 5 is the LRU entry
        cache.get(7, 101, 6)  # evicts 5
        assert cache.stats()["entries"] == 2
        assert cache.evictions == 1
        hits = cache.hits
        cache.get(5, 101, 6)  # rebuilt, not a hit
        assert cache.hits == hits

    def test_per_modulus_eviction_hook(self, group_small):
        group = group_small.group
        fastexp.clear_fixed_base_tables()
        fixed_base_table(group_small.z1, group.p, group.q.bit_length())
        fixed_base_table(3, 101, 6)
        assert fastexp.fixed_base_table_stats()["entries"] == 2
        assert fastexp.clear_fixed_base_tables(group.p) == 1
        assert fastexp.fixed_base_table_stats()["entries"] == 1
        # The surviving small-modulus table is untouched.
        assert fastexp.clear_fixed_base_tables(101) == 1

    def test_process_wide_stats_surface(self, group_small):
        group = group_small.group
        stats = fastexp.fixed_base_table_stats()
        assert set(stats) >= {"hits", "misses", "evictions", "entries",
                              "approx_bytes"}
        fixed_base_table(group_small.z1, group.p, group.q.bit_length())
        fixed_base_table(group_small.z1, group.p, group.q.bit_length())
        after = fastexp.fixed_base_table_stats()
        assert after["hits"] > stats["hits"] or \
            after["misses"] > stats["misses"]


class TestMultiExp:
    def _naive(self, bases, exponents, modulus):
        result = 1
        for base, exponent in zip(bases, exponents):
            result = (result * pow(base, exponent, modulus)) % modulus
        return result

    def test_matches_naive_product(self, group_small, rng):
        group = group_small.group
        for count in (1, 2, 5, 13):
            bases = [rng.randrange(2, group.p) for _ in range(count)]
            exps = [rng.randrange(group.q) for _ in range(count)]
            assert multi_exp(bases, exps, group.p) == self._naive(
                bases, exps, group.p)

    def test_zero_exponents_skipped(self, group_small, rng):
        group = group_small.group
        bases = [rng.randrange(2, group.p) for _ in range(4)]
        exps = [0, rng.randrange(1, group.q), 0, rng.randrange(1, group.q)]
        assert multi_exp(bases, exps, group.p) == self._naive(bases, exps,
                                                              group.p)
        assert multi_exp(bases, [0, 0, 0, 0], group.p) == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_exp([2, 3], [1], 101)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            multi_exp([2], [-1], 101)

    def test_precomputed_tables_agree(self, group_small, rng):
        group = group_small.group
        bases = [rng.randrange(2, group.p) for _ in range(9)]
        tables = straus_tables(bases, group.p, window=5)
        for _ in range(10):
            exps = [rng.randrange(group.q) for _ in range(9)]
            assert multi_exp_with_tables(tables, exps, group.p,
                                         window=5) == self._naive(
                                             bases, exps, group.p)

    def test_tables_prefix_compatible(self, group_small, rng):
        """A prefix slice of a table set serves the prefix of the bases."""
        group = group_small.group
        bases = [rng.randrange(2, group.p) for _ in range(6)]
        tables = straus_tables(bases, group.p, window=5)
        exps = [rng.randrange(group.q) for _ in range(4)]
        assert multi_exp_with_tables(list(tables[:4]), exps, group.p,
                                     window=5) == self._naive(
                                         bases[:4], exps, group.p)


class TestBatchModInv:
    def test_matches_mod_inv(self, group_small, rng):
        q = group_small.group.q
        values = [rng.randrange(1, q) for _ in range(17)]
        assert batch_mod_inv(values, q) == [mod_inv(v, q) for v in values]

    def test_counts_one_inv_per_value(self, group_small, rng):
        q = group_small.group.q
        values = [rng.randrange(1, q) for _ in range(8)]
        fast_counter = OperationCounter()
        batch_mod_inv(values, q, fast_counter)
        naive_counter = OperationCounter()
        for value in values:
            mod_inv(value, q, naive_counter)
        assert fast_counter.snapshot() == naive_counter.snapshot()

    def test_zero_raises_same_message(self):
        with pytest.raises(ZeroDivisionError) as fast_error:
            batch_mod_inv([3, 0, 5], 101)
        with pytest.raises(ZeroDivisionError) as naive_error:
            mod_inv(0, 101)
        assert str(fast_error.value) == str(naive_error.value)

    def test_non_invertible_raises_same_message(self):
        # 6 shares a factor with 15; the batch must identify it exactly
        # as mod_inv would.
        with pytest.raises(ZeroDivisionError) as fast_error:
            batch_mod_inv([2, 6], 15)
        with pytest.raises(ZeroDivisionError) as naive_error:
            mod_inv(6, 15)
        assert str(fast_error.value) == str(naive_error.value)

    def test_empty_and_single(self):
        assert batch_mod_inv([], 101) == []
        assert batch_mod_inv([7], 101) == [mod_inv(7, 101)]

    def test_naive_mode_fallback(self, group_small, rng):
        q = group_small.group.q
        values = [rng.randrange(1, q) for _ in range(5)]
        with naive_mode():
            assert not fastexp.enabled()
            assert batch_mod_inv(values, q) == [mod_inv(v, q)
                                                for v in values]
        assert fastexp.enabled()


class TestCounterBatching:
    def test_count_exp_batch_equals_repeated_count_exp(self, rng):
        exponents = [rng.randrange(1 << 40) for _ in range(20)] + [0, 1, 2]
        reference = OperationCounter()
        for exponent in exponents:
            reference.count_exp(exponent)
        batched = OperationCounter()
        work = sum(e.bit_length() + e.bit_count() - 2
                   for e in exponents if e > 1)
        batched.count_exp_batch(len(exponents), work)
        assert (batched.exponentiations, batched.multiplication_work) == (
            reference.exponentiations, reference.multiplication_work)

    def test_null_counter_ignores_batch_and_merge(self):
        before = NULL_COUNTER.snapshot()
        NULL_COUNTER.count_exp_batch(10, 1000)
        full = OperationCounter()
        full.count_mul(99)
        NULL_COUNTER.merge(full)
        assert NULL_COUNTER.snapshot() == before


class TestPublicValueCache:
    def test_commitment_evaluation_hit_replays_counts(self, params5, rng):
        committer = params5.group_parameters
        group = committer.group
        # Build a commitment through the protocol layer.
        from repro.core.bidding import encode_bid
        encoded = encode_bid(params5, bid=2, rng=rng)
        commitment = encoded.commitments.q_vector
        point = params5.pseudonyms[0]
        cache = PublicValueCache()
        miss_counter = OperationCounter()
        first = commitment.evaluate(point, miss_counter, cache)
        hit_counter = OperationCounter()
        second = commitment.evaluate(point, hit_counter, cache)
        assert first == second
        assert hit_counter.snapshot() == miss_counter.snapshot()
        assert cache.stats()["hits"] == 1

    def test_cache_keys_are_content_addressed(self, params5, rng):
        from repro.core.bidding import encode_bid
        cache = PublicValueCache()
        a = encode_bid(params5, bid=1, rng=random.Random(1))
        b = encode_bid(params5, bid=1, rng=random.Random(2))
        point = params5.pseudonyms[1]
        value_a = a.commitments.q_vector.evaluate(point, NULL_COUNTER, cache)
        value_b = b.commitments.q_vector.evaluate(point, NULL_COUNTER, cache)
        # Distinct blinding -> distinct commitments -> distinct entries.
        assert value_a != value_b
        assert cache.stats()["evaluations"] == 2


# ---------------------------------------------------------------------------
# Whole-protocol equivalence: fast vs naive must be byte-identical
# ---------------------------------------------------------------------------

def _build_protocol(num_agents, group_size, times, deviant_mix, seed):
    parameters = DMWParameters.generate(
        num_agents, fault_bound=1,
        group_parameters=fixture_group(group_size))
    deviations = standard_deviations()
    master = random.Random(seed)
    agents = []
    for index in range(num_agents):
        agent_rng = random.Random(master.getrandbits(64))
        name = deviant_mix.get(index)
        if name is None:
            agents.append(DMWAgent(index, parameters, times[index],
                                   rng=agent_rng))
        else:
            agents.append(deviations[name](index, parameters, times[index],
                                           agent_rng))
    return DMWProtocol(parameters, agents)


def _run_both_ways(num_agents, group_size, times, deviant_mix, seed,
                   num_tasks):
    fast_protocol = _build_protocol(num_agents, group_size, times,
                                    deviant_mix, seed)
    fast_outcome = fast_protocol.execute(num_tasks)
    with naive_mode():
        naive_protocol = _build_protocol(num_agents, group_size, times,
                                         deviant_mix, seed)
        naive_outcome = naive_protocol.execute(num_tasks)
    return fast_protocol, fast_outcome, naive_protocol, naive_outcome


def _assert_identical(fast_protocol, fast_outcome, naive_protocol,
                      naive_outcome):
    assert fast_outcome.completed == naive_outcome.completed
    if fast_outcome.completed:
        assert (fast_outcome.schedule.assignment
                == naive_outcome.schedule.assignment)
    else:
        assert fast_outcome.abort.phase == naive_outcome.abort.phase
    assert fast_outcome.payments == naive_outcome.payments
    assert fast_outcome.transcripts == naive_outcome.transcripts
    # The full bulletin board: same messages, same order, same payloads.
    assert (fast_protocol.network.published()
            == naive_protocol.network.published())
    # The analytic cost model: bit-identical per-agent counters.
    assert fast_outcome.agent_operations == naive_outcome.agent_operations


TIMES_6 = [[2, 1], [1, 3], [3, 2], [2, 2], [3, 3], [1, 1]]


@pytest.mark.parametrize("deviant_mix", [
    {},
    {0: "misreport_bid"},
    {2: "wrong_aggregates"},
    {1: "withhold_aggregates", 4: "misreport_bid"},
])
def test_fast_and_naive_identical(deviant_mix):
    _assert_identical(*_run_both_ways(6, "small", TIMES_6, deviant_mix,
                                      seed=7, num_tasks=2))


def test_fast_and_naive_identical_full_verification():
    parameters = DMWParameters.generate(
        5, fault_bound=1, group_parameters=fixture_group("small"),
        verification_mode="full")
    times = [[2, 1], [1, 3], [3, 2], [2, 2], [3, 3]]

    def run():
        master = random.Random(3)
        agents = [DMWAgent(i, parameters, times[i],
                           rng=random.Random(master.getrandbits(64)))
                  for i in range(5)]
        protocol = DMWProtocol(parameters, agents)
        return protocol, protocol.execute(2)

    fast_protocol, fast_outcome = run()
    with naive_mode():
        naive_protocol, naive_outcome = run()
    _assert_identical(fast_protocol, fast_outcome, naive_protocol,
                      naive_outcome)


def test_audit_identical_fast_and_naive():
    fast_protocol, fast_outcome, naive_protocol, naive_outcome = (
        _run_both_ways(6, "small", TIMES_6, {}, seed=11, num_tasks=2))
    fast_report = audit_protocol_run(fast_protocol, fast_outcome)
    with naive_mode():
        naive_report = audit_protocol_run(naive_protocol, naive_outcome)
    assert fast_report.ok and naive_report.ok
    assert (fast_report.reconstructed_assignment
            == naive_report.reconstructed_assignment)
    assert fast_report.operations == naive_report.operations


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_fast_naive_equivalence(data):
    """Across seeds, sizes, groups and deviant mixes: identical runs."""
    num_agents = data.draw(st.integers(min_value=4, max_value=7),
                           label="n")
    group_size = data.draw(st.sampled_from(["tiny", "small"]),
                           label="group")
    seed = data.draw(st.integers(min_value=0, max_value=2**16),
                     label="seed")
    num_tasks = data.draw(st.integers(min_value=1, max_value=2),
                          label="m")
    parameters = DMWParameters.generate(
        num_agents, fault_bound=1,
        group_parameters=fixture_group(group_size))
    bid_values = list(parameters.bid_values)
    value_rng = random.Random(seed)
    times = [[value_rng.choice(bid_values) for _ in range(num_tasks)]
             for _ in range(num_agents)]
    names = sorted(standard_deviations())
    num_deviants = data.draw(st.integers(min_value=0, max_value=1),
                             label="deviants")
    deviant_mix = {}
    if num_deviants:
        index = data.draw(st.integers(min_value=0,
                                      max_value=num_agents - 1),
                          label="deviant_index")
        deviant_mix[index] = data.draw(st.sampled_from(names),
                                       label="deviation")
    _assert_identical(*_run_both_ways(num_agents, group_size, times,
                                      deviant_mix, seed, num_tasks))
