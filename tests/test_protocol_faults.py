"""Substrate-fault tests: DMW under crash-stop agents and lossy links.

The paper's threat model tolerates up to ``c`` *faulty* participants: the
mechanism's properties degrade to "cannot be resolved" (Open Problem 11
discussion), never to a wrong outcome.  These tests inject network-level
faults (crashes, dropped links, in-flight corruption) and check exactly
that dichotomy: either the run completes with the correct MinWork outcome
or it aborts with utility zero — never a wrong allocation or payment.
"""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.network.faults import FaultPlan
from repro.network.message import Message
from repro.scheduling.problem import SchedulingProblem


def run_with_faults(params, problem, fault_plan, seed=0):
    master = random.Random(seed)
    agents = [
        DMWAgent(index, params,
                 [int(problem.time(index, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(problem.num_agents)
    ]
    protocol = DMWProtocol(params, agents, fault_plan=fault_plan)
    return protocol.execute(problem.num_tasks)


@pytest.fixture()
def problem(params5):
    return SchedulingProblem([
        [2, 1],
        [1, 3],
        [3, 2],
        [2, 2],
        [3, 3],
    ])


class TestCrashStop:
    def test_crash_before_start_aborts_in_bidding(self, params5, problem):
        plan = FaultPlan(crashed_from_round={3: 0})
        outcome = run_with_faults(params5, problem, plan)
        assert not outcome.completed
        assert outcome.abort.phase == "bidding"
        assert all(outcome.utility(i, problem) == 0 for i in range(5))

    def test_crash_mid_protocol_aborts(self, params5, problem):
        # Crash after the first auction's bidding round: the agent's
        # lambda/psi never arrives and (with min bid 1 needing all points)
        # resolution fails.
        plan = FaultPlan(crashed_from_round={2: 1})
        outcome = run_with_faults(params5, problem, plan)
        assert not outcome.completed

    def test_crash_in_payments_phase_blocks_dispensing(self, params5,
                                                       problem):
        # Rounds: 4 per auction x 2 tasks = 8; the payment round is 8.
        plan = FaultPlan(crashed_from_round={4: 8})
        outcome = run_with_faults(params5, problem, plan)
        assert not outcome.completed
        assert outcome.abort.phase == "payments"

    def test_no_wrong_outcome_under_any_single_crash(self, params5,
                                                     problem):
        """The safety dichotomy: complete-and-correct or abort."""
        expected = MinWork().run(truthful_bids(problem))
        for agent in range(5):
            for crash_round in range(0, 10, 3):
                plan = FaultPlan(crashed_from_round={agent: crash_round})
                outcome = run_with_faults(params5, problem, plan)
                if outcome.completed:
                    assert outcome.schedule == expected.schedule
                    assert list(outcome.payments) == \
                        list(expected.payments)
                else:
                    assert all(outcome.utility(i, problem) == 0
                               for i in range(5))


class TestDroppedLinks:
    def test_dropped_private_link_aborts(self, params5, problem):
        plan = FaultPlan(dropped_links={(0, 3)})
        outcome = run_with_faults(params5, problem, plan)
        assert not outcome.completed
        assert outcome.abort.phase == "bidding"
        assert outcome.abort.detected_by == 3
        assert outcome.abort.offender == 0

    def test_lossy_network_never_yields_wrong_outcome(self, params5,
                                                      problem):
        expected = MinWork().run(truthful_bids(problem))
        for seed in range(5):
            plan = FaultPlan(drop_probability=0.02,
                             rng=random.Random(seed))
            outcome = run_with_faults(params5, problem, plan, seed=seed)
            if outcome.completed:
                assert outcome.schedule == expected.schedule
            else:
                assert all(outcome.utility(i, problem) == 0
                           for i in range(5))


class TestCorruptedLinks:
    def test_corrupted_share_in_flight_detected(self, params5, problem):
        from repro.core.bidding import ShareBundle

        def corrupt(message):
            if message.kind != "share_bundle":
                return message
            task, bundle = message.payload
            q = params5.group.q
            bad = ShareBundle((bundle.e_value + 1) % q, bundle.f_value,
                              bundle.g_value, bundle.h_value)
            return Message(sender=message.sender,
                           recipient=message.recipient,
                           kind=message.kind, payload=(task, bad),
                           field_elements=message.field_elements)

        plan = FaultPlan(corruptors={(1, 4): corrupt})
        outcome = run_with_faults(params5, problem, plan)
        assert not outcome.completed
        # The receiver blames the sender: the network is assumed obedient
        # in the paper's model, so an in-flight corruption is
        # indistinguishable from a corrupt sender.
        assert outcome.abort.detected_by == 4
        assert outcome.abort.offender == 1
