"""Unit tests for repro.core.outcome (DMWOutcome/AuctionTranscript)."""

import pytest

from repro.core.exceptions import ProtocolAbort
from repro.core.outcome import AuctionTranscript, DMWOutcome
from repro.network.metrics import NetworkMetrics
from repro.scheduling.problem import SchedulingProblem
from repro.scheduling.schedule import Schedule


@pytest.fixture()
def problem():
    return SchedulingProblem([[1, 2], [2, 1], [3, 3]])


def completed_outcome():
    return DMWOutcome(
        completed=True,
        schedule=Schedule([0, 1], num_agents=3),
        payments=(2.0, 2.0, 0.0),
        transcripts=[
            AuctionTranscript(task=0, first_price=1, winner=0,
                              second_price=2,
                              valid_aggregate_publishers=(0, 1, 2),
                              valid_disclosers=(0, 1)),
            AuctionTranscript(task=1, first_price=1, winner=1,
                              second_price=2,
                              valid_aggregate_publishers=(0, 1, 2),
                              valid_disclosers=(0, 1)),
        ],
        abort=None,
        network_metrics=NetworkMetrics(),
        agent_operations=[{"multiplication_work": w} for w in (5, 9, 7)],
    )


def aborted_outcome():
    return DMWOutcome(
        completed=False, schedule=None, payments=None, transcripts=[],
        abort=ProtocolAbort("boom", phase="bidding", task=0,
                            detected_by=1, offender=2),
        network_metrics=NetworkMetrics(),
        agent_operations=[{"multiplication_work": 1}] * 3,
    )


class TestUtilities:
    def test_completed_utilities(self, problem):
        outcome = completed_outcome()
        # Agent 0: payment 2, cost t_0^0 = 1 -> +1.
        assert outcome.utility(0, problem) == 1.0
        # Agent 1: payment 2, cost t_1^1 = 1 -> +1.
        assert outcome.utility(1, problem) == 1.0
        # Agent 2: idle.
        assert outcome.utility(2, problem) == 0.0
        assert outcome.utilities(problem) == [1.0, 1.0, 0.0]

    def test_aborted_utilities_all_zero(self, problem):
        outcome = aborted_outcome()
        assert outcome.utilities(problem) == [0.0, 0.0, 0.0]

    def test_max_agent_work(self):
        assert completed_outcome().max_agent_work == 9

    def test_max_agent_work_empty(self, problem):
        outcome = completed_outcome()
        outcome.agent_operations = []
        assert outcome.max_agent_work == 0


class TestTranscriptFields:
    def test_transcript_is_frozen(self):
        transcript = completed_outcome().transcripts[0]
        with pytest.raises(Exception):
            transcript.winner = 2

    def test_abort_repr_carries_context(self):
        abort = aborted_outcome().abort
        text = repr(abort)
        assert "bidding" in text
        assert "detected_by=1" in text
        assert "offender=2" in text
