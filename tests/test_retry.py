"""Retransmission with bounded retry and backoff (:class:`RetryPolicy`).

Covers the policy object itself, the grace sub-round mechanics of
:class:`TimeoutNetwork`, the exact metrics accounting (every retry is
charged at full price), and end-to-end DMW runs that complete *because*
of retransmission where the bare timeout would abort.
"""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.network.asynchronous import NO_RETRY, RetryPolicy, TimeoutNetwork
from repro.network.faults import FaultPlan
from repro.network.latency import LatencyModel
from repro.scheduling.problem import SchedulingProblem


def fast_model(rng, scale=None):
    return LatencyModel(rng, base=0.001, jitter=0.001,
                        per_link_scale=scale)


def exact_model(rng, scale=None):
    """Deterministic delays (no jitter): scale * 0.001 per link."""
    return LatencyModel(rng, base=0.001, jitter=0.0,
                        per_link_scale=scale)


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [2, 1],
        [1, 3],
        [3, 2],
        [2, 2],
        [3, 3],
    ])


def run_dmw_over(network, params, problem, seed=0):
    master = random.Random(seed)
    agents = [
        DMWAgent(i, params,
                 [int(problem.time(i, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for i in range(5)
    ]
    protocol = DMWProtocol(params, agents, network=network)
    return protocol.execute(problem.num_tasks)


class TestRetryPolicy:
    def test_defaults_are_no_retry(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.max_retries == 0

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_backoff_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=2, backoff=0.5)

    def test_grace_windows_widen_exponentially(self):
        policy = RetryPolicy(max_attempts=4, backoff=2.0)
        assert policy.max_retries == 3
        assert policy.grace_window(0.1, 1) == pytest.approx(0.2)
        assert policy.grace_window(0.1, 2) == pytest.approx(0.4)
        assert policy.grace_window(0.1, 3) == pytest.approx(0.8)

    def test_unit_backoff_keeps_window_constant(self):
        policy = RetryPolicy(max_attempts=3, backoff=1.0)
        assert policy.grace_window(0.1, 1) == pytest.approx(0.1)
        assert policy.grace_window(0.1, 2) == pytest.approx(0.1)


class TestGraceSubRounds:
    def test_moderately_slow_link_is_recovered(self, rng):
        # Delay exactly 0.15: over the 0.1 barrier but inside the first
        # grace window of 0.2.
        scale = {(0, 1): 150.0}
        network = TimeoutNetwork(3, exact_model(rng, scale),
                                 round_timeout=0.1,
                                 retry_policy=RetryPolicy(max_attempts=2))
        network.send(0, 1, "x", None)
        delivered = network.deliver()
        assert delivered == 1
        assert network.late_messages == 0
        assert network.retries == 1
        assert network.recovered == 1
        assert len(network.receive(1)) == 1

    def test_hopelessly_slow_link_is_still_dropped(self, rng):
        scale = {(0, 1): 100000.0}
        network = TimeoutNetwork(3, fast_model(rng, scale),
                                 round_timeout=0.1,
                                 retry_policy=RetryPolicy(max_attempts=3))
        network.send(0, 1, "x", None)
        assert network.deliver() == 0
        assert network.late_messages == 1
        assert network.retries == 2  # one per grace sub-round
        assert network.recovered == 0
        assert network.receive(1) == []

    def test_no_retry_policy_matches_bare_timeout(self, rng):
        scale = {(0, 1): 1000.0}
        bare = TimeoutNetwork(3, fast_model(random.Random(5), scale),
                              round_timeout=0.1)
        with_policy = TimeoutNetwork(3, fast_model(random.Random(5), scale),
                                     round_timeout=0.1,
                                     retry_policy=NO_RETRY)
        for network in (bare, with_policy):
            network.send(0, 1, "x", None)
            network.deliver()
        assert bare.late_messages == with_policy.late_messages == 1
        assert bare.retries == with_policy.retries == 0
        assert bare.clock == pytest.approx(with_policy.clock)
        assert bare.metrics.as_dict() == with_policy.metrics.as_dict()

    def test_grace_window_extends_the_clock(self, rng):
        scale = {(0, 1): 100000.0}
        network = TimeoutNetwork(3, fast_model(rng, scale),
                                 round_timeout=0.1,
                                 retry_policy=RetryPolicy(max_attempts=2,
                                                          backoff=2.0))
        network.send(0, 1, "x", None)
        network.deliver()
        # Full barrier (0.1) plus the full first grace window (0.2).
        assert network.clock == pytest.approx(0.3)
        assert network.round_durations[-1] == pytest.approx(0.3)

    def test_recovered_round_releases_at_recovery_time(self, rng):
        scale = {(0, 1): 150.0}
        network = TimeoutNetwork(3, exact_model(rng, scale),
                                 round_timeout=0.1,
                                 retry_policy=RetryPolicy(max_attempts=2))
        network.send(0, 1, "x", None)
        network.deliver()
        # Barrier waits the full 0.1, then the grace sub-round releases
        # at the recovered copy's arrival (< 0.2 window).
        assert 0.1 < network.clock < 0.3

    def test_retries_are_charged_to_metrics(self, rng):
        scale = {(0, 1): 150.0}
        network = TimeoutNetwork(3, exact_model(rng, scale),
                                 round_timeout=0.1,
                                 retry_policy=RetryPolicy(max_attempts=2))
        network.send(0, 1, "x", 123)
        network.deliver()
        # Original send + one retransmission, both at full price.
        assert network.metrics.point_to_point_messages == 2
        assert network.metrics.retransmissions == 1
        assert network.metrics.recovered_messages == 1
        assert network.metrics.by_kind["x"] == 2
        summary = network.metrics.as_dict()
        assert summary["retransmissions"] == 1
        assert summary["recovered_messages"] == 1

    def test_fault_plan_drops_are_not_retried(self, rng):
        """Deterministic withholding is not transient: no grace sub-round."""
        plan = FaultPlan(dropped_links={(0, 1)})
        network = TimeoutNetwork(3, fast_model(rng), round_timeout=0.1,
                                 fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=3))
        network.send(0, 1, "x", None)
        network.deliver()
        assert network.retries == 0
        assert network.recovered == 0
        assert network.receive(1) == []

    def test_crashed_sender_is_not_retried(self, rng):
        plan = FaultPlan(crashed_from_round={0: 0})
        network = TimeoutNetwork(3, fast_model(rng), round_timeout=0.1,
                                 fault_plan=plan,
                                 retry_policy=RetryPolicy(max_attempts=3))
        network.send(0, 1, "x", None)
        network.deliver()
        assert network.retries == 0
        # The barrier still waits its full timeout for the missing copy.
        assert network.round_durations[-1] == pytest.approx(0.1)


class TestDMWWithRetries:
    def test_retries_rescue_a_transiently_slow_run(self, params5, problem):
        """A link too slow for the barrier but inside the first grace
        window: bare timeout aborts, one retry completes — and the
        completed outcome matches the centralized baseline exactly."""
        scale = {(3, 0): 150.0}
        bare = TimeoutNetwork(5, exact_model(random.Random(1), scale),
                              round_timeout=0.1, extra_participants=1)
        aborted = run_dmw_over(bare, params5, problem)
        assert not aborted.completed

        retried = TimeoutNetwork(5, exact_model(random.Random(1), scale),
                                 round_timeout=0.1, extra_participants=1,
                                 retry_policy=RetryPolicy(max_attempts=2))
        outcome = run_dmw_over(retried, params5, problem)
        assert outcome.completed
        expected = MinWork().run(truthful_bids(problem))
        assert outcome.schedule == expected.schedule
        assert list(outcome.payments) == list(expected.payments)
        assert retried.retries > 0
        assert retried.recovered == retried.retries
        assert outcome.network_metrics.retransmissions == retried.retries

    def test_fault_free_run_reports_zero_retries(self, params5, problem):
        network = TimeoutNetwork(5, fast_model(random.Random(1)),
                                 round_timeout=0.1, extra_participants=1,
                                 retry_policy=RetryPolicy(max_attempts=3))
        outcome = run_dmw_over(network, params5, problem)
        assert outcome.completed
        assert network.retries == 0
        assert outcome.network_metrics.retransmissions == 0
        assert outcome.network_metrics.recovered_messages == 0
        assert "retransmissions" not in outcome.network_metrics.as_dict()
