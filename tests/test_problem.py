"""Unit tests for repro.scheduling.problem."""

import pytest

from repro.scheduling.problem import SchedulingProblem, Task


class TestTask:
    def test_defaults(self):
        task = Task(index=3)
        assert task.processing_requirement == 1.0

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            Task(index=-1)

    def test_invalid_requirement(self):
        with pytest.raises(ValueError):
            Task(index=0, processing_requirement=0)


class TestSchedulingProblem:
    def test_shape(self, problem53):
        assert problem53.num_agents == 5
        assert problem53.num_tasks == 3

    def test_time_accessors(self, problem53):
        assert problem53.time(0, 0) == 2
        assert problem53.time(4, 2) == 1
        assert problem53.agent_times(1) == (3, 2, 1)
        assert problem53.task_times(1) == (1, 2, 3, 2, 1)

    def test_times_matrix_immutable_copy(self, problem53):
        assert problem53.times[0] == (2, 1, 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SchedulingProblem([])
        with pytest.raises(ValueError):
            SchedulingProblem([[]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            SchedulingProblem([[1, 2], [1]])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            SchedulingProblem([[1, 0]])
        with pytest.raises(ValueError):
            SchedulingProblem([[1, -2]])

    def test_task_metadata_length_checked(self):
        with pytest.raises(ValueError):
            SchedulingProblem([[1, 2]], tasks=[Task(0)])

    def test_with_agent_row(self, problem53):
        replaced = problem53.with_agent_row(2, [9, 9, 9])
        assert replaced.agent_times(2) == (9, 9, 9)
        assert replaced.agent_times(0) == problem53.agent_times(0)
        # original untouched
        assert problem53.agent_times(2) == (1, 3, 2)

    def test_with_agent_row_length_checked(self, problem53):
        with pytest.raises(ValueError):
            problem53.with_agent_row(0, [1, 2])

    def test_equality_and_hash(self):
        a = SchedulingProblem([[1, 2], [3, 4]])
        b = SchedulingProblem([[1, 2], [3, 4]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != SchedulingProblem([[1, 2], [3, 5]])
        assert a != "something else"

    def test_repr(self, problem53):
        assert "n=5" in repr(problem53)


class TestFromSpeeds:
    def test_unrelated_speeds(self):
        problem = SchedulingProblem.from_speeds(
            requirements=[10, 20],
            speeds=[[2, 4], [5, 10]],
        )
        assert problem.time(0, 0) == 5
        assert problem.time(0, 1) == 5
        assert problem.time(1, 0) == 2
        assert problem.time(1, 1) == 2

    def test_related_machines_scalar_speed(self):
        problem = SchedulingProblem.from_speeds(
            requirements=[10, 20, 30],
            speeds=[[2], [10]],
        )
        assert problem.agent_times(0) == (5, 10, 15)
        assert problem.agent_times(1) == (1, 2, 3)

    def test_requirements_recorded_in_tasks(self):
        problem = SchedulingProblem.from_speeds([4, 8], [[1], [2]])
        assert problem.tasks[1].processing_requirement == 8

    def test_bad_speed_row(self):
        with pytest.raises(ValueError):
            SchedulingProblem.from_speeds([1, 2], [[1, 2, 3]])
        with pytest.raises(ValueError):
            SchedulingProblem.from_speeds([1, 2], [[1, 0]])
