"""Batched share verification: soundness, parity, and fallback.

The random-linear-combination batch (:func:`verify_share_batch`) must
(1) accept exactly what the per-share eqs. (7)-(9) accept, (2) reject
tampered openings for (essentially) every coefficient draw, (3) charge
the per-share counting schedule bit-for-bit, and (4) leave whole-protocol
outcomes — honest *and* deviant — identical to per-share mode.
"""

import random

import pytest

from repro.analysis.faithfulness import evaluate_deviation
from repro.core import DMWParameters
from repro.core.bidding import ShareBundle, encode_bid
from repro.core.deviant import standard_deviations
from repro.core.protocol import run_dmw
from repro.core.verification import verify_share_bundle
from repro.crypto import fastexp
from repro.crypto.commitments import PedersenCommitter, verify_share_batch
from repro.crypto.modular import OperationCounter
from repro.crypto.polynomials import Polynomial
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture()
def committer(group_small):
    return PedersenCommitter(group_small)


def _make_vectors(committer, rng, count=3, size=6):
    """``count`` committed polynomial pairs plus their openings at 3."""
    q = committer.parameters.group.q
    point = 3
    vectors, openings = [], []
    for _ in range(count):
        values = Polynomial.random(3, q, rng)
        blindings = Polynomial.random(size, q, rng)
        vectors.append(committer.commit_polynomial(values, blindings, size))
        openings.append((values.evaluate(point), blindings.evaluate(point)))
    return point, vectors, openings


def _coefficients(q, seed):
    draw = random.Random(seed)
    return [draw.randrange(1, q) for _ in range(3)]


class TestBatchSoundness:
    def test_honest_openings_accepted(self, committer, rng):
        q = committer.parameters.group.q
        point, vectors, openings = _make_vectors(committer, rng)
        for seed in range(20):
            assert verify_share_batch(vectors, point, openings,
                                      _coefficients(q, seed))

    @pytest.mark.parametrize("slot", [0, 1, 2])
    @pytest.mark.parametrize("component", ["value", "blinding"])
    def test_tampered_opening_rejected(self, committer, rng, slot,
                                       component):
        """One corrupted share survives a random RLC with probability
        1/q (~2^-55 for the small group): 20 draws must all reject."""
        q = committer.parameters.group.q
        point, vectors, openings = _make_vectors(committer, rng)
        value, blinding = openings[slot]
        openings = list(openings)
        openings[slot] = ((value + 1) % q, blinding) \
            if component == "value" else (value, (blinding + 1) % q)
        for seed in range(20):
            assert not verify_share_batch(vectors, point, openings,
                                          _coefficients(q, seed))

    def test_zero_coefficient_rejected(self, committer, rng):
        """c_j = 0 would blind the batch to slot j entirely."""
        q = committer.parameters.group.q
        point, vectors, openings = _make_vectors(committer, rng)
        with pytest.raises(ValueError, match="non-zero"):
            verify_share_batch(vectors, point, openings, [1, q, 2])

    def test_length_mismatch_rejected(self, committer, rng):
        point, vectors, openings = _make_vectors(committer, rng)
        with pytest.raises(ValueError, match="equal length"):
            verify_share_batch(vectors, point, openings, [1, 2])
        with pytest.raises(ValueError, match="at least one"):
            verify_share_batch([], point, [], [])

    def test_counter_parity_with_per_share_path(self, committer, rng):
        """The batch charges exactly three verify_share schedules."""
        q = committer.parameters.group.q
        point, vectors, openings = _make_vectors(committer, rng)
        per_share = OperationCounter()
        for vector, (value, blinding) in zip(vectors, openings):
            assert vector.verify_share(point, value, blinding, per_share)
        batched = OperationCounter()
        assert verify_share_batch(vectors, point, openings,
                                  _coefficients(q, 7), batched)
        assert batched.snapshot() == per_share.snapshot()


def _bundle_fixture(params5, seed=0):
    """One honest bid package plus its bundle for a receiver pseudonym."""
    draw = random.Random(seed)
    package = encode_bid(params5, params5.bid_values[0], draw)
    pseudonym = 2
    return package.commitments, pseudonym, \
        package.share_bundle_for(pseudonym)


def _batched_params(params5):
    return DMWParameters.generate(
        5, fault_bound=1, group_parameters=params5.group_parameters,
        share_verification_mode="batched")


class TestBundleDispatch:
    def test_batched_and_per_share_verdicts_agree(self, params5):
        commitments, pseudonym, bundle = _bundle_fixture(params5)
        batched = _batched_params(params5)
        rng = random.Random(11)
        assert verify_share_bundle(params5, commitments, pseudonym, bundle)
        assert verify_share_bundle(batched, commitments, pseudonym, bundle,
                                   rng=rng)

    def test_batched_rejects_corrupted_bundle(self, params5):
        commitments, pseudonym, bundle = _bundle_fixture(params5)
        batched = _batched_params(params5)
        q = params5.group.q
        corrupt = ShareBundle(e_value=(bundle.e_value + 1) % q,
                              f_value=bundle.f_value,
                              g_value=bundle.g_value,
                              h_value=bundle.h_value)
        for seed in range(10):
            assert not verify_share_bundle(batched, commitments, pseudonym,
                                           corrupt,
                                           rng=random.Random(seed))

    def test_no_rng_falls_back_to_per_share(self, params5):
        """Batched mode without a coefficient stream uses the listing."""
        commitments, pseudonym, bundle = _bundle_fixture(params5)
        batched = _batched_params(params5)
        assert verify_share_bundle(batched, commitments, pseudonym, bundle,
                                   rng=None)

    def test_naive_mode_falls_back_to_per_share(self, params5):
        """The batch is a fast path; naive mode must not take it."""
        commitments, pseudonym, bundle = _bundle_fixture(params5)
        batched = _batched_params(params5)
        with fastexp.naive_mode():
            assert verify_share_bundle(batched, commitments, pseudonym,
                                       bundle, rng=random.Random(3))


def _outcome_signature(outcome):
    """Outcome fields pinned bit-for-bit across verification modes
    (cache statistics are intentionally excluded: the batch skips the
    per-share evaluation caches by design — docs/PERFORMANCE.md)."""
    return (
        outcome.completed,
        list(outcome.schedule.assignment),
        list(outcome.payments),
        [(t.task, t.first_price, t.winner, t.second_price)
         for t in outcome.transcripts],
        outcome.agent_operations,
        outcome.network_metrics.as_dict(),
    )


class TestWholeProtocolEquivalence:
    def _run(self, group, mode, n=6, m=2, seed=0):
        parameters = DMWParameters.generate(
            n, fault_bound=1, group_parameters=group,
            share_verification_mode=mode)
        problem = workloads.random_discrete(n, m, parameters.bid_values,
                                            random.Random(seed))
        outcome = run_dmw(problem, parameters=parameters,
                          rng=random.Random(seed + 1))
        assert outcome.completed
        return outcome

    @pytest.mark.parametrize("seed", [0, 1])
    def test_honest_runs_bit_identical(self, group_small, seed):
        per_share = self._run(group_small, "per-share", seed=seed)
        batched = self._run(group_small, "batched", seed=seed)
        assert (_outcome_signature(per_share)
                == _outcome_signature(batched))

    def test_counters_identical_per_agent(self, group_small):
        """Counter parity specifically, agent by agent (Theorem 12)."""
        per_share = self._run(group_small, "per-share")
        batched = self._run(group_small, "batched")
        for mine, theirs in zip(per_share.agent_operations,
                                batched.agent_operations):
            assert mine == theirs


class TestDeviantEquivalence:
    """Batching must not weaken detection: every fatal share deviation
    aborts in the same phase with the same (zero) deviant utility."""

    @pytest.fixture()
    def instance(self, params5):
        problem = SchedulingProblem([
            [2, 1],
            [1, 3],
            [3, 2],
            [2, 2],
            [3, 3],
        ])
        return problem, _batched_params(params5)

    @pytest.mark.parametrize("strategy", ["corrupt_shares",
                                          "corrupt_commitments"])
    def test_share_corruption_detected_in_batched_mode(self, instance,
                                                       strategy):
        problem, batched = instance
        factory = standard_deviations()[strategy]
        outcome = evaluate_deviation(problem, batched, strategy, factory,
                                     deviant_index=0)
        assert not outcome.completed
        assert outcome.abort_phase == "allocating"
        assert outcome.deviant_utility == 0.0

    @pytest.mark.parametrize("strategy", ["corrupt_shares",
                                          "misreport_bid"])
    def test_verdict_matches_per_share_mode(self, params5, instance,
                                            strategy):
        problem, batched = instance
        factory = standard_deviations()[strategy]
        baseline = evaluate_deviation(problem, params5, strategy, factory,
                                      deviant_index=0)
        under_batch = evaluate_deviation(problem, batched, strategy,
                                         factory, deviant_index=0)
        assert under_batch.completed == baseline.completed
        assert under_batch.abort_phase == baseline.abort_phase
        assert under_batch.deviant_utility == baseline.deviant_utility
