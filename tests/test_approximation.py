"""Tests for repro.analysis.approximation (experiment E8)."""

import pytest

from repro.analysis.approximation import (
    adversarial_ratios,
    measure_ratio,
    random_workload_ratios,
)
from repro.scheduling.problem import SchedulingProblem


class TestMeasureRatio:
    def test_ratio_fields(self):
        problem = SchedulingProblem([[1, 1], [2, 2]])
        sample = measure_ratio(problem, "hand")
        assert sample.workload == "hand"
        assert sample.ratio >= 1.0 - 1e-9

    def test_perfect_instance_ratio_one(self):
        # One specialist per task: MinWork is optimal.
        problem = SchedulingProblem([[1, 9], [9, 1]])
        assert measure_ratio(problem, "x").ratio == pytest.approx(1.0)


class TestRandomFamilies:
    def test_all_ratios_within_n(self):
        samples = random_workload_ratios(num_agents=3, num_tasks=4, trials=3)
        assert samples
        for sample in samples:
            assert 1.0 - 1e-9 <= sample.ratio <= sample.num_agents + 1e-9

    def test_covers_all_families(self):
        samples = random_workload_ratios(num_agents=3, num_tasks=3, trials=2)
        names = {sample.workload for sample in samples}
        assert names == {"uniform", "machine_correlated", "task_correlated",
                         "bimodal"}


class TestAdversarial:
    def test_ratio_equals_n(self):
        for sample in adversarial_ratios((2, 3, 4)):
            assert sample.ratio == pytest.approx(sample.num_agents, rel=1e-3)
