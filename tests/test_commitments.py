"""Unit tests for repro.crypto.commitments."""

import pytest

from repro.crypto.commitments import (
    PedersenCommitter,
    PolynomialCommitment,
    product_of_commitment_evaluations,
)
from repro.crypto.modular import OperationCounter
from repro.crypto.polynomials import Polynomial


@pytest.fixture()
def committer(group_small):
    return PedersenCommitter(group_small)


class TestScalarCommitment:
    def test_commit_verify_roundtrip(self, committer, rng):
        q = committer.parameters.group.q
        value, blinding = rng.randrange(q), rng.randrange(q)
        commitment = committer.commit(value, blinding)
        assert committer.verify(commitment, value, blinding)

    def test_wrong_value_rejected(self, committer):
        commitment = committer.commit(10, 20)
        assert not committer.verify(commitment, 11, 20)
        assert not committer.verify(commitment, 10, 21)

    def test_homomorphic_addition(self, committer):
        group = committer.parameters.group
        a = committer.commit(3, 4)
        b = committer.commit(5, 6)
        assert group.mul(a, b) == committer.commit(8, 10)

    def test_hiding_randomizes(self, committer):
        assert committer.commit(7, 1) != committer.commit(7, 2)

    def test_exponents_reduced_mod_q(self, committer):
        q = committer.parameters.group.q
        assert committer.commit(3, 4) == committer.commit(3 + q, 4 + q)


class TestPolynomialCommitment:
    def make(self, committer, rng, value_degree=3, size=6):
        q = committer.parameters.group.q
        values = Polynomial.random(value_degree, q, rng)
        blindings = Polynomial.random(size, q, rng)
        commitment = committer.commit_polynomial(values, blindings, size)
        return values, blindings, commitment

    def test_size_is_sigma(self, committer, rng):
        _, _, commitment = self.make(committer, rng, size=6)
        assert commitment.size == 6

    def test_verify_share_accepts_true_share(self, committer, rng):
        values, blindings, commitment = self.make(committer, rng)
        for point in (1, 2, 5):
            assert commitment.verify_share(point, values.evaluate(point),
                                           blindings.evaluate(point))

    def test_verify_share_rejects_wrong_share(self, committer, rng):
        values, blindings, commitment = self.make(committer, rng)
        assert not commitment.verify_share(3, values.evaluate(3) + 1,
                                           blindings.evaluate(3))
        assert not commitment.verify_share(3, values.evaluate(3),
                                           blindings.evaluate(3) + 1)

    def test_degree_hidden_by_fixed_size(self, committer, rng):
        # Commitments to degree-2 and degree-5 polynomials are structurally
        # identical: same vector length, all slots blinded.
        _, _, low = self.make(committer, rng, value_degree=2, size=6)
        _, _, high = self.make(committer, rng, value_degree=5, size=6)
        assert low.size == high.size

    def test_nonzero_constant_term_rejected(self, committer, rng):
        q = committer.parameters.group.q
        values = Polynomial([1, 2, 3], q)
        blindings = Polynomial.random(4, q, rng)
        with pytest.raises(ValueError):
            committer.commit_polynomial(values, blindings, 4)

    def test_degree_above_size_rejected(self, committer, rng):
        q = committer.parameters.group.q
        values = Polynomial.random(5, q, rng)
        blindings = Polynomial.random(5, q, rng)
        with pytest.raises(ValueError):
            committer.commit_polynomial(values, blindings, 3)

    def test_evaluation_is_metered(self, committer, rng):
        _, _, commitment = self.make(committer, rng)
        counter = OperationCounter()
        commitment.evaluate(3, counter)
        assert counter.exponentiations == commitment.size

    def test_binding_product_polynomial(self, committer, rng):
        """The eq. (7) use case: commit to e*f blinded by g."""
        q = committer.parameters.group.q
        e = Polynomial.random(2, q, rng)
        f = Polynomial.random(4, q, rng)
        g = Polynomial.random(6, q, rng)
        commitment = committer.commit_polynomial(e * f, g, 6)
        point = 9
        product_value = (e.evaluate(point) * f.evaluate(point)) % q
        assert commitment.verify_share(point, product_value,
                                       g.evaluate(point))


class TestAggregateProduct:
    def test_product_equals_commitment_to_sums(self, committer, rng):
        """The eq. (11) identity: prod_k Gamma_{i,k} = z1^E z2^H."""
        q = committer.parameters.group.q
        group = committer.parameters.group
        polynomials = [(Polynomial.random(3, q, rng),
                        Polynomial.random(6, q, rng)) for _ in range(4)]
        commitments = [committer.commit_polynomial(e, h, 6)
                       for e, h in polynomials]
        point = 7
        product = product_of_commitment_evaluations(commitments, point)
        e_sum = sum(e.evaluate(point) for e, _ in polynomials) % q
        h_sum = sum(h.evaluate(point) for _, h in polynomials) % q
        expected = group.mul(
            group.exp(committer.parameters.z1, e_sum),
            group.exp(committer.parameters.z2, h_sum),
        )
        assert product == expected

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            product_of_commitment_evaluations([], 3)
