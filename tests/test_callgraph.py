"""Unit tests for the whole-program module resolver and call graph.

Covers the resolution features the project rules lean on: dotted module
naming, ``from x import y`` chains including package ``__init__``
re-exports, method resolution through ``self``/annotations/construction
and base classes, call cycles, and BFS reachability.
"""

import ast

import pytest

from repro.analysis.static.callgraph import (
    CallGraph,
    Project,
    module_name_for_path,
)


def _project(files):
    return Project.from_sources(
        (path, ast.parse(source, filename=path))
        for path, source in files.items())


def _edges(graph):
    return {(edge.caller, edge.callee)
            for edges in graph.edges.values() for edge in edges}


class TestModuleNames:
    def test_src_anchored(self):
        assert (module_name_for_path("src/repro/core/machine.py")
                == "repro.core.machine")

    def test_absolute_path_with_src(self):
        assert (module_name_for_path("/home/u/repo/src/repro/parallel.py")
                == "repro.parallel")

    def test_package_init(self):
        assert (module_name_for_path("src/repro/crypto/__init__.py")
                == "repro.crypto")

    def test_no_src_component_keeps_path(self):
        name = module_name_for_path("tools/helper.py")
        assert name == "tools.helper"


class TestResolution:
    def test_cross_module_function_call(self):
        project = _project({
            "src/pkg/a.py": "from pkg.b import helper\n"
                            "def caller():\n    helper()\n",
            "src/pkg/b.py": "def helper():\n    pass\n",
        })
        graph = CallGraph(project)
        assert ("pkg.a:caller", "pkg.b:helper") in _edges(graph)

    def test_reexport_through_package_init(self):
        project = _project({
            "src/pkg/__init__.py": "from pkg.impl import helper\n",
            "src/pkg/impl.py": "def helper():\n    pass\n",
            "src/app.py": "from pkg import helper\n"
                          "def caller():\n    helper()\n",
        })
        graph = CallGraph(project)
        assert ("app:caller", "pkg.impl:helper") in _edges(graph)

    def test_relative_import(self):
        project = _project({
            "src/pkg/a.py": "from .b import helper\n"
                            "def caller():\n    helper()\n",
            "src/pkg/b.py": "def helper():\n    pass\n",
        })
        graph = CallGraph(project)
        assert ("pkg.a:caller", "pkg.b:helper") in _edges(graph)

    def test_self_method_resolution(self):
        project = _project({
            "src/m.py": ("class Widget:\n"
                         "    def run(self):\n"
                         "        self.step()\n"
                         "    def step(self):\n"
                         "        pass\n"),
        })
        graph = CallGraph(project)
        assert ("m:Widget.run", "m:Widget.step") in _edges(graph)

    def test_inherited_method_through_base_class(self):
        project = _project({
            "src/base.py": ("class Base:\n"
                            "    def shared(self):\n"
                            "        pass\n"),
            "src/sub.py": ("from base import Base\n"
                           "class Sub(Base):\n"
                           "    def run(self):\n"
                           "        self.shared()\n"),
        })
        graph = CallGraph(project)
        assert ("sub:Sub.run", "base:Base.shared") in _edges(graph)

    def test_annotation_typed_parameter(self):
        project = _project({
            "src/m.py": ("class Machine:\n"
                         "    def fire(self):\n"
                         "        pass\n"
                         "def drive(machine: Machine):\n"
                         "    machine.fire()\n"),
        })
        graph = CallGraph(project)
        assert ("m:drive", "m:Machine.fire") in _edges(graph)

    def test_local_construction_type_inference(self):
        project = _project({
            "src/m.py": ("class Machine:\n"
                         "    def fire(self):\n"
                         "        pass\n"
                         "def drive():\n"
                         "    machine = Machine()\n"
                         "    machine.fire()\n"),
        })
        graph = CallGraph(project)
        assert ("m:drive", "m:Machine.fire") in _edges(graph)

    def test_unresolvable_call_contributes_no_edge(self):
        project = _project({
            "src/m.py": "def caller(thing):\n    thing.unknowable()\n",
        })
        graph = CallGraph(project)
        assert graph.callees("m:caller") == []


class TestReachability:
    def test_cycle_terminates_and_is_fully_reachable(self):
        project = _project({
            "src/m.py": ("def a():\n    b()\n"
                         "def b():\n    c()\n"
                         "def c():\n    a()\n"),
        })
        graph = CallGraph(project)
        reached = graph.reachable(["m:a"])
        assert reached == {"m:a", "m:b", "m:c"}

    def test_reachable_excludes_disconnected(self):
        project = _project({
            "src/m.py": ("def a():\n    b()\n"
                         "def b():\n    pass\n"
                         "def island():\n    pass\n"),
        })
        graph = CallGraph(project)
        assert "m:island" not in graph.reachable(["m:a"])

    def test_callers_reverse_map(self):
        project = _project({
            "src/m.py": ("def a():\n    shared()\n"
                         "def b():\n    shared()\n"
                         "def shared():\n    pass\n"),
        })
        graph = CallGraph(project)
        assert graph.callers["m:shared"] == {"m:a", "m:b"}


class TestMixedScenarios:
    @pytest.mark.parametrize("alias", ["import pkg.b as helper_mod",
                                       "from pkg import b as helper_mod"])
    def test_module_alias_attribute_call(self, alias):
        project = _project({
            "src/pkg/__init__.py": "",
            "src/pkg/a.py": ("%s\n"
                             "def caller():\n"
                             "    helper_mod.helper()\n" % alias),
            "src/pkg/b.py": "def helper():\n    pass\n",
        })
        graph = CallGraph(project)
        assert ("pkg.a:caller", "pkg.b:helper") in _edges(graph)

    def test_self_recursion_is_not_an_edge(self):
        project = _project({
            "src/m.py": "def loop(n):\n    loop(n - 1)\n",
        })
        graph = CallGraph(project)
        assert graph.callees("m:loop") == []
