"""Larger-scale integration runs: everything composed at once.

These runs exercise feature combinations at sizes above the unit tests'
(n up to 14, m up to 5; tracing + delivery recording + audit + latency +
serialization on the same execution), guarding against interactions the
per-module suites cannot see.
"""

import random

import pytest

from repro import serialization
from repro.core.agent import DMWAgent
from repro.core.audit import audit_protocol_run
from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol
from repro.core.trace import ProtocolTrace
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.network.latency import LatencyModel, estimate_protocol_latency
from repro.scheduling import workloads


@pytest.fixture(scope="module")
def big_run(group_small):
    """One fully-instrumented n=14, m=5 execution shared by the tests."""
    parameters = DMWParameters.generate(14, fault_bound=2,
                                        group_parameters=group_small)
    problem = workloads.random_discrete(14, 5, parameters.bid_values,
                                        random.Random(99))
    master = random.Random(7)
    agents = [
        DMWAgent(index, parameters,
                 [int(problem.time(index, j)) for j in range(5)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(14)
    ]
    trace = ProtocolTrace()
    protocol = DMWProtocol(parameters, agents, record_deliveries=True,
                           trace=trace)
    outcome = protocol.execute(5)
    return parameters, problem, protocol, outcome, trace


class TestBigRun:
    def test_completes_and_matches_minwork(self, big_run):
        _, problem, _, outcome, _ = big_run
        assert outcome.completed
        expected = MinWork().run(truthful_bids(problem))
        assert outcome.schedule == expected.schedule
        assert list(outcome.payments) == list(expected.payments)

    def test_audit_passes(self, big_run):
        _, _, protocol, outcome, _ = big_run
        report = audit_protocol_run(protocol, outcome)
        assert report.ok
        assert report.reconstructed_assignment == \
            outcome.schedule.assignment

    def test_trace_covers_all_tasks(self, big_run):
        _, _, _, outcome, trace = big_run
        assert len(trace.events(kind="auction_resolved")) == 5
        assert trace.events(kind="abort") == []

    def test_latency_timeline(self, big_run):
        _, _, protocol, outcome, _ = big_run
        model = LatencyModel(random.Random(1), base=0.005, jitter=0.005)
        timeline = estimate_protocol_latency(protocol.network, model)
        assert len(timeline.round_durations) == \
            outcome.network_metrics.rounds
        assert timeline.total_seconds > 0.005 * len(
            timeline.round_durations)

    def test_outcome_serialization_roundtrip(self, big_run):
        _, problem, _, outcome, _ = big_run
        restored = serialization.loads(serialization.dumps(outcome))
        assert restored.schedule == outcome.schedule
        assert restored.payments == outcome.payments
        for agent in range(14):
            assert restored.utility(agent, problem) == \
                outcome.utility(agent, problem)

    def test_message_budget_at_scale(self, big_run):
        parameters, _, _, outcome, _ = big_run
        n, m = 14, 5
        metrics = outcome.network_metrics
        # Fig. 2 budget generalized: bundles m*n*(n-1), published kinds
        # m*n*n each (fan-out n = 13 agents + escrow).
        assert metrics.by_kind["share_bundle"] == m * n * (n - 1)
        assert metrics.by_kind["commitments"] == m * n * n
        assert metrics.by_kind["lambda_psi"] == m * n * n
        assert metrics.by_kind["second_price"] == m * n * n

    def test_per_agent_work_reasonably_balanced(self, big_run):
        _, _, _, outcome, _ = big_run
        works = [ops["multiplication_work"]
                 for ops in outcome.agent_operations]
        # Disclosers do more work than non-disclosers, but within ~3x.
        assert max(works) < 3 * min(works)
