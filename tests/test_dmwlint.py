"""Tests for dmwlint: engine, suppressions, CLI, and the golden fixtures.

Each rule gets a (violating, clean, suppressed) triple from
``tests/fixtures/dmwlint/``; the fixtures are linted under a synthetic path
that activates the rule's path scope.  A final test asserts the repo's own
``src/`` tree lints clean — the acceptance criterion of the tooling.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.static import (
    ALL_RULES,
    DEFAULT_RULES,
    lint_source,
    parse_suppressions,
    rule_by_id,
    run_paths,
)
from repro.analysis.static.cli import main as lint_main

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures", "dmwlint")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Synthetic lint path per rule: must fall inside the rule's path scope.
SCOPE_PATHS = {
    "DMW001": "src/repro/core/fixture.py",
    "DMW002": "src/repro/crypto/fixture.py",
    "DMW003": "src/repro/crypto/fixture.py",
    "DMW004": "src/repro/core/fixture.py",
    "DMW005": "src/repro/network/fixture.py",
    "DMW006": "src/repro/crypto/fixture.py",
    "DMW007": "src/repro/crypto/fixture.py",
    "DMW008": "src/repro/core/agent.py",
    "DMW009": "src/repro/core/machine.py",
    "DMW010": "src/repro/network/fixture.py",
    "DMW011": "src/repro/parallel.py",
}

RULE_IDS = sorted(SCOPE_PATHS)


def _fixture_source(rule_id: str, kind: str) -> str:
    name = "%s_%s.py" % (rule_id.lower(), kind)
    with open(os.path.join(FIXTURE_DIR, name), "r", encoding="utf-8") as fh:
        return fh.read()


def _lint_fixture(rule_id: str, kind: str):
    rule = rule_by_id(rule_id)
    source = _fixture_source(rule_id, kind)
    return lint_source(SCOPE_PATHS[rule_id], source, [rule])


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_violating_fixture_is_caught(self, rule_id):
        report = _lint_fixture(rule_id, "violating")
        assert report.violations, "expected %s to fire" % rule_id
        assert all(v.rule_id == rule_id for v in report.violations)
        # Violations carry usable positions and messages.
        for violation in report.violations:
            assert violation.line > 0
            assert violation.message

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_fixture_passes(self, rule_id):
        report = _lint_fixture(rule_id, "clean")
        assert report.ok, [v.format_human() for v in report.violations]
        assert report.suppressed_count == 0

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_suppressed_fixture_is_silenced_and_counted(self, rule_id):
        report = _lint_fixture(rule_id, "suppressed")
        assert report.ok, [v.format_human() for v in report.violations]
        assert report.suppressed_count >= 1

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_violating_fixture_out_of_scope_is_ignored(self, rule_id):
        rule = rule_by_id(rule_id)
        if not rule.include_parts:
            pytest.skip("%s applies everywhere" % rule_id)
        source = _fixture_source(rule_id, "violating")
        report = lint_source("scripts/unscoped_helper.py", source, [rule])
        assert report.ok


def _violation(rule_id, line):
    from repro.analysis.static.base import Violation
    return Violation(rule_id=rule_id, path="x.py", line=line, col=0,
                     message="test")


class TestSuppressions:
    def test_line_suppression_parses_rule_ids(self):
        source = "x = 1  # dmwlint: disable=DMW001,DMW006\n"
        suppressions = parse_suppressions(source)
        assert suppressions.is_suppressed(_violation("DMW001", 1))
        assert suppressions.is_suppressed(_violation("DMW006", 1))
        assert not suppressions.is_suppressed(_violation("DMW002", 1))
        assert not suppressions.is_suppressed(_violation("DMW001", 2))

    def test_file_wide_suppression(self):
        source = ("# dmwlint: disable-file=DMW003\n"
                  "share_total = share_a + share_b\n")
        rule = rule_by_id("DMW003")
        report = lint_source("src/repro/crypto/fixture.py", source, [rule])
        assert report.ok
        assert report.suppressed_count == 1

    def test_unrelated_comment_is_not_a_suppression(self):
        source = "value = 1  # disables nothing: dmwlint is great\n"
        suppressions = parse_suppressions(source)
        assert not suppressions.is_suppressed(_violation("DMW001", 1))


class TestEngine:
    def test_parse_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = run_paths([str(tmp_path)], DEFAULT_RULES)
        assert not report.ok
        assert report.parse_errors
        assert report.files_checked == 1

    def test_json_report_schema(self):
        source = "import random\nrandom.random()\n"
        report = lint_source("src/repro/core/fixture.py", source,
                             [rule_by_id("DMW001")])
        payload = json.loads(report.render_json())
        assert payload["version"] == 1
        assert payload["tool"] == "dmwlint"
        assert payload["violation_count"] == 1
        violation = payload["violations"][0]
        assert violation["rule"] == "DMW001"
        assert violation["line"] == 2

    def test_rule_catalog_is_complete(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert ids == sorted(ids)
        assert set(RULE_IDS) <= set(ids)
        # DMW000 exists but is opt-in.
        dmw000 = rule_by_id("DMW000")
        assert not dmw000.default_enabled
        assert dmw000 not in DEFAULT_RULES
        for rule in ALL_RULES:
            assert rule.description
            assert rule.invariant


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("VALUE = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) checked" in out

    def test_violations_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nrandom.random()\n")
        assert lint_main([str(bad)]) == 1
        assert "DMW001" in capsys.readouterr().out

    def test_select_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--select", "DMW999", "."]) == 2

    def test_json_format(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("VALUE = 1\n")
        assert lint_main(["--format", "json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "dmwlint"

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.path.join(REPO_ROOT, "src")})
        assert result.returncode == 0
        assert "DMW001" in result.stdout


class TestRepoIsClean:
    def test_src_tree_lints_clean(self):
        """Acceptance criterion: `python -m repro.lint src/` exits 0."""
        report = run_paths([os.path.join(REPO_ROOT, "src")], DEFAULT_RULES)
        assert report.ok, "\n" + report.render_human()

    def test_src_tree_annotation_gate(self):
        """DMW000 (mypy --strict approximation) on crypto/core/network."""
        rules = [rule_by_id("DMW000")]
        paths = [os.path.join(REPO_ROOT, "src", "repro", part)
                 for part in ("crypto", "core", "network")]
        report = run_paths(paths, rules)
        assert report.ok, "\n" + report.render_human()
