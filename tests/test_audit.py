"""Tests for repro.core.audit (passive transcript verification)."""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.audit import TranscriptAuditor, audit_protocol_run
from repro.core.deviant import FalseDisclosureAgent, WithholdDisclosureAgent
from repro.core.protocol import DMWProtocol
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.network.message import Message
from repro.scheduling.problem import SchedulingProblem


def run_protocol(params, problem, factories=None, seed=0):
    master = random.Random(seed)
    rows = [[int(problem.time(i, j)) for j in range(problem.num_tasks)]
            for i in range(problem.num_agents)]
    agents = []
    for index in range(problem.num_agents):
        rng = random.Random(master.getrandbits(64))
        if factories and index in factories:
            agents.append(factories[index](index, params, rows[index], rng))
        else:
            agents.append(DMWAgent(index, params, rows[index], rng=rng))
    protocol = DMWProtocol(params, agents)
    outcome = protocol.execute(problem.num_tasks)
    return protocol, outcome


@pytest.fixture()
def honest_run(params5, problem53):
    return run_protocol(params5, problem53)


class TestHonestAudit:
    def test_honest_run_passes(self, honest_run, problem53):
        protocol, outcome = honest_run
        report = audit_protocol_run(protocol, outcome)
        assert report.ok
        assert report.findings == []

    def test_reconstruction_matches_minwork(self, honest_run, problem53):
        protocol, outcome = honest_run
        report = audit_protocol_run(protocol, outcome)
        result = MinWork().run(truthful_bids(problem53))
        assert report.reconstructed_assignment == result.schedule.assignment
        assert report.reconstructed_payments == result.payments

    def test_auditor_reads_only_public_messages(self, honest_run):
        protocol, outcome = honest_run
        # No share_bundle (private channel) message appears on the board.
        kinds = {m.kind for m in protocol.network.published()}
        assert "share_bundle" not in kinds
        report = audit_protocol_run(protocol, outcome)
        assert report.ok

    def test_auditor_work_is_counted(self, honest_run):
        protocol, outcome = honest_run
        report = audit_protocol_run(protocol, outcome)
        assert report.operations["multiplication_work"] > 0

    def test_num_tasks_required_without_outcome(self, honest_run):
        protocol, _ = honest_run
        with pytest.raises(ValueError):
            audit_protocol_run(protocol)
        report = audit_protocol_run(protocol, num_tasks=3)
        assert report.ok


class TestTamperedTranscripts:
    def tamper(self, protocol, kind, mutate):
        """Replace the first board message of ``kind`` via ``mutate``."""
        board = protocol.network.bulletin_board
        for index, message in enumerate(board):
            if message.kind == kind:
                board[index] = mutate(message)
                return
        raise AssertionError("no message of kind %r" % kind)

    def test_tampered_lambda_detected(self, params5, problem53):
        protocol, outcome = run_protocol(params5, problem53)

        def mutate(message):
            task, (lam, psi) = message.payload
            bad = params5.group.mul(lam, params5.z1)
            return Message(sender=message.sender, recipient=None,
                           kind=message.kind, payload=(task, (bad, psi)),
                           field_elements=message.field_elements)

        self.tamper(protocol, "lambda_psi", mutate)
        report = audit_protocol_run(protocol, outcome)
        assert not report.ok
        assert any(f.check in ("lambda_psi", "first_price")
                   for f in report.findings)

    def test_tampered_disclosure_detected(self, params5, problem53):
        protocol, outcome = run_protocol(params5, problem53)

        def mutate(message):
            task, row = message.payload
            bad = dict(row)
            f_value, h_value = bad[0]
            bad[0] = ((f_value + 1) % params5.group.q, h_value)
            return Message(sender=message.sender, recipient=None,
                           kind=message.kind, payload=(task, bad),
                           field_elements=message.field_elements)

        self.tamper(protocol, "f_disclosure", mutate)
        report = audit_protocol_run(protocol, outcome)
        # The row is flagged; the outcome may still reconstruct from the
        # remaining rows (disclosure width carries +c slack).
        assert any(f.check == "f_disclosure" for f in report.findings)

    def test_wrong_reported_schedule_detected(self, params5, problem53):
        protocol, outcome = run_protocol(params5, problem53)
        # Forge the reported outcome: swap the winner of task 0.
        forged_assignment = list(outcome.schedule.assignment)
        forged_assignment[0] = (forged_assignment[0] + 1) % 5
        from repro.scheduling.schedule import Schedule
        outcome.schedule = Schedule(forged_assignment, 5)
        report = audit_protocol_run(protocol, outcome)
        assert not report.ok
        assert any(f.check == "outcome" for f in report.findings)

    def test_wrong_reported_payments_detected(self, params5, problem53):
        protocol, outcome = run_protocol(params5, problem53)
        forged = list(outcome.payments)
        forged[0] += 5
        outcome.payments = tuple(forged)
        report = audit_protocol_run(protocol, outcome)
        assert not report.ok

    def test_missing_commitments_detected(self, params5, problem53):
        protocol, outcome = run_protocol(params5, problem53)
        board = protocol.network.bulletin_board
        board[:] = [m for m in board
                    if not (m.kind == "commitments" and m.sender == 2)]
        report = audit_protocol_run(protocol, outcome)
        assert not report.ok
        assert any(f.check == "commitments" for f in report.findings)


class TestDeviantRunsStillAuditable:
    def test_tolerated_deviation_passes_audit(self, params5, problem53):
        """A completed run with a (detected, excluded) bad disclosure still
        audits clean on the *outcome* — the auditor flags the bad row but
        reconstructs the same result."""
        factories = {0: lambda i, p, t, r: FalseDisclosureAgent(i, p, t,
                                                                rng=r)}
        protocol, outcome = run_protocol(params5, problem53, factories)
        assert outcome.completed
        report = audit_protocol_run(protocol, outcome)
        assert any(f.check == "f_disclosure" for f in report.findings)
        assert report.reconstructed_assignment == \
            outcome.schedule.assignment
        assert report.reconstructed_payments == outcome.payments

    def test_withheld_disclosure_still_reconstructs(self, params5,
                                                    problem53):
        factories = {0: lambda i, p, t, r: WithholdDisclosureAgent(i, p, t,
                                                                   rng=r)}
        protocol, outcome = run_protocol(params5, problem53, factories)
        assert outcome.completed
        report = audit_protocol_run(protocol, outcome)
        assert report.ok
        assert report.reconstructed_assignment == \
            outcome.schedule.assignment


class TestMoreTampering:
    def test_tampered_second_price_detected(self, params5, problem53):
        protocol, outcome = run_protocol(params5, problem53)
        board = protocol.network.bulletin_board
        for index, message in enumerate(board):
            if message.kind == "second_price":
                task, (lam, psi) = message.payload
                bad = params5.group.mul(lam, params5.z1)
                board[index] = Message(sender=message.sender,
                                       recipient=None, kind=message.kind,
                                       payload=(task, (bad, psi)),
                                       field_elements=message.field_elements)
                break
        report = audit_protocol_run(protocol, outcome)
        assert any(f.check == "second_price" for f in report.findings)

    def test_forged_winner_claim_is_harmless(self, params5, problem53):
        """A claim injected into the record is tested by eq. (14) during
        reconstruction and discarded: the audit result is unchanged."""
        protocol, outcome = run_protocol(params5, problem53)
        board = protocol.network.bulletin_board
        # Forge a claim from an agent that did not win task 0.
        winner0 = outcome.transcripts[0].winner
        impostor = (winner0 + 1) % 5
        board.append(Message(sender=impostor, recipient=None,
                             kind="winner_claim", payload=(0, True),
                             field_elements=1))
        report = audit_protocol_run(protocol, outcome)
        assert report.ok
        assert report.reconstructed_assignment == \
            outcome.schedule.assignment

    def test_parallel_run_audits_clean(self, params5, problem53):
        master = random.Random(0)
        agents = [
            DMWAgent(i, params5,
                     [int(problem53.time(i, j)) for j in range(3)],
                     rng=random.Random(master.getrandbits(64)))
            for i in range(5)
        ]
        protocol = DMWProtocol(params5, agents)
        outcome = protocol.execute(3, parallel=True)
        assert outcome.completed
        report = audit_protocol_run(protocol, outcome)
        assert report.ok
        assert report.reconstructed_assignment == \
            outcome.schedule.assignment
