"""Unit tests for repro.mechanisms.minwork (paper Definition 5)."""

import random

import pytest

from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork, minwork_first_and_second_price
from repro.scheduling.problem import SchedulingProblem


class TestAllocation:
    def test_each_task_to_lowest_bidder(self, problem53):
        schedule = MinWork().allocate(truthful_bids(problem53))
        for task in range(problem53.num_tasks):
            winner = schedule.agent_of(task)
            column = problem53.task_times(task)
            assert column[winner] == min(column)

    def test_tie_break_lowest_index(self):
        problem = SchedulingProblem([[2], [1], [1]])
        schedule = MinWork().allocate(problem)
        assert schedule.agent_of(0) == 1

    def test_tie_break_random_uses_rng(self):
        problem = SchedulingProblem([[1], [1], [1]])
        winners = set()
        for seed in range(30):
            mechanism = MinWork(tie_break="random", rng=random.Random(seed))
            winners.add(mechanism.allocate(problem).agent_of(0))
        assert len(winners) > 1  # randomization actually spreads ties

    def test_random_tie_break_requires_rng(self):
        with pytest.raises(ValueError):
            MinWork(tie_break="random")

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            MinWork(tie_break="coin")

    def test_minimizes_total_work(self, problem53):
        schedule = MinWork().allocate(problem53)
        expected = sum(min(problem53.task_times(j))
                       for j in range(problem53.num_tasks))
        assert schedule.total_work(problem53) == expected


class TestPayments:
    def test_vickrey_payment_per_task(self):
        problem = SchedulingProblem([
            [1, 5],
            [3, 2],
            [4, 7],
        ])
        result = MinWork().run(problem)
        # Task 0 -> agent 0, second price 3; task 1 -> agent 1, second 5.
        assert result.schedule.assignment == (0, 1)
        assert result.payments == (3.0, 5.0, 0.0)

    def test_losers_paid_nothing(self, problem53):
        result = MinWork().run(problem53)
        for agent in range(problem53.num_agents):
            if not result.schedule.tasks_of(agent):
                assert result.payments[agent] == 0

    def test_payment_at_least_bid(self, problem53):
        """Second price >= first price: winners never paid below cost."""
        result = MinWork().run(problem53)
        for agent in range(problem53.num_agents):
            for task in result.schedule.tasks_of(agent):
                assert result.payments[agent] >= problem53.time(agent, task)

    def test_single_agent_payments_rejected(self):
        problem = SchedulingProblem([[1, 2]])
        mechanism = MinWork()
        schedule = mechanism.allocate(problem)
        with pytest.raises(ValueError):
            mechanism.payments(problem, schedule)

    def test_tie_winner_pays_tied_value(self):
        problem = SchedulingProblem([[2], [2]])
        result = MinWork().run(problem)
        assert result.schedule.agent_of(0) == 0
        assert result.payments[0] == 2


class TestUtilities:
    def test_truthful_utility_nonnegative(self, problem53):
        result = MinWork().run(truthful_bids(problem53))
        for agent in range(problem53.num_agents):
            assert result.utility(agent, problem53) >= 0

    def test_utility_is_payment_minus_cost(self):
        problem = SchedulingProblem([[1], [4]])
        result = MinWork().run(problem)
        assert result.utility(0, problem) == 4 - 1
        assert result.utilities(problem) == [3, 0]


class TestOperationCount:
    def test_counts_scale_linearly(self):
        mechanism = MinWork()
        rng = random.Random(0)
        small = SchedulingProblem(
            [[rng.uniform(1, 9) for _ in range(2)] for _ in range(4)])
        big = SchedulingProblem(
            [[rng.uniform(1, 9) for _ in range(4)] for _ in range(8)])
        _, ops_small = mechanism.run_with_cost(small)
        _, ops_big = mechanism.run_with_cost(big)
        assert ops_big == 4 * ops_small  # 2x agents * 2x tasks

    def test_count_covers_allocation_and_payment(self, problem53):
        mechanism = MinWork()
        _, operations = mechanism.run_with_cost(problem53)
        n, m = problem53.num_agents, problem53.num_tasks
        assert operations == 2 * n * m


class TestHelper:
    def test_first_and_second_price(self):
        winner, first, second = minwork_first_and_second_price((3, 1, 2))
        assert (winner, first, second) == (1, 1, 2)

    def test_tie_column(self):
        winner, first, second = minwork_first_and_second_price((2, 2, 5))
        assert (winner, first, second) == (0, 2, 2)

    def test_needs_two_bids(self):
        with pytest.raises(ValueError):
            minwork_first_and_second_price((1,))
