"""Run-history store: persistence, diff/trend analytics, and the CLI.

Contracts (docs/OBSERVABILITY.md, "Run history"):

* the store is append-only JSONL with stable config fingerprints;
* ``diff`` treats counters/network/outcome as divergences (exit 1) and
  wall-clock/provenance/config as informational — so a sequential run
  and a process-pool run of the same seed diff *clean*;
* ``trend`` flags Theorem 11 band violations, impossible round counts,
  and counter drift within a fingerprint;
* bench ingestion seeds the store from ``BENCH_*.json`` records and
  ``check_regression.py --only history`` gates the stored trend.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from repro.cli import main as cli_main
from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.obs import (
    HistoryStore,
    SpanRecorder,
    config_fingerprint,
    diff_entries,
    entries_from_bench_dir,
    entry_from_report,
    run_report,
    theorem11_message_bounds,
    trend_rows,
)
from repro.obs.history import entry_anomalies, make_entry

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def report_for(params, problem, seed=0, parallel=False, workers=None):
    master = random.Random(seed)
    agents = [
        DMWAgent(index, params,
                 [int(problem.time(index, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(params.num_agents)
    ]
    recorder = SpanRecorder()
    protocol = DMWProtocol(params, agents, observer=recorder)
    outcome = protocol.execute(problem.num_tasks, parallel=parallel,
                               workers=workers)
    return run_report(outcome, agents=agents, recorder=recorder,
                      parameters=params)


# ---------------------------------------------------------------------------
# Fingerprints and the Theorem 11 band
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_and_order_independent(self):
        a = config_fingerprint({"num_agents": 5, "seed": 3})
        b = config_fingerprint({"seed": 3, "num_agents": 5})
        assert a == b and len(a) == 12

    def test_any_field_change_changes_it(self):
        base = {"num_agents": 5, "num_tasks": 3, "seed": 0}
        assert config_fingerprint(base) \
            != config_fingerprint({**base, "seed": 1})

    def test_theorem11_band_matches_fig2(self):
        # Paper figure 2 shape (n=5, m=2): fixed traffic 195, variable
        # disclosure/claim traffic between 2mn=20 and 2mn^2=100.
        lower, upper = theorem11_message_bounds(5, 2)
        assert (lower, upper) == (215, 295)

    def test_real_runs_land_inside_the_band(self, params5, problem53):
        document = report_for(params5, problem53)
        entry = entry_from_report(document, config={"seed": 0})
        assert entry_anomalies(entry) == []
        messages = entry["network"]["point_to_point_messages"]
        lower, upper = theorem11_message_bounds(5, 3)
        assert lower <= messages <= upper


# ---------------------------------------------------------------------------
# Store persistence
# ---------------------------------------------------------------------------

class TestStore:
    def test_append_load_round_trip(self, tmp_path):
        store = HistoryStore(str(tmp_path / "history.jsonl"))
        entry = make_entry({"num_agents": 4}, source="bench",
                           wall_clock_s=1.5, recorded_at=10.0)
        assert store.append(entry) == 1
        assert store.append(dict(entry)) == 2
        loaded = store.load()
        assert len(loaded) == 2
        assert loaded[0] == entry
        assert store.entry(2) == entry

    def test_missing_file_loads_empty(self, tmp_path):
        assert HistoryStore(str(tmp_path / "absent.jsonl")).load() == []

    def test_rejects_foreign_documents(self, tmp_path):
        store = HistoryStore(str(tmp_path / "history.jsonl"))
        with pytest.raises(ValueError):
            store.append({"type": "something_else"})

    def test_malformed_line_is_reported_with_position(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"type": "dmw_history_entry"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            HistoryStore(str(path)).load()

    def test_entry_index_bounds(self, tmp_path):
        store = HistoryStore(str(tmp_path / "history.jsonl"))
        with pytest.raises(IndexError):
            store.entry(1)


def _hammer_append(path, worker, count, queue):
    """Append ``count`` entries from one process (concurrency hammer)."""
    store = HistoryStore(path)
    indices = []
    for i in range(count):
        entry = make_entry({"num_agents": 4, "worker": worker, "i": i},
                           source="bench", wall_clock_s=float(worker),
                           recorded_at=float(i))
        indices.append(store.append(entry))
    queue.put(indices)


class TestStoreConcurrency:
    def test_eight_process_append_hammer(self, tmp_path):
        """Concurrent appenders never interleave partial JSONL lines.

        Eight processes append 25 entries each; afterwards every line
        must parse, all 200 entries must be present, and the lock-counted
        return indices must be a permutation of 1..200.
        """
        import multiprocessing

        path = str(tmp_path / "history.jsonl")
        per_worker = 25
        workers = 8
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        processes = [
            context.Process(target=_hammer_append,
                            args=(path, worker, per_worker, queue))
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        indices = []
        for _ in processes:
            indices.extend(queue.get(timeout=60))
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        entries = [json.loads(line) for line in lines]  # every line parses
        assert len(entries) == workers * per_worker
        seen = {(e["config"]["worker"], e["config"]["i"]) for e in entries}
        assert len(seen) == workers * per_worker
        assert sorted(indices) == list(range(1, workers * per_worker + 1))
        # The store itself still loads clean through the validating path.
        assert len(HistoryStore(path).load()) == workers * per_worker


# ---------------------------------------------------------------------------
# diff: determinism is a divergence, environment is information
# ---------------------------------------------------------------------------

class TestDiff:
    def test_sequential_vs_pool_diffs_clean(self, params5, problem53):
        sequential = entry_from_report(
            report_for(params5, problem53),
            config={"seed": 0, "parallel": False, "workers": None})
        pooled = entry_from_report(
            report_for(params5, problem53, parallel=True, workers=2),
            config={"seed": 0, "parallel": True, "workers": 2})
        diff = diff_entries(sequential, pooled)
        assert diff["clean"], diff["divergences"]
        assert any("config.parallel" in line
                   for line in diff["informational"])

    def test_different_seed_diverges(self, params5, problem53,
                                     problem42, params4):
        a = entry_from_report(report_for(params5, problem53, seed=0),
                              config={"seed": 0})
        b = entry_from_report(report_for(params5, problem53, seed=1),
                              config={"seed": 1})
        diff = diff_entries(a, b)
        assert not diff["clean"]
        assert diff["divergences"]

    def test_tampered_counter_is_a_divergence(self, params5, problem53):
        entry = entry_from_report(report_for(params5, problem53),
                                  config={"seed": 0})
        tampered = json.loads(json.dumps(entry))
        tampered["counters"]["multiplications"] += 1
        diff = diff_entries(entry, tampered)
        assert not diff["clean"]
        assert any("counters.multiplications" in line
                   for line in diff["divergences"])

    def test_wall_clock_is_informational_only(self, params5, problem53):
        entry = entry_from_report(report_for(params5, problem53),
                                  config={"seed": 0})
        slower = json.loads(json.dumps(entry))
        slower["wall_clock_s"] = (slower["wall_clock_s"] or 1.0) * 100
        diff = diff_entries(entry, slower)
        assert diff["clean"]
        assert any("wall_clock_s" in line
                   for line in diff["informational"])


# ---------------------------------------------------------------------------
# trend: closed-form anomaly flags
# ---------------------------------------------------------------------------

class TestTrend:
    def _entry(self, messages=None, rounds=None, counters=None,
               config=None):
        network = {}
        if messages is not None:
            network["point_to_point_messages"] = messages
        if rounds is not None:
            network["rounds"] = rounds
        return make_entry(config or {"num_agents": 5, "num_tasks": 2},
                          source="run_report", network=network or None,
                          counters=counters, recorded_at=0.0)

    def test_out_of_band_messages_are_flagged(self):
        rows = trend_rows([self._entry(messages=296, rounds=9)])
        assert any("Theorem 11" in flag for row in rows
                   for flag in row["anomalies"])

    def test_in_band_run_is_clean(self):
        rows = trend_rows([self._entry(messages=250, rounds=9)])
        assert rows[0]["anomalies"] == []

    def test_impossible_round_counts_are_flagged(self):
        low = trend_rows([self._entry(messages=250, rounds=4)])
        high = trend_rows([self._entry(messages=250, rounds=16)])
        assert any("5-round" in flag for flag in low[0]["anomalies"])
        assert any("ceiling" in flag for flag in high[0]["anomalies"])

    def test_counter_drift_within_fingerprint_is_flagged(self):
        stable = self._entry(messages=250, rounds=9,
                             counters={"multiplications": 10})
        drifted = self._entry(messages=250, rounds=9,
                              counters={"multiplications": 11})
        rows = trend_rows([stable, drifted])
        assert any("counter drift" in flag
                   for flag in rows[1]["anomalies"])
        # Different fingerprints never cross-contaminate.
        other = self._entry(messages=250, rounds=9,
                            counters={"multiplications": 11},
                            config={"num_agents": 5, "num_tasks": 2,
                                    "seed": 9})
        rows = trend_rows([stable, other])
        assert all(row["anomalies"] == [] for row in rows)

    def test_normalised_wall_clock(self):
        entry = make_entry({"bench": "x"}, source="bench",
                           wall_clock_s=0.5, calibration_s=0.05,
                           recorded_at=0.0)
        rows = trend_rows([entry])
        assert rows[0]["normalized"] == pytest.approx(10.0)


# ---------------------------------------------------------------------------
# Bench ingestion and the committed store
# ---------------------------------------------------------------------------

class TestBenchIngestion:
    def test_ingest_bench_dir(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_scaling_calibration.json").write_text(json.dumps(
            [{"bench": "scaling_calibration", "params": {"machine": "x"},
              "wall_clock_s": 0.05}]))
        (results / "BENCH_scaling.json").write_text(json.dumps(
            [{"bench": "scaling", "params": {"n": 5, "m": 2},
              "wall_clock_s": 0.5, "counters": {"multiplications": 7}}]))
        entries = entries_from_bench_dir(str(results))
        assert len(entries) == 1  # calibration itself is not ingested
        entry = entries[0]
        assert entry["source"] == "bench"
        assert entry["calibration_s"] == 0.05
        assert entry["config"]["num_agents"] == 5
        assert entry["config"]["num_tasks"] == 2
        assert entry["counters"] == {"multiplications": 7}

    def test_committed_store_matches_bench_records(self):
        """The repo ships a pre-seeded store with zero anomalies."""
        store = HistoryStore(os.path.join(REPO_ROOT, "benchmarks",
                                          "results", "history.jsonl"))
        entries = store.load()
        assert entries, "committed history store must not be empty"
        assert all(entry["source"] == "bench" for entry in entries)
        for row in trend_rows(entries):
            assert row["anomalies"] == []

    def test_check_regression_history_gate(self, tmp_path):
        """--only history passes on the committed store and fails when
        a fingerprint's latest normalised wall-clock regresses."""
        script = os.path.join(REPO_ROOT, "benchmarks",
                              "check_regression.py")
        passing = subprocess.run(
            [sys.executable, script, "--only", "history"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert passing.returncode == 0, passing.stdout + passing.stderr
        committed = HistoryStore(os.path.join(
            REPO_ROOT, "benchmarks", "results", "history.jsonl")).load()
        slow_store = HistoryStore(str(tmp_path / "history.jsonl"))
        baseline = next(entry for entry in committed
                        if entry["wall_clock_s"] is not None
                        and entry["calibration_s"])
        regressed = json.loads(json.dumps(baseline))
        regressed["wall_clock_s"] *= 10
        slow_store.extend([baseline, regressed])
        failing = subprocess.run(
            [sys.executable, script, "--only", "history",
             "--results", str(tmp_path)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert failing.returncode == 1, failing.stdout + failing.stderr
        assert "FAIL: history" in failing.stdout


# ---------------------------------------------------------------------------
# CLI: run --history plus the history subcommand
# ---------------------------------------------------------------------------

class TestHistoryCli:
    def _run(self, tmp_path, *extra):
        argv = ["run", "-n", "5", "-m", "3", "--instance",
                str(tmp_path / "instance.json"),
                "--history", str(tmp_path / "history.jsonl")]
        argv.extend(extra)
        return cli_main(argv)

    @pytest.fixture()
    def store_path(self, tmp_path, problem53, capsys):
        (tmp_path / "instance.json").write_text(
            json.dumps([[int(v) for v in row]
                        for row in problem53.times]))
        assert self._run(tmp_path, "--seed", "3") == 0
        assert self._run(tmp_path, "--seed", "3", "--parallel",
                         "--workers", "2") == 0
        assert self._run(tmp_path, "--seed", "4") == 0
        capsys.readouterr()
        return str(tmp_path / "history.jsonl")

    def test_run_appends_entries(self, store_path):
        entries = HistoryStore(store_path).load()
        assert len(entries) == 3
        assert entries[0]["config"]["seed"] == 3
        assert entries[1]["config"]["workers"] == 2
        assert entries[2]["config"]["seed"] == 4
        assert all(entry["source"] == "run_report" for entry in entries)
        assert all(entry["provenance"]["package_version"]
                   for entry in entries)

    def test_list_and_show(self, store_path, capsys):
        assert cli_main(["history", "list", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "seed=4" in out
        assert cli_main(["history", "show", "2",
                         "--store", store_path]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["type"] == "dmw_history_entry"
        assert shown["config"]["workers"] == 2

    def test_diff_same_seed_clean_exit_0(self, store_path, capsys):
        assert cli_main(["history", "diff", "1", "2",
                         "--store", store_path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_diff_different_seed_exit_1(self, store_path, capsys):
        assert cli_main(["history", "diff", "1", "3",
                         "--store", store_path]) == 1
        assert "DIVERGENT" in capsys.readouterr().out

    def test_trend_reports_no_anomalies(self, store_path, capsys):
        assert cli_main(["history", "trend", "--store", store_path]) == 0
        assert "0 anomaly flag(s)" in capsys.readouterr().out

    def test_ingest_bench_subcommand(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_fastexp.json").write_text(json.dumps(
            [{"bench": "fastexp", "params": {"primitive": "pow"},
              "wall_clock_s": 0.01}]))
        store = str(tmp_path / "history.jsonl")
        assert cli_main(["history", "ingest-bench", str(results),
                         "--store", store]) == 0
        assert len(HistoryStore(store).load()) == 1
        assert cli_main(["history", "ingest-bench",
                         str(tmp_path / "empty"),
                         "--store", store]) == 1
