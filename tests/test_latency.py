"""Tests for repro.network.latency (rounds -> wall-clock timelines)."""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.network.latency import (
    LatencyModel,
    Timeline,
    estimate_protocol_latency,
    timeline_for_rounds,
)
from repro.network.message import BROADCAST, Message
from repro.network.simulator import SynchronousNetwork
from repro.scheduling.problem import SchedulingProblem


class TestLatencyModel:
    def test_sample_within_bounds(self, rng):
        model = LatencyModel(rng, base=0.01, jitter=0.02)
        for _ in range(100):
            delay = model.sample(0, 1)
            assert 0.01 <= delay <= 0.03

    def test_per_link_scaling(self, rng):
        model = LatencyModel(rng, base=0.01, jitter=0.0,
                             per_link_scale={(0, 1): 10.0})
        assert model.sample(0, 1) == pytest.approx(0.1)
        assert model.sample(1, 0) == pytest.approx(0.01)

    def test_negative_delays_rejected(self, rng):
        with pytest.raises(ValueError):
            LatencyModel(rng, base=-1)
        with pytest.raises(ValueError):
            LatencyModel(rng, jitter=-1)


class TestTimeline:
    def make_messages(self):
        return [
            Message(0, 1, "a", None, round_sent=0),
            Message(1, 0, "b", None, round_sent=0),
            Message(0, 2, "c", None, round_sent=1),
        ]

    def test_round_duration_is_slowest_message(self, rng):
        model = LatencyModel(rng, base=0.01, jitter=0.0,
                             per_link_scale={(1, 0): 5.0})
        timeline = timeline_for_rounds(self.make_messages(), 2, model, 3)
        assert timeline.round_durations[0] == pytest.approx(0.05)
        assert timeline.round_durations[1] == pytest.approx(0.01)
        assert timeline.total_seconds == pytest.approx(0.06)
        assert timeline.slowest_round == 0

    def test_broadcast_expansion(self, rng):
        model = LatencyModel(rng, base=0.01, jitter=0.0,
                             per_link_scale={(0, 2): 7.0})
        messages = [Message(0, BROADCAST, "x", None, round_sent=0)]
        timeline = timeline_for_rounds(messages, 1, model, 3)
        # Slowest copy is the scaled 0 -> 2 link.
        assert timeline.round_durations[0] == pytest.approx(0.07)

    def test_out_of_range_rounds_ignored(self, rng):
        model = LatencyModel(rng, base=0.01, jitter=0.0)
        messages = [Message(0, 1, "a", None, round_sent=99)]
        timeline = timeline_for_rounds(messages, 2, model, 2)
        assert timeline.total_seconds == 0.0

    def test_empty_round_duration(self, rng):
        model = LatencyModel(rng)
        timeline = timeline_for_rounds([], 3, model, 2,
                                       empty_round_duration=0.5)
        assert timeline.total_seconds == pytest.approx(1.5)


class TestProtocolLatency:
    def run_dmw_recorded(self, params5, problem):
        master = random.Random(0)
        agents = [
            DMWAgent(i, params5,
                     [int(problem.time(i, j))
                      for j in range(problem.num_tasks)],
                     rng=random.Random(master.getrandbits(64)))
            for i in range(5)
        ]
        protocol = DMWProtocol(params5, agents, record_deliveries=True)
        outcome = protocol.execute(problem.num_tasks)
        assert outcome.completed
        return protocol, outcome

    def test_dmw_latency_has_one_duration_per_round(self, params5,
                                                    problem53):
        protocol, outcome = self.run_dmw_recorded(params5, problem53)
        model = LatencyModel(random.Random(1), base=0.01, jitter=0.01)
        timeline = estimate_protocol_latency(protocol.network, model)
        assert len(timeline.round_durations) == \
            outcome.network_metrics.rounds
        assert all(d > 0 for d in timeline.round_durations)

    def test_dmw_latency_dominates_centralized(self, params5, problem53):
        """DMW pays 4m + 1 barriers vs the centralized mechanism's 2."""
        protocol, outcome = self.run_dmw_recorded(params5, problem53)
        model = LatencyModel(random.Random(1), base=0.01, jitter=0.0)
        dmw_timeline = estimate_protocol_latency(protocol.network, model)
        # Centralized: bids in (1 round), outcome out (1 round).
        network = SynchronousNetwork(5, extra_participants=1,
                                     record_deliveries=True)
        for agent in range(5):
            network.send(agent, 5, "bid", None)
        network.deliver()
        for agent in range(5):
            network.send(5, agent, "outcome", None)
        network.deliver()
        centralized = estimate_protocol_latency(network, model)
        ratio = dmw_timeline.total_seconds / centralized.total_seconds
        # 13 rounds vs 2 at equal per-round cost.
        assert ratio == pytest.approx(13 / 2, rel=0.01)

    def test_slow_link_dominates_timeline(self, params5, problem53):
        protocol, _ = self.run_dmw_recorded(params5, problem53)
        slow = {(0, k): 100.0 for k in range(1, 6)}
        model = LatencyModel(random.Random(1), base=0.01, jitter=0.0,
                             per_link_scale=slow)
        timeline = estimate_protocol_latency(protocol.network, model)
        # Agent 0 transmits in most rounds; the slow link dominates.
        assert max(timeline.round_durations) == pytest.approx(1.0)

    def test_fallback_to_bulletin_board(self, params5, problem53):
        """Without delivery recording the estimate still covers every
        round that carried published traffic."""
        master = random.Random(0)
        agents = [
            DMWAgent(i, params5,
                     [int(problem53.time(i, j)) for j in range(3)],
                     rng=random.Random(master.getrandbits(64)))
            for i in range(5)
        ]
        protocol = DMWProtocol(params5, agents)
        outcome = protocol.execute(3)
        model = LatencyModel(random.Random(1), base=0.01, jitter=0.0)
        timeline = estimate_protocol_latency(protocol.network, model)
        assert len(timeline.round_durations) == \
            outcome.network_metrics.rounds
        assert timeline.total_seconds > 0
