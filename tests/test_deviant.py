"""Faithfulness tests: every deviation family vs the suggested strategy.

These are the executable versions of Theorems 4, 5 and 9: for every
deviation in :mod:`repro.core.deviant`, the deviator's utility never
exceeds its honest utility, and honest bystanders never end up negative.
"""

import random

import pytest

from repro.analysis.faithfulness import (
    check_dmw_truthfulness_exhaustive,
    evaluate_deviation,
    faithfulness_violations,
    honest_factory,
    participation_violations,
    run_deviation_matrix,
    run_with_agents,
)
from repro.core.deviant import (
    EagerDisclosureAgent,
    MisreportBidAgent,
    WithholdAggregatesAgent,
    WrongAggregatesAgent,
    standard_deviations,
)
from repro.core.parameters import DMWParameters
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture()
def instance(params5):
    problem = SchedulingProblem([
        [2, 1],
        [1, 3],
        [3, 2],
        [2, 2],
        [3, 3],
    ])
    return problem, params5


class TestDeviationMatrix:
    def test_no_deviation_profits(self, instance):
        problem, params = instance
        outcomes = run_deviation_matrix(problem, params,
                                        deviant_indices=[0, 1, 4])
        assert faithfulness_violations(outcomes) == []

    def test_no_bystander_loses(self, instance):
        problem, params = instance
        outcomes = run_deviation_matrix(problem, params,
                                        deviant_indices=[0, 1, 4])
        assert participation_violations(outcomes) == []

    def test_all_strategies_exercised(self, instance):
        problem, params = instance
        outcomes = run_deviation_matrix(problem, params,
                                        deviant_indices=[0])
        strategies = {outcome.strategy for outcome in outcomes}
        assert strategies == set(standard_deviations())


class TestDetectionSemantics:
    """Each deviation lands in the abort phase the proof of Theorem 4
    names (or completes harmlessly where the proof says it must)."""

    @pytest.mark.parametrize("strategy,expected_phase", [
        ("corrupt_shares", "allocating"),
        ("corrupt_commitments", "allocating"),
        ("withhold_shares", "bidding"),
        ("withhold_commitments", "bidding"),
        ("inflated_payment_claim", "payments"),
        ("withhold_payment_claim", "payments"),
    ])
    def test_fatal_deviations_abort_in_phase(self, instance, strategy,
                                             expected_phase):
        problem, params = instance
        factory = standard_deviations()[strategy]
        outcome = evaluate_deviation(problem, params, strategy, factory,
                                     deviant_index=0)
        assert not outcome.completed
        assert outcome.abort_phase == expected_phase
        assert outcome.deviant_utility == 0.0

    @pytest.mark.parametrize("strategy", [
        "false_disclosure",
        "withhold_disclosure",
        "eager_disclosure",
        "misreport_bid",
    ])
    def test_tolerated_deviations_complete(self, instance, strategy):
        problem, params = instance
        factory = standard_deviations()[strategy]
        outcome = evaluate_deviation(problem, params, strategy, factory,
                                     deviant_index=0)
        assert outcome.completed
        assert outcome.gain <= 1e-9

    def test_eager_disclosure_utility_unchanged(self, instance):
        """'If A_i transmits its share when not needed, it receives the
        same amount of utility as if it had not' (Theorem 4 proof)."""
        problem, params = instance

        def factory(index, parameters, true_values, rng):
            return EagerDisclosureAgent(index, parameters, true_values,
                                        rng=rng)

        outcome = evaluate_deviation(problem, params, "eager", factory,
                                     deviant_index=4)
        assert outcome.completed
        assert outcome.gain == 0.0


class TestAggregateWithholding:
    """The tau* < n vs tau* = n dichotomy in the Theorem 4 proof."""

    def test_withholding_fatal_when_all_points_needed(self, params5):
        # Minimum bid 1 -> degree sigma-1 = 4 -> needs all 5 Lambda values.
        problem = SchedulingProblem([[1], [2], [3], [2], [3]])

        def factory(index, parameters, true_values, rng):
            return WithholdAggregatesAgent(index, parameters, true_values,
                                           rng=rng)

        outcome = evaluate_deviation(problem, params5, "withhold", factory,
                                     deviant_index=2)
        assert not outcome.completed

    def test_withholding_harmless_when_slack_exists(self, params5):
        # Minimum bid 3 -> degree 2 -> needs only 3 of 5 values.
        problem = SchedulingProblem([[3], [3], [3], [3], [3]])

        def factory(index, parameters, true_values, rng):
            return WithholdAggregatesAgent(index, parameters, true_values,
                                           rng=rng)

        outcome = evaluate_deviation(problem, params5, "withhold", factory,
                                     deviant_index=4)
        assert outcome.completed
        assert outcome.gain == 0.0

    def test_wrong_aggregates_equivalent_to_withholding(self, params5):
        problem = SchedulingProblem([[3], [3], [3], [3], [3]])

        def factory(index, parameters, true_values, rng):
            return WrongAggregatesAgent(index, parameters, true_values,
                                        rng=rng)

        outcome = evaluate_deviation(problem, params5, "wrong", factory,
                                     deviant_index=4)
        assert outcome.completed  # invalid value excluded, slack absorbs it


class TestExhaustiveMisreporting:
    def test_no_bid_vector_beats_truth(self, params5):
        problem = SchedulingProblem([
            [2, 1], [1, 3], [3, 2], [2, 2], [3, 3],
        ])
        for agent in (0, 1):
            assert check_dmw_truthfulness_exhaustive(problem, params5,
                                                     agent) == []

    def test_misreporting_can_strictly_lose(self, params5):
        """Underbidding wins unprofitable tasks: utility strictly drops."""
        problem = SchedulingProblem([
            [3, 3], [1, 1], [2, 2], [2, 2], [3, 3],
        ])

        def factory(index, parameters, true_values, rng):
            return MisreportBidAgent(index, parameters, true_values,
                                     [1, 1], rng=rng)

        outcome = evaluate_deviation(problem, params5, "underbid", factory,
                                     deviant_index=0)
        assert outcome.completed
        assert outcome.gain < 0  # won at second price 1, true cost 3


class TestRunWithAgents:
    def test_honest_factories_reproduce_run_dmw(self, instance):
        problem, params = instance
        outcome = run_with_agents(params, [honest_factory] * 5, problem)
        assert outcome.completed
        assert outcome.schedule.num_tasks == 2
