"""Integration tests: the full DMW protocol (experiment E9 and Fig. 2)."""

import random

import pytest

from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol, run_dmw
from repro.core.agent import DMWAgent
from repro.core.exceptions import ParameterError
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem


class TestEndToEnd:
    def test_completes_on_honest_run(self, problem53):
        outcome = run_dmw(problem53)
        assert outcome.completed
        assert outcome.abort is None
        assert outcome.schedule.num_tasks == 3
        assert len(outcome.transcripts) == 3

    def test_matches_minwork_allocation_and_payments(self, problem53):
        outcome = run_dmw(problem53)
        result = MinWork().run(truthful_bids(problem53))
        assert outcome.schedule == result.schedule
        assert list(outcome.payments) == list(result.payments)

    def test_equivalence_on_random_instances(self, group_small):
        rng = random.Random(21)
        for trial in range(8):
            n = rng.randrange(4, 7)
            m = rng.randrange(1, 4)
            params = DMWParameters.generate(n, fault_bound=1,
                                            group_parameters=group_small)
            problem = workloads.random_discrete(n, m, params.bid_values, rng)
            outcome = run_dmw(problem, parameters=params,
                              rng=random.Random(trial))
            result = MinWork().run(truthful_bids(problem))
            assert outcome.completed, outcome.abort
            assert outcome.schedule == result.schedule
            assert list(outcome.payments) == list(result.payments)

    def test_transcript_contents(self, problem53):
        outcome = run_dmw(problem53)
        for transcript in outcome.transcripts:
            column = [int(problem53.time(i, transcript.task))
                      for i in range(5)]
            assert transcript.first_price == min(column)
            assert column[transcript.winner] == min(column)
            others = [b for i, b in enumerate(column)
                      if i != transcript.winner]
            assert transcript.second_price == min(others)

    def test_utilities_nonnegative_for_truthful_agents(self, problem53):
        outcome = run_dmw(problem53)
        for agent in range(5):
            assert outcome.utility(agent, problem53) >= 0

    def test_reproducible_given_seed(self, problem53):
        a = run_dmw(problem53, rng=random.Random(5))
        b = run_dmw(problem53, rng=random.Random(5))
        assert a.schedule == b.schedule
        assert a.payments == b.payments
        assert a.network_metrics.point_to_point_messages == \
            b.network_metrics.point_to_point_messages


class TestMessageCensus:
    """The Fig. 2 sequence: kinds, counts, and ordering."""

    def test_expected_message_kinds(self, problem53):
        outcome = run_dmw(problem53)
        kinds = set(outcome.network_metrics.by_kind)
        assert kinds == {"commitments", "share_bundle", "lambda_psi",
                         "f_disclosure", "winner_claim", "second_price",
                         "payment_claim"}

    def test_share_bundle_count(self, problem53):
        # n agents each send n-1 private bundles per task.
        outcome = run_dmw(problem53)
        n, m = 5, 3
        assert outcome.network_metrics.by_kind["share_bundle"] == \
            m * n * (n - 1)

    def test_published_kind_counts(self, problem53):
        # Published kinds expand to (n_participants - 1) unicasts each;
        # the infrastructure endpoint listens too, so fan-out is n.
        outcome = run_dmw(problem53)
        n, m = 5, 3
        fan_out = n  # n - 1 agents + 1 infrastructure endpoint
        metrics = outcome.network_metrics
        assert metrics.by_kind["commitments"] == m * n * fan_out
        assert metrics.by_kind["lambda_psi"] == m * n * fan_out
        assert metrics.by_kind["second_price"] == m * n * fan_out

    def test_payment_claims_one_per_agent(self, problem53):
        outcome = run_dmw(problem53)
        assert outcome.network_metrics.by_kind["payment_claim"] == 5

    def test_rounds_per_task(self, problem53):
        # 4 delivery rounds per auction + 1 payments round.
        outcome = run_dmw(problem53)
        assert outcome.network_metrics.rounds == 4 * 3 + 1

    def test_communication_quadratic_in_agents(self, group_small):
        rng = random.Random(3)
        counts = []
        for n in (4, 8):
            params = DMWParameters.generate(n, fault_bound=1,
                                            group_parameters=group_small)
            problem = workloads.random_discrete(n, 1, params.bid_values, rng)
            outcome = run_dmw(problem, parameters=params)
            counts.append(outcome.network_metrics.point_to_point_messages)
        # Doubling n should roughly quadruple messages (Theorem 11).
        assert 3.0 < counts[1] / counts[0] < 5.0


class TestValidationAndEdges:
    def test_agent_count_checked(self, params5, problem53):
        agents = [DMWAgent(i, params5, [1]) for i in range(3)]
        with pytest.raises(ParameterError):
            DMWProtocol(params5, agents)

    def test_agent_order_checked(self, params5):
        agents = [DMWAgent(i, params5, [1]) for i in range(5)]
        agents[0], agents[1] = agents[1], agents[0]
        with pytest.raises(ParameterError):
            DMWProtocol(params5, agents)

    def test_non_bid_values_rejected(self):
        problem = SchedulingProblem([[7.0], [7.0], [7.0], [7.0]])
        with pytest.raises(Exception):
            run_dmw(problem)

    def test_single_task(self, params4):
        problem = SchedulingProblem([[1], [2], [2], [1]])
        outcome = run_dmw(problem, parameters=params4)
        assert outcome.completed
        assert outcome.schedule.agent_of(0) == 0
        assert outcome.payments[0] == 1  # tie: second price equals first

    def test_all_identical_bids(self, params4):
        problem = SchedulingProblem([[2, 2], [2, 2], [2, 2], [2, 2]])
        outcome = run_dmw(problem, parameters=params4)
        assert outcome.completed
        assert outcome.schedule.assignment == (0, 0)
        assert outcome.payments == (4.0, 0.0, 0.0, 0.0)

    def test_agent_operations_recorded(self, problem53):
        outcome = run_dmw(problem53)
        assert len(outcome.agent_operations) == 5
        assert all(ops["multiplication_work"] > 0
                   for ops in outcome.agent_operations)
        assert outcome.max_agent_work >= \
            outcome.agent_operations[0]["multiplication_work"]
