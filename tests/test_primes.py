"""Unit tests for repro.crypto.primes."""

import random

import pytest

from repro.crypto.primes import (
    find_subgroup_generator,
    generate_schnorr_parameters,
    is_prime,
    next_prime,
    random_prime,
)

SMALL_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}


class TestIsPrime:
    def test_small_range_matches_sieve(self):
        for n in range(50):
            assert is_prime(n) == (n in SMALL_PRIMES), n

    def test_negative_and_degenerate(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_known_large_prime(self):
        assert is_prime(2 ** 61 - 1)  # Mersenne prime

    def test_known_large_composite(self):
        assert not is_prime(2 ** 61 + 1)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    def test_square_of_prime_rejected(self):
        p = 1_000_003
        assert is_prime(p)
        assert not is_prime(p * p)

    def test_probabilistic_range(self):
        # Above the deterministic bound: a prime with > 82 bits.
        p = 2 ** 89 - 1  # Mersenne prime
        assert is_prime(p, rng=random.Random(1))
        assert not is_prime(p + 2, rng=random.Random(1))


class TestNextPrime:
    def test_from_composite(self):
        assert next_prime(8) == 11
        assert next_prime(9) == 11

    def test_from_prime_is_strictly_greater(self):
        assert next_prime(7) == 11

    def test_from_small_values(self):
        assert next_prime(0) == 2
        assert next_prime(1) == 2
        assert next_prime(2) == 3


class TestRandomPrime:
    def test_bit_length_exact(self, rng):
        for bits in (8, 16, 32, 48):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_deterministic_given_seed(self):
        a = random_prime(32, random.Random(42))
        b = random_prime(32, random.Random(42))
        assert a == b

    def test_rejects_tiny_bits(self, rng):
        with pytest.raises(ValueError):
            random_prime(1, rng)


class TestSchnorrParameters:
    def test_structure(self, rng):
        p, q = generate_schnorr_parameters(24, 40, rng)
        assert is_prime(p)
        assert is_prime(q)
        assert (p - 1) % q == 0
        assert q.bit_length() == 24
        assert p.bit_length() == 40

    def test_rejects_impossible_sizes(self, rng):
        with pytest.raises(ValueError):
            generate_schnorr_parameters(24, 25, rng)

    def test_generator_has_order_q(self, rng):
        p, q = generate_schnorr_parameters(24, 40, rng)
        g = find_subgroup_generator(p, q, rng)
        assert g != 1
        assert pow(g, q, p) == 1

    def test_generator_exclusion(self, rng):
        p, q = generate_schnorr_parameters(16, 32, rng)
        g1 = find_subgroup_generator(p, q, rng)
        g2 = find_subgroup_generator(p, q, rng, exclude=(g1,))
        assert g1 != g2

    def test_generator_rejects_bad_group(self, rng):
        with pytest.raises(ValueError):
            find_subgroup_generator(23, 7, rng)  # 7 does not divide 22
