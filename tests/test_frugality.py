"""Tests for repro.analysis.frugality."""

import pytest

from repro.analysis.frugality import (
    FrugalityReport,
    frugality_by_competition,
    frugality_of,
)
from repro.scheduling.problem import SchedulingProblem


class TestFrugalityOf:
    def test_exact_accounting(self):
        problem = SchedulingProblem([
            [1, 5],
            [3, 2],
            [4, 7],
        ])
        report = frugality_of(problem)
        # Winning bids: 1 and 2; payments: 3 and 5.
        assert report.total_cost == 3
        assert report.total_payment == 8
        assert report.per_task_margins == (2, 3)
        assert report.frugality_ratio == pytest.approx(8 / 3)
        assert report.overpayment == 5

    def test_perfect_competition_no_overpayment(self):
        problem = SchedulingProblem([
            [2, 3],
            [2, 3],
            [9, 9],
        ])
        report = frugality_of(problem)
        assert report.frugality_ratio == pytest.approx(1.0)
        assert report.per_task_margins == (0, 0)

    def test_zero_cost_guarded(self):
        report = FrugalityReport(total_cost=0.0, total_payment=0.0,
                                 per_task_margins=())
        with pytest.raises(ValueError):
            report.frugality_ratio


class TestCompetitionSweep:
    def test_families_ranked_by_competition(self):
        rows = dict(frugality_by_competition(trials=6, seed=3))
        # Clustered bids overpay less than dispersed ones.
        assert rows["task_correlated"] < rows["uniform"]
        assert all(ratio >= 1.0 - 1e-9 for ratio in rows.values())

    def test_rows_cover_families(self):
        names = [name for name, _ in frugality_by_competition(trials=2)]
        assert names == ["task_correlated", "uniform", "bimodal"]
