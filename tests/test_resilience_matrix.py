"""Fault-matrix coverage: overlapping substrate faults in one run.

Satellite (c) of the resilience ISSUE: a crashed sender, a late link,
and an in-flight corruptor active in the *same* execution (their fault
windows overlap from round 0), driven both sequentially and in
parallel, in strict and degraded mode.  Every cell of the matrix must
land on the safety dichotomy — a correct outcome (modulo explicitly
quarantined tasks) or an abort with zero utilities — and the retry /
recovery counters must agree exactly between the network and the
outcome's metrics.
"""

import random

import pytest

from repro.core.agent import DMWAgent
from repro.core.bidding import ShareBundle
from repro.core.protocol import DMWProtocol
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.network.asynchronous import RetryPolicy, TimeoutNetwork
from repro.network.faults import FaultPlan
from repro.network.latency import LatencyModel
from repro.network.message import Message
from repro.scheduling.problem import SchedulingProblem

SLOW_LINK = (3, 0)


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [2, 1],
        [1, 3],
        [3, 2],
        [2, 2],
        [3, 3],
    ])


def make_agents(params, problem, seed=0):
    master = random.Random(seed)
    return [
        DMWAgent(i, params,
                 [int(problem.time(i, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for i in range(5)
    ]


def corrupt_share(params):
    """In-flight corruption of every share bundle on link (1, 4)."""
    q = params.group.q

    def corrupt(message):
        if message.kind != "share_bundle":
            return message
        task, bundle = message.payload
        bad = ShareBundle((bundle.e_value + 1) % q, bundle.f_value,
                          bundle.g_value, bundle.h_value)
        return Message(sender=message.sender, recipient=message.recipient,
                       kind=message.kind, payload=(task, bad),
                       field_elements=message.field_elements)

    return corrupt


def matrix_plan(params, crash_round):
    """Crashed sender + corruptor, overlapping from ``crash_round``."""
    return FaultPlan(crashed_from_round={4: crash_round},
                     corruptors={(1, 4): corrupt_share(params)})


def matrix_network(params, crash_round, seed):
    """A timeout network carrying all three fault kinds at once: the
    fault plan's crash + corruption, and a transiently slow link that
    only a retransmission can save."""
    model = LatencyModel(random.Random(seed), base=0.001, jitter=0.0,
                         per_link_scale={SLOW_LINK: 150.0})
    return TimeoutNetwork(5, model, round_timeout=0.1,
                          fault_plan=matrix_plan(params, crash_round),
                          extra_participants=1,
                          retry_policy=RetryPolicy(max_attempts=2))


def assert_exact_counters(network, outcome):
    """Network-side tallies and outcome metrics must agree exactly."""
    metrics = outcome.network_metrics
    assert metrics.retransmissions == network.retries
    assert metrics.recovered_messages == network.recovered
    assert network.recovered <= network.retries
    # The slow link is deterministic at 0.15s — always inside the first
    # grace window of 0.2s, so every retried copy is recovered.
    assert network.recovered == network.retries
    assert network.late_messages == 0


class TestFaultMatrix:
    @pytest.mark.parametrize("parallel", [False, True],
                             ids=["sequential", "parallel"])
    @pytest.mark.parametrize("crash_round", [0, 4, 50])
    def test_strict_mode_dichotomy(self, params5, problem, parallel,
                                   crash_round):
        expected = MinWork().run(truthful_bids(problem))
        network = matrix_network(params5, crash_round, seed=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, parallel=parallel)
        if outcome.completed:
            assert outcome.schedule == expected.schedule
            assert list(outcome.payments) == list(expected.payments)
        else:
            assert outcome.abort is not None
            assert outcome.schedule is None
            assert all(outcome.utility(i, problem) == 0 for i in range(5))
        assert_exact_counters(network, outcome)

    @pytest.mark.parametrize("parallel", [False, True],
                             ids=["sequential", "parallel"])
    @pytest.mark.parametrize("crash_round", [0, 4, 50])
    def test_degraded_mode_dichotomy(self, params5, problem, parallel,
                                     crash_round):
        expected = MinWork().run(truthful_bids(problem))
        reference = {t: (expected.schedule.assignment[t],
                         expected.payments)
                     for t in range(problem.num_tasks)}
        network = matrix_network(params5, crash_round, seed=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, parallel=parallel,
                                   degraded=True)
        if outcome.completed:
            assert outcome.degraded
            for task in range(problem.num_tasks):
                slot = outcome.schedule.assignment[task]
                if task in outcome.task_aborts:
                    assert slot is None
                else:
                    assert slot == reference[task][0]
        else:
            # Degradation only shields per-task faults; run-level
            # conflicts (e.g. an escrow dispute) still void the run.
            assert outcome.abort is not None
            assert all(outcome.utility(i, problem) == 0 for i in range(5))
        assert_exact_counters(network, outcome)

    def test_matrix_exercises_both_branches(self, params5, problem):
        """Sanity: across the crash rounds, at least one run aborts and
        at least one completes — the matrix is not vacuous."""
        completed, aborted = set(), set()
        for crash_round in (0, 4, 50):
            network = matrix_network(params5, crash_round, seed=1)
            protocol = DMWProtocol(params5, make_agents(params5, problem),
                                   network=network)
            outcome = protocol.execute(problem.num_tasks, parallel=False,
                                       degraded=True)
            (completed if outcome.completed else aborted).add(crash_round)
        assert completed
        # An early crash must never yield a full schedule: either the
        # run aborts or every task the crash touched is quarantined.
        if 0 in completed:
            network = matrix_network(params5, 0, seed=1)
            protocol = DMWProtocol(params5, make_agents(params5, problem),
                                   network=network)
            outcome = protocol.execute(problem.num_tasks, parallel=False,
                                       degraded=True)
            assert outcome.quarantined_tasks != ()

    def test_seed_sweep_keeps_dichotomy(self, params5, problem):
        expected = MinWork().run(truthful_bids(problem))
        for seed in range(4):
            network = matrix_network(params5, 6, seed=seed)
            protocol = DMWProtocol(params5,
                                   make_agents(params5, problem, seed=seed),
                                   network=network)
            outcome = protocol.execute(problem.num_tasks)
            if outcome.completed:
                assert outcome.schedule == expected.schedule
            else:
                assert all(outcome.utility(i, problem) == 0
                           for i in range(5))
            assert_exact_counters(network, outcome)
