"""Checkpoint/resume: serialize protocol state at auction boundaries.

The acceptance criterion (ISSUE tentpole 3): an execution interrupted
after auction ``k`` and resumed from its checkpoint in a *fresh* process
produces an outcome identical to the uninterrupted run — schedule,
payments, transcripts, per-agent operation counters, network metrics,
and (format version 4) ``cache_stats`` all match exactly.  Process-pool
checkpointing is covered by ``tests/test_process_pool.py``.
"""

import json
import os
import random

import pytest

from repro import serialization
from repro.core import (
    DMWAgent,
    DMWProtocol,
    ProtocolCheckpoint,
)
from repro.core.checkpoint import decode_rng_state, encode_rng_state
from repro.core.exceptions import ParameterError
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [1, 2, 3],
        [2, 1, 3],
        [3, 2, 1],
        [1, 3, 2],
        [2, 2, 2],
    ])


def make_agents(params, problem, seed=7):
    master = random.Random(seed)
    return [
        DMWAgent(i, params,
                 [int(problem.time(i, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for i in range(5)
    ]


@pytest.fixture()
def baseline(params5, problem):
    protocol = DMWProtocol(params5, make_agents(params5, problem))
    return protocol.execute(problem.num_tasks)


def checkpoint_after(params, problem, completed_tasks, path):
    """Run auctions 0..completed_tasks-1 and checkpoint (a simulated
    crash right after the boundary)."""
    protocol = DMWProtocol(params, make_agents(params, problem))
    for task in range(completed_tasks):
        assert protocol._run_auction(task) is None
    checkpoint = ProtocolCheckpoint.capture(protocol, problem.num_tasks,
                                            completed_tasks)
    serialization.save_checkpoint(checkpoint, path)
    return checkpoint


class TestRngStateCodec:
    def test_round_trip_preserves_the_stream(self):
        rng = random.Random(12345)
        rng.random()  # advance past the seed state
        encoded = encode_rng_state(rng.getstate())
        expected = [rng.random() for _ in range(5)]
        fresh = random.Random()
        fresh.setstate(decode_rng_state(encoded))
        assert [fresh.random() for _ in range(5)] == expected

    def test_encoded_state_is_json_serializable(self):
        encoded = encode_rng_state(random.Random(1).getstate())
        assert json.loads(json.dumps(encoded)) == encoded


class TestCheckpointDocument:
    def test_round_trip_through_json(self, params5, problem, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint = checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        assert loaded.num_tasks == checkpoint.num_tasks
        assert loaded.next_task == 1
        assert loaded.degraded == checkpoint.degraded
        assert loaded.num_agents == 5
        assert loaded.agent_rng_states == checkpoint.agent_rng_states
        assert loaded.agent_operations == checkpoint.agent_operations
        assert loaded.network_metrics == checkpoint.network_metrics
        assert loaded.completed_tasks == checkpoint.completed_tasks
        assert loaded.completed_set() == {0}

    def test_version3_document_implies_prefix_frontier(self, params5,
                                                       problem, tmp_path):
        """Pre-frontier documents fall back to the ``next_task`` prefix."""
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 2, path)
        with open(path) as handle:
            document = json.load(handle)
        document["version"] = 3
        document.pop("completed_tasks")
        document.pop("cache_state")
        loaded = serialization.checkpoint_from_dict(document)
        assert loaded.completed_tasks is None
        assert loaded.completed_set() == {0, 1}

    def test_document_is_versioned(self, params5, problem, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["type"] == "dmw_checkpoint"
        assert document["version"] == serialization.FORMAT_VERSION
        assert document["version"] >= 3

    def test_checkpoint_write_is_atomic(self, params5, problem, tmp_path):
        """No stray temp file is left next to the checkpoint."""
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        assert sorted(os.listdir(tmp_path)) == ["cp.json"]


class TestResume:
    def test_checkpointing_run_matches_plain_run(self, params5, problem,
                                                 baseline, tmp_path):
        path = str(tmp_path / "cp.json")
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        outcome = protocol.execute(problem.num_tasks, checkpoint_path=path)
        assert outcome.schedule.assignment == baseline.schedule.assignment
        assert list(outcome.payments) == list(baseline.payments)
        assert outcome.agent_operations == baseline.agent_operations
        assert outcome.network_metrics.as_dict() == \
            baseline.network_metrics.as_dict()
        assert os.path.exists(path)

    @pytest.mark.parametrize("boundary", [1, 2])
    def test_resumed_run_is_identical_to_uninterrupted(
            self, params5, problem, baseline, tmp_path, boundary):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, boundary, path)
        loaded = serialization.load_checkpoint(path)
        fresh = DMWProtocol(params5, make_agents(params5, problem))
        outcome = fresh.execute(problem.num_tasks, resume=loaded)
        assert outcome.completed
        assert outcome.schedule.assignment == baseline.schedule.assignment
        assert list(outcome.payments) == list(baseline.payments)
        assert outcome.transcripts == baseline.transcripts
        assert outcome.agent_operations == baseline.agent_operations
        assert outcome.network_metrics.as_dict() == \
            baseline.network_metrics.as_dict()

    def test_resume_at_final_boundary_runs_zero_auctions(
            self, params5, problem, baseline, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, problem.num_tasks, path)
        loaded = serialization.load_checkpoint(path)
        fresh = DMWProtocol(params5, make_agents(params5, problem))
        outcome = fresh.execute(problem.num_tasks, resume=loaded)
        assert outcome.completed
        assert outcome.transcripts == baseline.transcripts
        assert list(outcome.payments) == list(baseline.payments)

    @pytest.mark.parametrize("boundary", [1, 2])
    def test_resume_restores_cache_stats_exactly(self, params5, problem,
                                                 baseline, tmp_path,
                                                 boundary):
        """The v4 fix: resumed ``cache_stats`` equal the uninterrupted
        run's — counters *and* entry counts — because the checkpoint
        carries the full public-value cache snapshot."""
        path = str(tmp_path / "cp.json")
        crash = DMWProtocol(params5, make_agents(params5, problem))
        original = crash._run_auction
        completed = []

        def interrupted(task):
            if len(completed) == boundary:
                raise RuntimeError("simulated crash")
            completed.append(task)
            return original(task)

        crash._run_auction = interrupted
        with pytest.raises(RuntimeError):
            crash.execute(problem.num_tasks, checkpoint_path=path)
        loaded = serialization.load_checkpoint(path)
        assert loaded.completed_set() == set(range(boundary))
        assert loaded.cache_state["stats"]
        fresh = DMWProtocol(params5, make_agents(params5, problem))
        outcome = fresh.execute(problem.num_tasks, resume=loaded)
        assert outcome.completed
        assert outcome.transcripts == baseline.transcripts
        assert outcome.cache_stats == baseline.cache_stats


class TestResumeValidation:
    def test_workers_without_parallel_is_rejected(self, params5, problem):
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks, workers=2)

    def test_nonpositive_workers_is_rejected(self, params5, problem):
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks, parallel=True, workers=0)

    def test_parallel_with_checkpoint_uses_the_pool(self, params5, problem,
                                                    baseline, tmp_path):
        """Previously rejected; now routed through the process pool."""
        path = str(tmp_path / "cp.json")
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        outcome = protocol.execute(problem.num_tasks, parallel=True,
                                   workers=1, checkpoint_path=path)
        assert outcome.completed
        assert outcome.parallelism["workers"] == 1
        assert outcome.transcripts == baseline.transcripts
        loaded = serialization.load_checkpoint(path)
        assert loaded.completed_set() == set(range(problem.num_tasks))

    def test_num_tasks_mismatch_is_rejected(self, params5, problem,
                                            tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks + 1, resume=loaded)

    def test_degraded_mismatch_is_rejected(self, params5, problem,
                                           tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks, degraded=True, resume=loaded)

    def test_agent_count_mismatch_is_rejected(self, params4, params5,
                                              problem, problem42, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        master = random.Random(7)
        agents = [
            DMWAgent(i, params4,
                     [int(problem42.time(i, j)) for j in range(2)],
                     rng=random.Random(master.getrandbits(64)))
            for i in range(4)
        ]
        protocol = DMWProtocol(params4, agents)
        with pytest.raises(ParameterError):
            loaded.apply(protocol)
