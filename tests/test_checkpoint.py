"""Checkpoint/resume: serialize protocol state at auction boundaries.

The acceptance criterion (ISSUE tentpole 3): an execution interrupted
after auction ``k`` and resumed from its checkpoint in a *fresh* process
produces an outcome identical to the uninterrupted run — schedule,
payments, transcripts, per-agent operation counters, and network
metrics all match exactly.
"""

import json
import os
import random

import pytest

from repro import serialization
from repro.core import (
    DMWAgent,
    DMWProtocol,
    ProtocolCheckpoint,
)
from repro.core.checkpoint import decode_rng_state, encode_rng_state
from repro.core.exceptions import ParameterError
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [1, 2, 3],
        [2, 1, 3],
        [3, 2, 1],
        [1, 3, 2],
        [2, 2, 2],
    ])


def make_agents(params, problem, seed=7):
    master = random.Random(seed)
    return [
        DMWAgent(i, params,
                 [int(problem.time(i, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for i in range(5)
    ]


@pytest.fixture()
def baseline(params5, problem):
    protocol = DMWProtocol(params5, make_agents(params5, problem))
    return protocol.execute(problem.num_tasks)


def checkpoint_after(params, problem, completed_tasks, path):
    """Run auctions 0..completed_tasks-1 and checkpoint (a simulated
    crash right after the boundary)."""
    protocol = DMWProtocol(params, make_agents(params, problem))
    for task in range(completed_tasks):
        assert protocol._run_auction(task) is None
    checkpoint = ProtocolCheckpoint.capture(protocol, problem.num_tasks,
                                            completed_tasks)
    serialization.save_checkpoint(checkpoint, path)
    return checkpoint


class TestRngStateCodec:
    def test_round_trip_preserves_the_stream(self):
        rng = random.Random(12345)
        rng.random()  # advance past the seed state
        encoded = encode_rng_state(rng.getstate())
        expected = [rng.random() for _ in range(5)]
        fresh = random.Random()
        fresh.setstate(decode_rng_state(encoded))
        assert [fresh.random() for _ in range(5)] == expected

    def test_encoded_state_is_json_serializable(self):
        encoded = encode_rng_state(random.Random(1).getstate())
        assert json.loads(json.dumps(encoded)) == encoded


class TestCheckpointDocument:
    def test_round_trip_through_json(self, params5, problem, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint = checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        assert loaded.num_tasks == checkpoint.num_tasks
        assert loaded.next_task == 1
        assert loaded.degraded == checkpoint.degraded
        assert loaded.num_agents == 5
        assert loaded.agent_rng_states == checkpoint.agent_rng_states
        assert loaded.agent_operations == checkpoint.agent_operations
        assert loaded.network_metrics == checkpoint.network_metrics

    def test_document_is_versioned(self, params5, problem, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["type"] == "dmw_checkpoint"
        assert document["version"] == serialization.FORMAT_VERSION
        assert document["version"] >= 3

    def test_checkpoint_write_is_atomic(self, params5, problem, tmp_path):
        """No stray temp file is left next to the checkpoint."""
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        assert sorted(os.listdir(tmp_path)) == ["cp.json"]


class TestResume:
    def test_checkpointing_run_matches_plain_run(self, params5, problem,
                                                 baseline, tmp_path):
        path = str(tmp_path / "cp.json")
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        outcome = protocol.execute(problem.num_tasks, checkpoint_path=path)
        assert outcome.schedule.assignment == baseline.schedule.assignment
        assert list(outcome.payments) == list(baseline.payments)
        assert outcome.agent_operations == baseline.agent_operations
        assert outcome.network_metrics.as_dict() == \
            baseline.network_metrics.as_dict()
        assert os.path.exists(path)

    @pytest.mark.parametrize("boundary", [1, 2])
    def test_resumed_run_is_identical_to_uninterrupted(
            self, params5, problem, baseline, tmp_path, boundary):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, boundary, path)
        loaded = serialization.load_checkpoint(path)
        fresh = DMWProtocol(params5, make_agents(params5, problem))
        outcome = fresh.execute(problem.num_tasks, resume=loaded)
        assert outcome.completed
        assert outcome.schedule.assignment == baseline.schedule.assignment
        assert list(outcome.payments) == list(baseline.payments)
        assert outcome.transcripts == baseline.transcripts
        assert outcome.agent_operations == baseline.agent_operations
        assert outcome.network_metrics.as_dict() == \
            baseline.network_metrics.as_dict()

    def test_resume_at_final_boundary_runs_zero_auctions(
            self, params5, problem, baseline, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, problem.num_tasks, path)
        loaded = serialization.load_checkpoint(path)
        fresh = DMWProtocol(params5, make_agents(params5, problem))
        outcome = fresh.execute(problem.num_tasks, resume=loaded)
        assert outcome.completed
        assert outcome.transcripts == baseline.transcripts
        assert list(outcome.payments) == list(baseline.payments)


class TestResumeValidation:
    def test_parallel_with_checkpoint_is_rejected(self, params5, problem,
                                                  tmp_path):
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks, parallel=True,
                             checkpoint_path=str(tmp_path / "cp.json"))

    def test_parallel_with_resume_is_rejected(self, params5, problem,
                                              tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks, parallel=True, resume=loaded)

    def test_num_tasks_mismatch_is_rejected(self, params5, problem,
                                            tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks + 1, resume=loaded)

    def test_degraded_mismatch_is_rejected(self, params5, problem,
                                           tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        with pytest.raises(ParameterError):
            protocol.execute(problem.num_tasks, degraded=True, resume=loaded)

    def test_agent_count_mismatch_is_rejected(self, params4, params5,
                                              problem, problem42, tmp_path):
        path = str(tmp_path / "cp.json")
        checkpoint_after(params5, problem, 1, path)
        loaded = serialization.load_checkpoint(path)
        master = random.Random(7)
        agents = [
            DMWAgent(i, params4,
                     [int(problem42.time(i, j)) for j in range(2)],
                     rng=random.Random(master.getrandbits(64)))
            for i in range(4)
        ]
        protocol = DMWProtocol(params4, agents)
        with pytest.raises(ParameterError):
            loaded.apply(protocol)
