"""Unit tests for repro.mechanisms.vcg."""

import random

import pytest

from repro.mechanisms.minwork import MinWork
from repro.mechanisms.vcg import VCG, makespan_objective, total_work_objective
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem


class TestTotalWorkVCG:
    def test_allocation_matches_minwork(self):
        """VCG on total work IS MinWork — a strong cross-check."""
        rng = random.Random(4)
        for _ in range(5):
            problem = workloads.uniform_random(3, 3, rng)
            assert VCG().allocate(problem) == MinWork().allocate(problem)

    def test_payments_match_minwork(self):
        rng = random.Random(5)
        for _ in range(5):
            problem = workloads.uniform_random(3, 3, rng)
            vcg_payments = VCG().run(problem).payments
            minwork_payments = MinWork().run(problem).payments
            for a, b in zip(vcg_payments, minwork_payments):
                assert a == pytest.approx(b)

    def test_payments_with_ties(self):
        problem = SchedulingProblem([[2, 3], [2, 3], [5, 3]])
        vcg_payments = VCG().run(problem).payments
        minwork_payments = MinWork().run(problem).payments
        for a, b in zip(vcg_payments, minwork_payments):
            assert a == pytest.approx(b)

    def test_single_agent_rejected_for_payments(self):
        problem = SchedulingProblem([[1]])
        mechanism = VCG()
        schedule = mechanism.allocate(problem)
        with pytest.raises(ValueError):
            mechanism.payments(problem, schedule)


class TestMakespanVCG:
    def test_allocation_minimizes_makespan(self):
        problem = SchedulingProblem([
            [1, 1, 1],
            [1.5, 1.5, 1.5],
        ])
        schedule = VCG(objective=makespan_objective).allocate(problem)
        # Optimal makespan splits tasks; putting all on agent 0 gives 3.
        assert schedule.makespan(problem) < 3

    def test_total_work_objective_function(self):
        problem = SchedulingProblem([[1, 2], [3, 4]])
        from repro.scheduling.schedule import Schedule
        schedule = Schedule([0, 1], num_agents=2)
        assert total_work_objective(schedule, problem) == 5
        assert makespan_objective(schedule, problem) == 4
