"""Unit tests for repro.mechanisms.randomized (Nisan-Ronen 2-machine)."""

import random

import pytest

from repro.mechanisms.base import truthful_bids, unilateral_deviation
from repro.mechanisms.optimal import optimal_makespan_schedule
from repro.mechanisms.randomized import (
    RandomizedTwoMachines,
    biased_auction,
    expected_makespan,
)
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem


class TestBiasedAuction:
    def test_favored_wins_within_bias(self):
        winner, payment = biased_auction((4, 3.5), favored=0, beta=4 / 3)
        assert winner == 0
        assert payment == pytest.approx(4 / 3 * 3.5)

    def test_unfavored_wins_beyond_bias(self):
        winner, payment = biased_auction((5, 3), favored=0, beta=4 / 3)
        assert winner == 1
        assert payment == pytest.approx(5 / (4 / 3))

    def test_symmetric_favoring(self):
        winner, _ = biased_auction((5, 6), favored=1, beta=4 / 3)
        assert winner == 1

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            biased_auction((1, 2), favored=0, beta=0.5)

    def test_threshold_payment_covers_winner_bid(self):
        # The winner's payment is its threshold: always >= its bid.
        for bids in ((4, 3.5), (5, 3), (1, 9), (9, 1)):
            for favored in (0, 1):
                winner, payment = biased_auction(bids, favored, beta=4 / 3)
                assert payment >= bids[winner] - 1e-12


class TestMechanism:
    def test_requires_two_machines(self, rng):
        mechanism = RandomizedTwoMachines(rng=rng)
        with pytest.raises(ValueError):
            mechanism.allocate(SchedulingProblem([[1], [1], [1]]))

    def test_requires_randomness_source(self):
        with pytest.raises(ValueError):
            RandomizedTwoMachines()

    def test_explicit_coins_are_deterministic(self):
        problem = SchedulingProblem([[1, 4], [2, 2]])
        a = RandomizedTwoMachines(coins=[0, 1]).run(problem)
        b = RandomizedTwoMachines(coins=[0, 1]).run(problem)
        assert a.schedule == b.schedule
        assert a.payments == b.payments

    def test_coin_length_checked(self):
        problem = SchedulingProblem([[1, 4], [2, 2]])
        with pytest.raises(ValueError):
            RandomizedTwoMachines(coins=[0]).allocate(problem)

    def test_truthfulness_of_realized_mechanism(self, rng):
        """Each coin realization is a truthful mechanism (universally
        truthful): random unilateral misreports never help."""
        problem = workloads.uniform_random(2, 3, rng)
        truthful = truthful_bids(problem)
        for coins in ((0, 0, 0), (1, 0, 1), (1, 1, 1)):
            mechanism = RandomizedTwoMachines(coins=coins)
            baseline = mechanism.run(truthful)
            for agent in (0, 1):
                honest_utility = baseline.utility(agent, problem)
                for _ in range(40):
                    row = [rng.uniform(0.5, 150) for _ in range(3)]
                    deviated = mechanism.run(
                        unilateral_deviation(truthful, agent, row))
                    assert deviated.utility(agent, problem) <= \
                        honest_utility + 1e-9


class TestApproximation:
    def test_expected_makespan_within_seven_fourths(self, rng):
        """The 7/4 bound of [30], verified by exact coin enumeration."""
        for _ in range(6):
            problem = workloads.uniform_random(2, 4, rng)
            _, optimum = optimal_makespan_schedule(problem)
            expectation = expected_makespan(problem)
            assert expectation <= 1.75 * optimum + 1e-9

    def test_expected_makespan_needs_two_machines(self, rng):
        with pytest.raises(ValueError):
            expected_makespan(workloads.uniform_random(3, 2, rng))


class TestNMachineGeneralization:
    def make(self, coins=None, rng=None, beta=4 / 3):
        from repro.mechanisms.randomized import BiasedRandomNMachines
        return BiasedRandomNMachines(rng=rng, coins=coins, beta=beta)

    def test_requires_randomness(self):
        with pytest.raises(ValueError):
            self.make()

    def test_beta_validated(self, rng):
        with pytest.raises(ValueError):
            self.make(rng=rng, beta=0.9)

    def test_coin_values_validated(self):
        problem = SchedulingProblem([[1, 2], [2, 1]])
        with pytest.raises(ValueError):
            self.make(coins=[0, 5]).allocate(problem)
        with pytest.raises(ValueError):
            self.make(coins=[0]).allocate(problem)

    def test_needs_two_machines(self, rng):
        with pytest.raises(ValueError):
            self.make(rng=rng).allocate(SchedulingProblem([[1, 2]]))

    def test_beta_one_matches_minwork_without_ties(self, rng):
        """With beta = 1 every realization is the Vickrey auction."""
        from repro.mechanisms.minwork import MinWork
        for _ in range(5):
            problem = workloads.uniform_random(4, 3, rng)
            mechanism = self.make(coins=[0, 1, 2], beta=1.0)
            result = mechanism.run(problem)
            expected = MinWork().run(problem)
            assert result.schedule == expected.schedule
            for a, b in zip(result.payments, expected.payments):
                assert a == pytest.approx(b)

    def test_two_machine_case_matches_original(self, rng):
        problem = workloads.uniform_random(2, 4, rng)
        coins = [0, 1, 0, 1]
        general = self.make(coins=coins).run(problem)
        original = RandomizedTwoMachines(coins=coins).run(problem)
        assert general.schedule == original.schedule
        for a, b in zip(general.payments, original.payments):
            assert a == pytest.approx(b)

    def test_universal_truthfulness_sampled(self, rng):
        """Each coin realization is truthful under random misreports."""
        problem = workloads.uniform_random(4, 2, rng)
        truthful = truthful_bids(problem)
        for coins in ((0, 0), (1, 3), (2, 2)):
            mechanism = self.make(coins=coins)
            baseline = mechanism.run(truthful)
            for agent in range(4):
                honest_utility = baseline.utility(agent, problem)
                for _ in range(30):
                    row = [rng.uniform(0.5, 150) for _ in range(2)]
                    deviated = mechanism.run(
                        unilateral_deviation(truthful, agent, row))
                    assert deviated.utility(agent, problem) <= \
                        honest_utility + 1e-9

    def test_winner_payment_covers_cost(self, rng):
        problem = workloads.uniform_random(5, 3, rng)
        mechanism = self.make(rng=random.Random(3))
        result = mechanism.run(problem)
        for agent in range(5):
            tasks = result.schedule.tasks_of(agent)
            if tasks:
                cost = sum(problem.time(agent, t) for t in tasks)
                assert result.payments[agent] >= cost - 1e-9

    def test_makespan_within_n_of_optimal(self, rng):
        for _ in range(4):
            problem = workloads.uniform_random(3, 4, rng)
            mechanism = self.make(rng=random.Random(1))
            schedule = mechanism.allocate(problem)
            _, optimum = optimal_makespan_schedule(problem)
            assert schedule.makespan(problem) <= 3 * optimum + 1e-9
