"""Tests for the runtime secret-taint sanitizer (``repro.crypto.secret``).

The sanitizer is DMW004's runtime twin: under ``DMW_SANITIZE=1`` bids are
wrapped in :class:`Secret`, every rendering path raises
:class:`SecretLeakError`, and the only door out is :func:`declassify`,
which records an auditable event.  The end-to-end test runs the full
protocol in sanitized mode and checks the audit lists *exactly* the
paper-sanctioned reveals (y*, winner, y**, winner claims).
"""

import json

import pytest

from repro.core.protocol import run_dmw
from repro.crypto.secret import (
    SANITIZE_ENV_VAR,
    DeclassificationEvent,
    Secret,
    SecretLeakError,
    clear_declassification_audit,
    declassification_audit,
    declassify,
    local_value,
    sanitize_enabled,
    secret_json_default,
    tag_secret,
)


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
    clear_declassification_audit()
    yield
    clear_declassification_audit()


class TestModeGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        assert not sanitize_enabled()
        assert tag_secret(7, label="bid") == 7
        assert not isinstance(tag_secret(7), Secret)

    def test_enabled_wraps(self, sanitized):
        assert sanitize_enabled()
        wrapped = tag_secret(7, label="bid")
        assert isinstance(wrapped, Secret)

    def test_declassify_passthrough_when_disabled(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV_VAR, raising=False)
        clear_declassification_audit()
        assert declassify(9, reason="test") == 9
        assert declassification_audit() == ()


class TestLeakBarriers:
    def test_str_raises(self, sanitized):
        with pytest.raises(SecretLeakError):
            str(Secret(5, "bid"))

    def test_format_raises(self, sanitized):
        with pytest.raises(SecretLeakError):
            "{}".format(Secret(5, "bid"))

    def test_fstring_raises(self, sanitized):
        secret = Secret(5, "bid")
        with pytest.raises(SecretLeakError):
            f"{secret}"

    def test_percent_d_raises(self, sanitized):
        with pytest.raises(SecretLeakError):
            "%d" % Secret(5, "bid")

    def test_int_coercion_raises(self, sanitized):
        with pytest.raises(SecretLeakError):
            int(Secret(5, "bid"))

    def test_json_dumps_raises_leak_error(self, sanitized):
        with pytest.raises(SecretLeakError):
            json.dumps({"bid": Secret(5, "bid")},
                       default=secret_json_default)

    def test_json_default_still_rejects_other_types(self):
        with pytest.raises(TypeError):
            json.dumps({"x": object()}, default=secret_json_default)

    def test_repr_is_safe_and_redacted(self, sanitized):
        rendered = repr(Secret(5, "bid[agent=0]"))
        assert "5" not in rendered
        assert "bid[agent=0]" in rendered


class TestTaintedArithmetic:
    def test_arithmetic_stays_tainted(self, sanitized):
        secret = Secret(5, "bid")
        assert isinstance(secret + 1, Secret)
        assert isinstance(2 * secret, Secret)
        assert isinstance(secret - Secret(2, "bid"), Secret)
        assert isinstance(secret % 3, Secret)
        assert local_value(secret + 1) == 6

    def test_comparisons_reveal_only_one_bit(self, sanitized):
        assert Secret(3, "bid") < Secret(5, "bid")
        assert Secret(3, "bid") < 5
        assert Secret(5, "bid") == 5
        assert Secret(5, "bid") != 4


class TestDeclassify:
    def test_declassify_unwraps_and_audits(self, sanitized):
        value = declassify(Secret(5, "y*"), reason="minimum bid reveal")
        assert value == 5
        events = declassification_audit()
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, DeclassificationEvent)
        assert event.label == "y*"
        assert event.reason == "minimum bid reveal"
        assert event.value == 5
        assert event.sequence == 0

    def test_local_value_does_not_audit(self, sanitized):
        assert local_value(Secret(5, "bid")) == 5
        assert declassification_audit() == ()

    def test_label_override(self, sanitized):
        declassify(Secret(5, "bid"), reason="r", label="winner_bid")
        assert declassification_audit()[0].label == "winner_bid"


class TestSanitizedProtocolRun:
    def test_full_run_audits_only_sanctioned_reveals(self, sanitized,
                                                     problem53):
        outcome = run_dmw(problem53)
        assert outcome.completed, outcome.abort
        events = declassification_audit()
        assert events, "a sanitized run must record its reveals"
        labels = {event.label for event in events}
        # The paper sanctions exactly these reveal channels (Phase III).
        assert labels <= {"y*", "winner", "y**", "winner_bid"}
        assert {"y*", "winner", "y**"} <= labels
        for event in events:
            assert "sanctioned reveal" in event.reason

    def test_sanitized_and_plain_runs_agree(self, monkeypatch, problem53):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        clear_declassification_audit()
        sanitized_outcome = run_dmw(problem53)
        clear_declassification_audit()
        monkeypatch.delenv(SANITIZE_ENV_VAR)
        plain_outcome = run_dmw(problem53)
        assert sanitized_outcome.schedule == plain_outcome.schedule
        assert list(sanitized_outcome.payments) == \
            list(plain_outcome.payments)
