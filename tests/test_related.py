"""Tests for repro.mechanisms.related (related machines, future work)."""

import itertools

import pytest

from repro.mechanisms.related import (
    ExactMakespanAllocation,
    GreedyWorkSplit,
    MyersonRelatedMachines,
    RelatedResult,
    assigned_work,
    related_problem,
)
from repro.scheduling.schedule import Schedule

GRID = [1, 2, 3]


class TestDomainHelpers:
    def test_related_problem_matrix(self):
        problem = related_problem([1, 2], [3, 5])
        assert problem.time(0, 0) == 3
        assert problem.time(1, 1) == 10

    def test_assigned_work(self):
        schedule = Schedule([0, 1, 0], num_agents=2)
        assert assigned_work(schedule, [3, 5, 2], 0) == 5
        assert assigned_work(schedule, [3, 5, 2], 1) == 5


class TestAllocationRules:
    def test_greedy_prefers_fast_machines(self):
        schedule = GreedyWorkSplit()([1, 3], [4, 4, 4])
        # The 3x slower machine should not get the majority of work.
        assert assigned_work(schedule, [4, 4, 4], 0) >= \
            assigned_work(schedule, [4, 4, 4], 1)

    def test_exact_minimizes_makespan(self):
        sizes = [3, 3, 2]
        speeds = [1, 1]
        schedule = ExactMakespanAllocation()(speeds, sizes)
        loads = [assigned_work(schedule, sizes, i) * speeds[i]
                 for i in range(2)]
        assert max(loads) == 5  # {3,2} vs {3}

    def test_exact_unloads_slow_machines_on_ties(self):
        # Both splits of two unit tasks across equal-speed machines tie on
        # makespan; the tie-break prefers unloading the higher-bid agent.
        schedule = ExactMakespanAllocation()([1, 2], [1, 1])
        assert assigned_work(schedule, [1, 1], 1) <= \
            assigned_work(schedule, [1, 1], 0)


class TestMechanismValidation:
    def test_grid_validated(self):
        with pytest.raises(ValueError):
            MyersonRelatedMachines([1], [3, 2, 1])
        with pytest.raises(ValueError):
            MyersonRelatedMachines([1], [0, 1])
        with pytest.raises(ValueError):
            MyersonRelatedMachines([], GRID)
        with pytest.raises(ValueError):
            MyersonRelatedMachines([0], GRID)

    def test_bids_must_be_on_grid(self):
        mechanism = MyersonRelatedMachines([2, 1], GRID)
        with pytest.raises(ValueError):
            mechanism.run([1, 2.5])


class TestMonotonicity:
    @pytest.mark.parametrize("allocation", [GreedyWorkSplit(),
                                            ExactMakespanAllocation()],
                             ids=["greedy", "exact"])
    def test_work_curves_non_increasing(self, allocation):
        for sizes in ([3, 2, 1], [5, 4, 3, 2], [7, 1, 1, 1]):
            mechanism = MyersonRelatedMachines(sizes, GRID,
                                               allocation=allocation)
            for bids in itertools.product(GRID, repeat=3):
                assert mechanism.check_monotonicity(list(bids)) is None, \
                    (sizes, bids)

    def test_checker_catches_non_monotone_rule(self):
        def perverse(inverse_speeds, sizes):
            # Gives ALL work to the highest bidder: blatantly rewarding
            # slow declarations.
            slowest = max(range(len(inverse_speeds)),
                          key=lambda i: (inverse_speeds[i], i))
            return Schedule([slowest] * len(sizes), len(inverse_speeds))

        mechanism = MyersonRelatedMachines([3, 2], GRID,
                                           allocation=perverse)
        violation = mechanism.check_monotonicity([1, 2, 3])
        assert violation is not None
        agent, curve = violation
        assert curve != sorted(curve, reverse=True)


class TestTruthfulness:
    @pytest.mark.parametrize("allocation", [GreedyWorkSplit(),
                                            ExactMakespanAllocation()],
                             ids=["greedy", "exact"])
    def test_exhaustive_grid_deviations_never_help(self, allocation):
        """Monotone allocation + Myerson payments = truthful: checked by
        brute force over every type profile and every deviation."""
        for sizes in ([3, 2, 1], [5, 4, 3, 2]):
            mechanism = MyersonRelatedMachines(sizes, GRID,
                                               allocation=allocation)
            for types in itertools.product(GRID, repeat=3):
                assert mechanism.check_truthfulness(list(types)) is None, \
                    (sizes, types)

    def test_non_monotone_rule_is_exploitable(self):
        """The same payment rule on a non-monotone allocation is NOT
        truthful — the harness exhibits the profitable lie."""
        def perverse(inverse_speeds, sizes):
            slowest = max(range(len(inverse_speeds)),
                          key=lambda i: (inverse_speeds[i], i))
            return Schedule([slowest] * len(sizes), len(inverse_speeds))

        mechanism = MyersonRelatedMachines([4, 2], GRID,
                                           allocation=perverse)
        found = False
        for types in itertools.product(GRID, repeat=2):
            if mechanism.check_truthfulness(list(types)) is not None:
                found = True
                break
        assert found

    def test_truthful_utility_nonnegative(self):
        """Voluntary participation: the Myerson payment covers the cost."""
        mechanism = MyersonRelatedMachines([3, 2, 2], GRID)
        for types in itertools.product(GRID, repeat=3):
            result = mechanism.run(list(types))
            for agent, true_type in enumerate(types):
                assert result.utility(agent, true_type,
                                      mechanism.sizes) >= -1e-9


class TestPayments:
    def test_zero_work_zero_payment(self):
        mechanism = MyersonRelatedMachines([5], GRID)
        # With bids (1, 3, 3) agent 0 takes everything under greedy.
        result = mechanism.run([1, 3, 3])
        for agent in range(3):
            if assigned_work(result.schedule, mechanism.sizes, agent) == 0:
                # Idle at the top of the grid -> idle above it: payment 0.
                if result.payments[agent] > 0:
                    curve = mechanism.work_curve([1, 3, 3], agent)
                    assert any(w > 0 for w in curve)

    def test_payment_at_least_declared_cost(self):
        mechanism = MyersonRelatedMachines([4, 2], GRID)
        for bids in itertools.product(GRID, repeat=2):
            result = mechanism.run(list(bids))
            for agent, bid in enumerate(bids):
                work = assigned_work(result.schedule, mechanism.sizes,
                                     agent)
                assert result.payments[agent] >= bid * work - 1e-9
