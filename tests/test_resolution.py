"""Unit tests for repro.core.resolution (first price, winner, second price)."""

import pytest

from repro.core.bidding import all_share_bundles, encode_bid
from repro.core.resolution import (
    ResolutionError,
    identify_winner,
    resolve_first_price,
    resolve_second_price,
)


def build_auction(params, bids, rng):
    """Encode the bids and compute the honest public values."""
    q = params.group.q
    group = params.group
    packages = [encode_bid(params, bid, rng) for bid in bids]
    bundles = [all_share_bundles(params, package) for package in packages]
    lambdas = {}
    for index in range(params.num_agents):
        alpha = params.pseudonyms[index]
        e_sum = sum(p.e.evaluate(alpha) for p in packages) % q
        lambdas[index] = group.exp(params.z1, e_sum)
    rows = {
        discloser: {
            sender: (bundles[sender][discloser].f_value,
                     bundles[sender][discloser].h_value)
            for sender in range(params.num_agents)
        }
        for discloser in range(params.num_agents)
    }
    return packages, bundles, lambdas, rows


class TestFirstPrice:
    @pytest.mark.parametrize("bids,expected", [
        ([1, 2, 3, 2, 1], 1),
        ([3, 3, 3, 3, 3], 3),
        ([2, 3, 3, 3, 3], 2),
        ([3, 3, 3, 3, 1], 1),
    ])
    def test_resolves_minimum_bid(self, params5, rng, bids, expected):
        _, _, lambdas, _ = build_auction(params5, bids, rng)
        first_price, degree = resolve_first_price(params5, lambdas)
        assert first_price == expected
        assert degree == params5.sigma - expected

    def test_subset_of_lambdas_suffices(self, params5, rng):
        # min bid 3 -> degree 2 -> needs only 3 valid points.
        _, _, lambdas, _ = build_auction(params5, [3, 3, 3, 3, 3], rng)
        del lambdas[0]
        del lambdas[4]
        first_price, _ = resolve_first_price(params5, lambdas)
        assert first_price == 3

    def test_too_few_lambdas_raises(self, params5, rng):
        _, _, lambdas, _ = build_auction(params5, [1, 2, 3, 2, 1], rng)
        # min bid 1 -> degree sigma-1=4 -> needs all 5 points.
        del lambdas[2]
        with pytest.raises(ResolutionError):
            resolve_first_price(params5, lambdas)

    def test_corrupt_lambda_breaks_resolution(self, params5, rng):
        _, _, lambdas, _ = build_auction(params5, [1, 1, 1, 1, 1], rng)
        lambdas[0] = params5.group.mul(lambdas[0], params5.z1)
        with pytest.raises(ResolutionError):
            resolve_first_price(params5, lambdas)


class TestWinner:
    def test_unique_winner(self, params5, rng):
        _, _, lambdas, rows = build_auction(params5, [2, 1, 3, 2, 3], rng)
        first_price, _ = resolve_first_price(params5, lambdas)
        assert first_price == 1
        assert identify_winner(params5, first_price, rows) == 1

    def test_tie_broken_by_smallest_pseudonym(self, params5, rng):
        _, _, lambdas, rows = build_auction(params5, [2, 1, 3, 1, 3], rng)
        first_price, _ = resolve_first_price(params5, lambdas)
        assert identify_winner(params5, first_price, rows) == 1

    def test_all_tied(self, params5, rng):
        _, _, lambdas, rows = build_auction(params5, [2, 2, 2, 2, 2], rng)
        first_price, _ = resolve_first_price(params5, lambdas)
        assert identify_winner(params5, first_price, rows) == 0

    def test_needs_enough_rows(self, params5, rng):
        _, _, lambdas, rows = build_auction(params5, [2, 1, 3, 2, 3], rng)
        first_price, _ = resolve_first_price(params5, lambdas)
        short = {0: rows[0]}  # y*=1 needs 2 rows
        with pytest.raises(ResolutionError):
            identify_winner(params5, first_price, short)

    def test_uses_lowest_pseudonym_rows(self, params5, rng):
        # Extra rows beyond y*+1 are ignored: result identical.
        _, _, lambdas, rows = build_auction(params5, [3, 1, 3, 2, 3], rng)
        first_price, _ = resolve_first_price(params5, lambdas)
        subset = {k: rows[k] for k in (0, 1)}
        assert identify_winner(params5, first_price, subset) == \
            identify_winner(params5, first_price, rows)

    def test_wrong_first_price_raises(self, params5, rng):
        _, _, _, rows = build_auction(params5, [3, 3, 3, 3, 3], rng)
        # Nobody bid 1, so no f-polynomial has degree 1.
        with pytest.raises(ResolutionError):
            identify_winner(params5, 1, rows)


class TestSecondPrice:
    def excluded_lambdas(self, params, packages, winner):
        group = params.group
        q = group.q
        values = {}
        for index in range(params.num_agents):
            alpha = params.pseudonyms[index]
            e_sum = sum(p.e.evaluate(alpha)
                        for k, p in enumerate(packages) if k != winner) % q
            values[index] = group.exp(params.z1, e_sum)
        return values

    @pytest.mark.parametrize("bids,winner,expected", [
        ([1, 2, 3, 2, 3], 0, 2),
        ([1, 1, 3, 2, 3], 0, 1),   # tie on minimum: second price == first
        ([3, 3, 3, 3, 2], 4, 3),
        ([2, 3, 3, 3, 3], 0, 3),
    ])
    def test_second_price_correct(self, params5, rng, bids, winner, expected):
        packages, _, _, _ = build_auction(params5, bids, rng)
        values = self.excluded_lambdas(params5, packages, winner)
        second_price, _ = resolve_second_price(params5, values)
        assert second_price == expected

    def test_short_values_raise(self, params5, rng):
        packages, _, _, _ = build_auction(params5, [1, 1, 3, 2, 3], rng)
        values = self.excluded_lambdas(params5, packages, 0)
        # second price 1 -> degree 4 -> needs 5 points.
        del values[3]
        with pytest.raises(ResolutionError):
            resolve_second_price(params5, values)
