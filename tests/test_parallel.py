"""Tests for parallel (per-phase) auction execution.

The paper's auctions run "parallel and independent"; the parallel
schedule must produce byte-identical outcomes to the sequential one with
the same messages in ~5 rounds instead of ``4m + 1``.
"""

import random

import pytest

from repro.analysis.faithfulness import honest_factory
from repro.core.agent import DMWAgent
from repro.core.deviant import (
    WithholdSharesAgent,
    WrongAggregatesAgent,
)
from repro.core.parameters import DMWParameters
from repro.core.protocol import DMWProtocol
from repro.mechanisms.base import truthful_bids
from repro.mechanisms.minwork import MinWork
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem


def build_protocol(params, problem, factories=None, seed=0):
    master = random.Random(seed)
    agents = []
    for index in range(params.num_agents):
        rng = random.Random(master.getrandbits(64))
        values = [int(problem.time(index, j))
                  for j in range(problem.num_tasks)]
        if factories and index in factories:
            agents.append(factories[index](index, params, values, rng))
        else:
            agents.append(DMWAgent(index, params, values, rng=rng))
    return DMWProtocol(params, agents)


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [2, 1, 3],
        [1, 3, 2],
        [3, 2, 1],
        [2, 2, 2],
        [3, 1, 1],
    ])


class TestParallelEquivalence:
    def test_same_outcome_as_sequential(self, params5, problem):
        sequential = build_protocol(params5, problem).execute(3)
        parallel = build_protocol(params5, problem).execute(3,
                                                            parallel=True)
        assert parallel.completed
        assert parallel.schedule == sequential.schedule
        assert parallel.payments == sequential.payments

    def test_matches_minwork(self, params5, problem):
        parallel = build_protocol(params5, problem).execute(3,
                                                            parallel=True)
        expected = MinWork().run(truthful_bids(problem))
        assert parallel.schedule == expected.schedule
        assert list(parallel.payments) == list(expected.payments)

    def test_random_instances(self, group_small):
        rng = random.Random(31)
        for trial in range(5):
            params = DMWParameters.generate(6, fault_bound=1,
                                            group_parameters=group_small)
            instance = workloads.random_discrete(6, 3, params.bid_values,
                                                 rng)
            sequential = build_protocol(params, instance,
                                        seed=trial).execute(3)
            parallel = build_protocol(params, instance,
                                      seed=trial).execute(3, parallel=True)
            assert parallel.schedule == sequential.schedule
            assert parallel.payments == sequential.payments


class TestRoundCompression:
    def test_five_rounds_regardless_of_m(self, params5, problem):
        parallel = build_protocol(params5, problem).execute(3,
                                                            parallel=True)
        # 4 auction barriers + 1 payments round, independent of m = 3.
        assert parallel.network_metrics.rounds == 5

    def test_sequential_rounds_grow_with_m(self, params5, problem):
        sequential = build_protocol(params5, problem).execute(3)
        assert sequential.network_metrics.rounds == 4 * 3 + 1

    def test_message_totals_identical(self, params5, problem):
        sequential = build_protocol(params5, problem).execute(3)
        parallel = build_protocol(params5, problem).execute(3,
                                                            parallel=True)
        assert (parallel.network_metrics.point_to_point_messages
                == sequential.network_metrics.point_to_point_messages)
        assert (parallel.network_metrics.field_elements
                == sequential.network_metrics.field_elements)


class TestParallelDeviations:
    def test_fatal_deviation_still_aborts(self, params5, problem):
        factories = {2: lambda i, p, t, r: WithholdSharesAgent(
            i, p, t, victims=[0], rng=r)}
        protocol = build_protocol(params5, problem, factories)
        outcome = protocol.execute(3, parallel=True)
        assert not outcome.completed
        assert outcome.abort.phase == "bidding"

    def test_tolerated_deviation_still_excluded(self, params5):
        # All bids >= 2: resolution slack absorbs the corrupt aggregates.
        instance = SchedulingProblem([
            [2, 3], [3, 2], [2, 2], [3, 3], [2, 3],
        ])
        factories = {4: lambda i, p, t, r: WrongAggregatesAgent(
            i, p, t, rng=r)}
        protocol = build_protocol(params5, instance, factories)
        outcome = protocol.execute(2, parallel=True)
        assert outcome.completed
        expected = MinWork().run(truthful_bids(instance))
        assert outcome.schedule == expected.schedule
        # The complaint round added exactly one barrier.
        assert outcome.network_metrics.rounds == 6


class TestRunDMWParallel:
    def test_convenience_wrapper(self, problem):
        import random as _random
        from repro.core.protocol import run_dmw
        sequential = run_dmw(problem, rng=_random.Random(3))
        parallel = run_dmw(problem, rng=_random.Random(3), parallel=True)
        assert parallel.completed
        assert parallel.schedule == sequential.schedule
        assert parallel.payments == sequential.payments
        assert parallel.network_metrics.rounds < \
            sequential.network_metrics.rounds
