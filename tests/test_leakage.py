"""Tests for repro.analysis.leakage (transcript information leakage)."""

import math
import random

import pytest

from repro.analysis.leakage import (
    consistent_loser_profiles,
    entropy_bits,
    leakage_report,
    posterior_marginals,
    repeated_execution_leakage,
)
from repro.core.outcome import AuctionTranscript
from repro.core.parameters import DMWParameters
from repro.core.protocol import run_dmw
from repro.scheduling.problem import SchedulingProblem


def make_transcript(task=0, first=1, winner=0, second=2):
    return AuctionTranscript(task=task, first_price=first, winner=winner,
                             second_price=second,
                             valid_aggregate_publishers=(),
                             valid_disclosers=())


class TestConsistency:
    def test_profiles_respect_second_price_floor(self, params5):
        transcript = make_transcript(first=1, winner=0, second=2)
        for profile in consistent_loser_profiles(params5, transcript):
            assert all(bid >= 2 for bid in profile.values())
            assert min(profile.values()) == 2

    def test_tie_break_constraint(self, params5):
        # Winner is agent 2: agents 0 and 1 (smaller pseudonyms) must bid
        # strictly above y*.
        transcript = make_transcript(first=2, winner=2, second=2)
        for profile in consistent_loser_profiles(params5, transcript):
            assert profile[0] > 2
            assert profile[1] > 2
            # and some loser (here necessarily 3 or 4) bids exactly 2
            assert min(profile[3], profile[4]) == 2

    def test_true_profile_is_always_consistent(self, params5):
        problem = SchedulingProblem([
            [2], [1], [3], [2], [3],
        ])
        outcome = run_dmw(problem, parameters=params5)
        transcript = outcome.transcripts[0]
        true_profile = {i: int(problem.time(i, 0)) for i in range(5)
                        if i != transcript.winner}
        profiles = list(consistent_loser_profiles(params5, transcript))
        assert true_profile in profiles


class TestPosterior:
    def test_marginals_are_distributions(self, params5):
        transcript = make_transcript(first=1, winner=0, second=1)
        marginals = posterior_marginals(params5, transcript)
        assert set(marginals) == {1, 2, 3, 4}
        for distribution in marginals.values():
            assert sum(distribution.values()) == pytest.approx(1.0)

    def test_high_second_price_pins_losers(self, params5):
        # y** = 3 (the max bid): every loser must bid exactly 3 — full
        # leak for every loser.
        transcript = make_transcript(first=3, winner=0, second=3)
        report = leakage_report(params5, transcript)
        for loser, bits in report.posterior_bits.items():
            assert bits == pytest.approx(0.0)
        assert report.max_leak == pytest.approx(report.prior_bits)

    def test_low_second_price_leaks_little(self, params5):
        # y** = 1 (the minimum): losers are barely constrained.
        transcript = make_transcript(first=1, winner=0, second=1)
        report = leakage_report(params5, transcript)
        prior = math.log2(3)
        # Most losers keep close to full entropy.
        assert any(bits > 0.8 * prior
                   for bits in report.posterior_bits.values())

    def test_entropy_bits(self):
        assert entropy_bits({1: 0.5, 2: 0.5}) == pytest.approx(1.0)
        assert entropy_bits({1: 1.0}) == pytest.approx(0.0)

    def test_inconsistent_transcript_rejected(self, params5):
        # winner 4 with y* = y** = 3 forces every smaller-pseudonym loser
        # to bid > 3: impossible with W = {1, 2, 3}.
        transcript = make_transcript(first=3, winner=4, second=3)
        with pytest.raises(ValueError):
            posterior_marginals(params5, transcript)


class TestRepeatedExecutions:
    def test_rerandomization_leaks_nothing_new(self, params5):
        """The Theorem 10 remark: repetitions over the same jobs give the
        observer the same transcript, hence the same posterior."""
        problem = SchedulingProblem([
            [2], [1], [3], [2], [3],
        ])
        reports = repeated_execution_leakage(problem, params5,
                                             repetitions=4)
        first = reports[0]
        for report in reports[1:]:
            assert report.leaked_bits == first.leaked_bits

    def test_aborting_instance_raises(self, params5):
        problem = SchedulingProblem([[7], [7], [7], [7], [7]])
        with pytest.raises(Exception):
            repeated_execution_leakage(problem, params5, repetitions=1)
