"""Per-phase cProfile capture (repro.obs.profile).

Contracts (docs/OBSERVABILITY.md, "Phase profiler"):

* attaching a profiler to the span recorder brackets every *phase*
  span with a cProfile capture, folded per phase;
* the run report's ``profile`` section carries top-N hotspots per
  phase and validates under the v4 schema;
* process-pool workers profile their own shards and the parent merges
  the exported tables additively;
* profiling never changes outcomes or counted totals (wall-clock is
  explicitly exempt — cProfile has real overhead).
"""

import random

from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.obs import (
    PhaseProfiler,
    SpanRecorder,
    run_report,
    validate_run_report,
)
from repro.obs.spans import PHASES


def _busy(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def profiled_run(params, problem, seed=0, parallel=False, workers=None,
                 top_n=10):
    master = random.Random(seed)
    agents = [
        DMWAgent(index, params,
                 [int(problem.time(index, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(params.num_agents)
    ]
    recorder = SpanRecorder()
    recorder.profiler = PhaseProfiler(top_n=top_n)
    protocol = DMWProtocol(params, agents, observer=recorder)
    outcome = protocol.execute(problem.num_tasks, parallel=parallel,
                               workers=workers)
    return outcome, protocol, recorder


class TestProfilerUnit:
    def test_start_stop_folds_rows(self):
        profiler = PhaseProfiler(top_n=3)
        profiler.start("bidding")
        _busy(20000)
        profiler.stop("bidding")
        report = profiler.report()
        assert report["top_n"] == 3
        phase = report["phases"]["bidding"]
        assert phase["functions_profiled"] > 0
        assert phase["calls"] > 0
        assert len(phase["hotspots"]) <= 3
        assert any("_busy" in row["function"]
                   for row in phase["hotspots"])

    def test_hotspot_keys_are_machine_portable(self):
        profiler = PhaseProfiler()
        profiler.start("bidding")
        _busy(1000)
        profiler.stop("bidding")
        for row in profiler.report()["phases"]["bidding"]["hotspots"]:
            assert "/" not in row["function"].split("(")[0]

    def test_nested_start_is_ignored(self):
        # Phases never nest in DMW; a second start while capturing is a
        # no-op rather than a corrupted capture.
        profiler = PhaseProfiler()
        profiler.start("bidding")
        profiler.start("aggregation")
        _busy(1000)
        profiler.stop("aggregation")
        profiler.stop("bidding")
        assert set(profiler.report()["phases"]) == {"bidding"}

    def test_merge_is_additive(self):
        left, right = PhaseProfiler(), PhaseProfiler()
        for profiler in (left, right):
            profiler.start("bidding")
            _busy(5000)
            profiler.stop("bidding")
        solo_calls = left.report()["phases"]["bidding"]["calls"]
        left.merge(right.export())
        merged = left.report()["phases"]["bidding"]
        assert merged["calls"] == solo_calls \
            + right.report()["phases"]["bidding"]["calls"]

    def test_export_is_deep_copied(self):
        profiler = PhaseProfiler()
        profiler.start("bidding")
        _busy(1000)
        profiler.stop("bidding")
        exported = profiler.export()
        for rows in exported.values():
            for row in rows.values():
                row[0] += 999
        assert profiler.export() != exported


class TestProfiledRuns:
    def test_every_phase_is_profiled(self, params5, problem53):
        outcome, protocol, recorder = profiled_run(params5, problem53)
        assert outcome.completed
        report = recorder.profiler.report()
        assert set(report["phases"]) == set(PHASES) | {"payments"}
        for body in report["phases"].values():
            assert body["calls"] > 0
            assert body["time_s"] >= 0.0

    def test_report_v4_profile_section_validates(self, params5,
                                                 problem53):
        outcome, protocol, recorder = profiled_run(params5, problem53,
                                                   top_n=5)
        document = run_report(outcome, agents=protocol.agents,
                              recorder=recorder, parameters=params5)
        validate_run_report(document)
        assert document["profile"]["top_n"] == 5
        assert set(document["profile"]["phases"]) \
            == set(PHASES) | {"payments"}
        for body in document["profile"]["phases"].values():
            assert len(body["hotspots"]) <= 5

    def test_profiling_does_not_perturb_outcomes(self, params5,
                                                 problem53):
        master = random.Random(0)
        agents = [
            DMWAgent(index, params5,
                     [int(problem53.time(index, j))
                      for j in range(problem53.num_tasks)],
                     rng=random.Random(master.getrandbits(64)))
            for index in range(params5.num_agents)
        ]
        reference = DMWProtocol(params5, agents).execute(
            problem53.num_tasks)
        outcome, _, _ = profiled_run(params5, problem53)
        assert list(outcome.schedule.assignment) \
            == list(reference.schedule.assignment)
        assert list(outcome.payments) == list(reference.payments)
        assert outcome.network_metrics.as_dict() \
            == reference.network_metrics.as_dict()

    def test_pool_merges_worker_profiles(self, params5, problem53):
        outcome, protocol, recorder = profiled_run(params5, problem53,
                                                   parallel=True,
                                                   workers=2)
        assert outcome.parallelism["workers"] == 2
        report = recorder.profiler.report()
        # The per-auction phases ran inside the workers; their merged
        # tables must land in the parent's profile alongside the
        # parent-side payments phase.
        assert set(report["phases"]) == set(PHASES) | {"payments"}
        document = run_report(outcome, agents=protocol.agents,
                              recorder=recorder, parameters=params5)
        validate_run_report(document)
        assert set(document["profile"]["phases"]) \
            == set(PHASES) | {"payments"}

    def test_unprofiled_run_reports_empty_profile(self, params5,
                                                  problem53):
        master = random.Random(0)
        agents = [
            DMWAgent(index, params5,
                     [int(problem53.time(index, j))
                      for j in range(problem53.num_tasks)],
                     rng=random.Random(master.getrandbits(64)))
            for index in range(params5.num_agents)
        ]
        recorder = SpanRecorder()
        protocol = DMWProtocol(params5, agents, observer=recorder)
        outcome = protocol.execute(problem53.num_tasks)
        document = run_report(outcome, agents=agents, recorder=recorder,
                              parameters=params5)
        validate_run_report(document)
        assert document["profile"] == {}
