"""Smoke tests: every example script runs to completion.

Examples are part of the public API contract — they must keep working.
Each is executed in-process (``runpy``) with stdout captured; the
internal ``assert`` statements inside the examples double as checks.
``scaling_study.py`` is excluded here because it sweeps many protocol
sizes (it runs under the benchmark suite's time budget instead).
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "compute_market.py",
    "deviation_audit.py",
    "privacy_collusion.py",
    "transcript_audit.py",
    "related_machines.py",
    "fault_injection.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"


def test_quickstart_proves_equivalence(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "Outcomes identical" in out


def test_deviation_audit_reports_faithful(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "deviation_audit.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "FAITHFUL" in out
    assert "STRONG VOLUNTARY PARTICIPATION" in out


def test_transcript_audit_detects_forgeries(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "transcript_audit.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert out.count("FAIL") >= 2
    assert "PASS" in out


def test_all_examples_are_covered():
    """Every example file is either smoke-tested here or bench-covered."""
    present = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    covered = set(FAST_EXAMPLES) | {"scaling_study.py"}
    assert present == covered, present.symmetric_difference(covered)
