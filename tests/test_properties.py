"""Unit tests for repro.mechanisms.properties (Theorem 2 machinery)."""

import random
from typing import List

import pytest

from repro.mechanisms.base import Bids, CentralizedMechanism
from repro.mechanisms.minwork import MinWork
from repro.mechanisms.properties import (
    check_truthfulness_exhaustive,
    check_truthfulness_sampled,
    check_voluntary_participation,
)
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem
from repro.scheduling.schedule import Schedule


class FirstPriceMinWork(CentralizedMechanism):
    """A deliberately broken mechanism: pays winners their own bid.

    First-price auctions are *not* truthful — underbidding pays — so the
    checkers must catch this.
    """

    def allocate(self, bids: Bids) -> Schedule:
        return MinWork().allocate(bids)

    def payments(self, bids: Bids, schedule: Schedule) -> List[float]:
        totals = [0.0] * bids.num_agents
        for task in range(bids.num_tasks):
            winner = schedule.agent_of(task)
            totals[winner] += bids.time(winner, task)
        return totals


class GreedyNoPayment(CentralizedMechanism):
    """Another broken design: allocation without payments.

    Violates voluntary participation — winners incur cost and receive
    nothing.
    """

    def allocate(self, bids: Bids) -> Schedule:
        return MinWork().allocate(bids)

    def payments(self, bids: Bids, schedule: Schedule) -> List[float]:
        return [0.0] * bids.num_agents


class TestExhaustiveTruthfulness:
    def test_minwork_passes(self):
        problem = SchedulingProblem([[1, 2], [2, 1], [2, 2]])
        violation = check_truthfulness_exhaustive(MinWork(), problem,
                                                  bid_values=[1, 2, 3])
        assert violation is None

    def test_first_price_fails(self):
        # Agent 0 wins task 0 at bid 1 (second bid 3): in the first-price
        # rule it profits by bidding just under 3.
        problem = SchedulingProblem([[1], [3]])
        violation = check_truthfulness_exhaustive(
            FirstPriceMinWork(), problem, bid_values=[1, 2, 3])
        assert violation is not None
        assert violation.deviating_utility > violation.truthful_utility

    def test_violation_identifies_agent_and_row(self):
        problem = SchedulingProblem([[1], [3]])
        violation = check_truthfulness_exhaustive(
            FirstPriceMinWork(), problem, bid_values=[1, 2, 3])
        assert violation.agent == 0
        assert violation.deviation == (2,)


class TestSampledTruthfulness:
    def test_minwork_passes(self, rng):
        for _ in range(3):
            problem = workloads.uniform_random(4, 3, rng)
            assert check_truthfulness_sampled(MinWork(), problem, rng,
                                              samples=100) is None

    def test_first_price_fails(self):
        rng = random.Random(0)
        problem = SchedulingProblem([[1, 1], [50, 50], [60, 60]])
        violation = check_truthfulness_sampled(FirstPriceMinWork(), problem,
                                               rng, samples=300)
        assert violation is not None


class TestVoluntaryParticipation:
    def test_minwork_passes(self, rng):
        for _ in range(5):
            problem = workloads.uniform_random(3, 3, rng)
            assert check_voluntary_participation(MinWork(), problem) is None

    def test_no_payment_mechanism_fails(self):
        problem = SchedulingProblem([[1], [3]])
        violation = check_voluntary_participation(GreedyNoPayment(), problem)
        assert violation is not None
        assert violation.truthful_utility < 0
