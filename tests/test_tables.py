"""Tests for repro.analysis.tables."""

import pytest

from repro.analysis.tables import format_cell, render_table


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_integral_float(self):
        assert format_cell(3.0) == "3"

    def test_fractional_float(self):
        assert format_cell(3.14159) == "3.142"

    def test_string_passthrough(self):
        assert format_cell("dmw") == "dmw"

    def test_int(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["name", "value"],
                             [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # Columns aligned: 'value' header starts at the same offset as 1/22.
        offset = lines[0].index("value")
        assert lines[2][offset] == "1"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert len(table.splitlines()) == 2
