"""Unit tests for repro.core.bidding (Phase II)."""

import pytest

from repro.core.bidding import all_share_bundles, encode_bid
from repro.core.exceptions import ParameterError
from repro.crypto.modular import OperationCounter


class TestEncodeBid:
    def test_degrees_follow_encoding_rule(self, params5, rng):
        for bid in params5.bid_values:
            package = encode_bid(params5, bid, rng)
            tau = params5.sigma - bid
            assert package.e.degree == tau
            assert package.f.degree == bid          # deg f = sigma - tau
            assert package.g.degree == params5.sigma
            assert package.h.degree == params5.sigma

    def test_zero_constant_terms(self, params5, rng):
        package = encode_bid(params5, 2, rng)
        for poly in (package.e, package.f, package.g, package.h):
            assert poly.coefficient(0) == 0

    def test_product_polynomial_linear_term_vanishes(self, params5, rng):
        # (e*f) has v_1 = 0 automatically (both factors start at x).
        package = encode_bid(params5, 2, rng)
        product = package.e * package.f
        assert product.coefficient(0) == 0
        assert product.coefficient(1) == 0
        assert product.degree == params5.sigma

    def test_commitment_vectors_have_width_sigma(self, params5, rng):
        package = encode_bid(params5, 1, rng)
        assert package.commitments.o_vector.size == params5.sigma
        assert package.commitments.q_vector.size == params5.sigma
        assert package.commitments.r_vector.size == params5.sigma
        assert package.commitments.field_elements == 3 * params5.sigma

    def test_invalid_bid_rejected(self, params5, rng):
        with pytest.raises(ParameterError):
            encode_bid(params5, 0, rng)
        with pytest.raises(ParameterError):
            encode_bid(params5, 99, rng)

    def test_fresh_randomness_each_call(self, params5, rng):
        a = encode_bid(params5, 2, rng)
        b = encode_bid(params5, 2, rng)
        assert a.e != b.e  # overwhelmingly likely; deterministic rng seed

    def test_operations_metered(self, params5, rng):
        counter = OperationCounter()
        encode_bid(params5, 2, rng, counter)
        assert counter.exponentiations > 0


class TestShareBundles:
    def test_bundle_values_are_evaluations(self, params5, rng):
        package = encode_bid(params5, 2, rng)
        alpha = params5.pseudonyms[3]
        bundle = package.share_bundle_for(alpha)
        assert bundle.e_value == package.e.evaluate(alpha)
        assert bundle.f_value == package.f.evaluate(alpha)
        assert bundle.g_value == package.g.evaluate(alpha)
        assert bundle.h_value == package.h.evaluate(alpha)

    def test_all_share_bundles_cover_every_agent(self, params5, rng):
        package = encode_bid(params5, 2, rng)
        bundles = all_share_bundles(params5, package)
        assert set(bundles) == set(range(params5.num_agents))

    def test_bundle_weight(self, params5, rng):
        package = encode_bid(params5, 2, rng)
        bundle = package.share_bundle_for(1)
        assert bundle.FIELD_ELEMENTS == 4
