"""Tests for repro.auctions (the Kikuchi (M+1)st-price substrate)."""

import itertools
import random

import pytest

from repro.auctions import (
    AuctionError,
    AuctionParameters,
    DistributedAuctionBidder,
    DistributedMPlus1Auction,
    check_auction_truthfulness,
    first_price_auction,
    mplus1_price_auction,
    run_distributed_auction,
    vickrey_auction,
)
from repro.crypto.secretsharing import Share


class TestCentralizedSemantics:
    def test_vickrey_basics(self):
        result = vickrey_auction([3, 7, 5])
        assert result.winners == (1,)
        assert result.price == 5

    def test_vickrey_tie_lowest_index(self):
        result = vickrey_auction([7, 7, 5])
        assert result.winners == (0,)
        assert result.price == 7

    def test_mplus1_multiple_items(self):
        result = mplus1_price_auction([3, 9, 5, 7], num_items=2)
        assert result.winners == (1, 3)
        assert result.price == 5

    def test_mplus1_threshold_tie(self):
        result = mplus1_price_auction([5, 5, 5], num_items=1)
        assert result.winners == (0,)
        assert result.price == 5

    def test_needs_enough_bidders(self):
        with pytest.raises(ValueError):
            mplus1_price_auction([1, 2], num_items=2)
        with pytest.raises(ValueError):
            mplus1_price_auction([1, 2], num_items=0)

    def test_utility(self):
        result = vickrey_auction([3, 7, 5])
        assert result.utility(1, valuation=7) == 2
        assert result.utility(0, valuation=3) == 0


class TestTruthfulnessChecker:
    GRID = [1, 2, 3, 4, 5, 6, 7, 8]

    def test_vickrey_truthful(self):
        violations = check_auction_truthfulness(
            vickrey_auction, valuations=[2, 5, 7], bid_grid=self.GRID)
        assert violations == []

    def test_mplus1_truthful(self):
        auction = lambda bids: mplus1_price_auction(bids, num_items=2)
        violations = check_auction_truthfulness(
            auction, valuations=[2, 5, 7, 4], bid_grid=self.GRID)
        assert violations == []

    def test_first_price_not_truthful(self):
        violations = check_auction_truthfulness(
            first_price_auction, valuations=[3, 8], bid_grid=self.GRID)
        assert violations  # shading below 8 wins cheaper
        bidder, deviation, honest, deviating = violations[0]
        assert deviating > honest


class TestAuctionParameters:
    def test_generate_defaults(self):
        params = AuctionParameters.generate(6, collusion_bound=1)
        assert params.num_bidders == 6
        assert params.bid_values == (1, 2, 3, 4)

    def test_degree_direct_relation(self):
        params = AuctionParameters.generate(6, collusion_bound=2)
        degrees = [params.degree_for_bid(b) for b in params.bid_values]
        assert degrees == sorted(degrees)  # direct, not inverse
        for bid in params.bid_values:
            assert params.bid_for_degree(params.degree_for_bid(bid)) == bid

    def test_validation(self):
        with pytest.raises(ValueError):
            AuctionParameters(modulus=97, pseudonyms=(1,), bid_values=(1,),
                              collusion_bound=0)
        with pytest.raises(ValueError):
            AuctionParameters(modulus=97, pseudonyms=(1, 1), bid_values=(1,),
                              collusion_bound=0)
        with pytest.raises(ValueError):
            AuctionParameters(modulus=97, pseudonyms=(1, 2),
                              bid_values=(5,), collusion_bound=0)
        with pytest.raises(ValueError):
            AuctionParameters.generate(3, collusion_bound=2)

    def test_invalid_bid_rejected(self):
        params = AuctionParameters.generate(6)
        with pytest.raises(ValueError):
            params.degree_for_bid(99)
        with pytest.raises(ValueError):
            params.bid_for_degree(0)


class TestDistributedAuction:
    def test_matches_centralized_vickrey(self):
        valuations = [2, 4, 1, 3, 4, 2]
        result, _ = run_distributed_auction(valuations, num_items=1,
                                            rng=random.Random(1))
        expected = mplus1_price_auction(valuations, 1)
        assert result.winners == expected.winners
        assert result.price == expected.price

    def test_matches_centralized_multi_item(self):
        valuations = [2, 4, 1, 3, 4, 2]
        for m in (1, 2, 3):
            result, _ = run_distributed_auction(valuations, num_items=m,
                                                rng=random.Random(m))
            expected = mplus1_price_auction(valuations, m)
            assert result.winners == expected.winners, m
            assert result.price == expected.price, m

    def test_random_equivalence_sweep(self):
        rng = random.Random(9)
        params = AuctionParameters.generate(6)
        for trial in range(10):
            valuations = [rng.choice(params.bid_values) for _ in range(6)]
            m = rng.randrange(1, 4)
            result, _ = run_distributed_auction(valuations, m,
                                                parameters=params,
                                                rng=random.Random(trial))
            expected = mplus1_price_auction(valuations, m)
            assert result.winners == expected.winners
            assert result.price == expected.price

    def test_item_count_bounds(self):
        with pytest.raises(ValueError):
            run_distributed_auction([1, 2, 3, 2, 1, 2], num_items=0)
        with pytest.raises(ValueError):
            run_distributed_auction([1, 2, 3, 2, 1, 2], num_items=6)

    def test_communication_is_linear_per_round(self):
        valuations = [2, 4, 1, 3, 4, 2]
        _, one = run_distributed_auction(valuations, 1,
                                         rng=random.Random(0))
        _, three = run_distributed_auction(valuations, 3,
                                           rng=random.Random(0))
        # Each extra item adds ~2 broadcast rounds, not a quadratic blowup.
        assert three.point_to_point_messages < \
            3 * one.point_to_point_messages


class TestDistributedPrivacy:
    def test_losing_bids_hidden_from_small_coalitions(self):
        """c colluders pooling their shares cannot confirm a losing bid."""
        params = AuctionParameters.generate(6, collusion_bound=2)
        rng = random.Random(4)
        valuations = [1, 3, 2, 2, 1, 2]
        bidders = [
            DistributedAuctionBidder(i, params, v,
                                     rng=random.Random(rng.getrandbits(64)))
            for i, v in enumerate(valuations)
        ]
        auction = DistributedMPlus1Auction(params, bidders)
        result, _ = auction.run(num_items=1)
        assert result.winners == (1,)
        # Coalition {0, 2} attacks loser 3 (bid 2, degree 4: needs 5
        # shares to confirm; they hold 2 + the free zero).
        from repro.crypto.secretsharing import DegreeEncodingScheme
        coalition = [0, 2]
        shares = [Share(params.pseudonyms[m],
                        bidders[m].state.received[3]) for m in coalition]
        scheme = DegreeEncodingScheme(params.modulus,
                                      [s.point for s in shares])
        outcomes = scheme.reconstruction_attack(
            shares, params.degree_candidates())
        assert not any(outcomes.values())

    def test_winner_bid_becomes_public(self):
        """Winners open their polynomials: their bid is inherently public
        (the delta DMW's f-polynomial trick removes)."""
        params = AuctionParameters.generate(5, collusion_bound=1)
        valuations = [1, 3, 2, 1, 2]
        bidders = [DistributedAuctionBidder(i, params, v)
                   for i, v in enumerate(valuations)]
        auction = DistributedMPlus1Auction(params, bidders)
        result, _ = auction.run(num_items=1)
        openings = auction.network.published("opening")
        assert openings
        opened = openings[0].payload
        assert params.bid_for_degree(opened.degree) == 3


class TestAbortPaths:
    def test_unverifiable_claimant_detected(self):
        """A bidder opening a polynomial inconsistent with its shares is
        rejected; with no other claimant the auction aborts."""
        params = AuctionParameters.generate(5, collusion_bound=1)

        class LyingWinner(DistributedAuctionBidder):
            def open_polynomial(self):
                from repro.crypto.polynomials import Polynomial
                return Polynomial.random(
                    params.degree_for_bid(self.valuation),
                    params.modulus, random.Random(99))

        valuations = [1, 3, 2, 1, 2]
        bidders = [
            LyingWinner(i, params, v) if i == 1
            else DistributedAuctionBidder(i, params, v)
            for i, v in enumerate(valuations)
        ]
        auction = DistributedMPlus1Auction(params, bidders)
        with pytest.raises(AuctionError):
            auction.run(num_items=1)


class TestDistributedAuctionAccounting:
    def test_message_kinds(self):
        valuations = [2, 4, 1, 3, 4, 2]
        params = AuctionParameters.generate(6)
        bidders = [DistributedAuctionBidder(i, params, v)
                   for i, v in enumerate(valuations)]
        auction = DistributedMPlus1Auction(params, bidders)
        result, metrics = auction.run(num_items=2)
        kinds = set(metrics.by_kind)
        assert kinds == {"share", "summed_share", "opening"}
        # Shares: n*(n-1) private messages exactly once.
        assert metrics.by_kind["share"] == 6 * 5

    def test_rounds_grow_with_items(self):
        valuations = [2, 4, 1, 3, 4, 2]
        _, one = run_distributed_auction(valuations, 1,
                                         rng=random.Random(0))
        _, two = run_distributed_auction(valuations, 2,
                                         rng=random.Random(0))
        # Each extra item adds one resolution and one opening round.
        assert two.rounds == one.rounds + 2
