"""Tests for repro.serialization (JSON round-trips)."""

import json
import random

import pytest

from repro import serialization
from repro.core.protocol import run_dmw
from repro.core.parameters import DMWParameters
from repro.scheduling.problem import SchedulingProblem, Task
from repro.scheduling.schedule import Schedule
from repro.scheduling import workloads


class TestProblemRoundTrip:
    def test_roundtrip(self, problem53):
        text = serialization.dumps(problem53)
        restored = serialization.loads(text)
        assert restored == problem53

    def test_requirements_preserved(self):
        problem = SchedulingProblem.from_speeds([4, 8], [[1], [2]])
        restored = serialization.loads(serialization.dumps(problem))
        assert restored.tasks[1].processing_requirement == 8

    def test_is_valid_json(self, problem53):
        document = json.loads(serialization.dumps(problem53))
        assert document["type"] == "scheduling_problem"
        assert document["version"] == serialization.FORMAT_VERSION


class TestScheduleRoundTrip:
    def test_roundtrip(self):
        schedule = Schedule([0, 2, 1], num_agents=3)
        restored = serialization.loads(serialization.dumps(schedule))
        assert restored == schedule


class TestOutcomeRoundTrip:
    @pytest.fixture()
    def outcome(self, params5, problem53):
        return run_dmw(problem53, parameters=params5,
                       rng=random.Random(0))

    def test_completed_outcome(self, outcome, problem53):
        restored = serialization.loads(serialization.dumps(outcome))
        assert restored.completed
        assert restored.schedule == outcome.schedule
        assert restored.payments == outcome.payments
        assert len(restored.transcripts) == len(outcome.transcripts)
        for a, b in zip(restored.transcripts, outcome.transcripts):
            assert (a.task, a.first_price, a.winner, a.second_price) == \
                (b.task, b.first_price, b.winner, b.second_price)

    def test_metrics_preserved(self, outcome):
        restored = serialization.loads(serialization.dumps(outcome))
        assert restored.network_metrics.as_dict() == \
            outcome.network_metrics.as_dict()

    def test_utilities_computable_after_roundtrip(self, outcome, problem53):
        restored = serialization.loads(serialization.dumps(outcome))
        for agent in range(5):
            assert restored.utility(agent, problem53) == \
                outcome.utility(agent, problem53)

    def test_aborted_outcome(self, params5):
        problem = SchedulingProblem([[1], [1], [1], [1], [1]])
        from repro.core.deviant import WithholdSharesAgent
        from repro.analysis.faithfulness import run_with_agents, \
            honest_factory

        def withholder(index, parameters, true_values, rng):
            return WithholdSharesAgent(index, parameters, true_values,
                                       victims=[1], rng=rng)

        outcome = run_with_agents(params5,
                                  [withholder] + [honest_factory] * 4,
                                  problem)
        assert not outcome.completed
        restored = serialization.loads(serialization.dumps(outcome))
        assert not restored.completed
        assert restored.abort.phase == outcome.abort.phase
        assert restored.abort.offender == outcome.abort.offender
        assert restored.schedule is None


class TestFiles:
    def test_save_load(self, tmp_path, problem53):
        path = tmp_path / "problem.json"
        serialization.save(problem53, str(path))
        assert serialization.load(str(path)) == problem53


class TestErrors:
    def test_unknown_artifact(self):
        with pytest.raises(serialization.SerializationError):
            serialization.dumps(object())

    def test_unknown_document_type(self):
        with pytest.raises(serialization.SerializationError):
            serialization.loads('{"type": "mystery", "version": 1}')

    def test_not_a_document(self):
        with pytest.raises(serialization.SerializationError):
            serialization.loads('[1, 2, 3]')

    def test_wrong_version(self, problem53):
        document = json.loads(serialization.dumps(problem53))
        document["version"] = 99
        with pytest.raises(serialization.SerializationError):
            serialization.loads(json.dumps(document))

    def test_type_mismatch(self, problem53):
        document = json.loads(serialization.dumps(problem53))
        document["type"] = "schedule"
        with pytest.raises(Exception):
            serialization.loads(json.dumps(document))


class TestCacheStatsRoundTrip:
    def test_cache_stats_preserved(self, params5, problem53):
        outcome = run_dmw(problem53, parameters=params5,
                          rng=random.Random(0))
        assert outcome.cache_stats  # the shared cache saw traffic
        restored = serialization.loads(serialization.dumps(outcome))
        assert restored.cache_stats == outcome.cache_stats


class TestTraceEmbedding:
    @pytest.fixture()
    def traced(self, params5, problem53):
        from repro.core.trace import ProtocolTrace
        trace = ProtocolTrace()
        outcome = run_dmw(problem53, parameters=params5,
                          rng=random.Random(0), trace=trace)
        return outcome, trace

    def test_save_and_load_trace(self, tmp_path, traced):
        outcome, trace = traced
        path = tmp_path / "outcome.json"
        serialization.save(outcome, str(path), trace=trace)
        restored = serialization.load(str(path))
        assert restored.completed
        restored_trace = serialization.load_trace(str(path))
        assert restored_trace is not None
        assert list(restored_trace) == list(trace)
        assert restored_trace.kinds() == trace.kinds()

    def test_outcome_without_trace_loads_none(self, tmp_path, traced):
        outcome, _ = traced
        path = tmp_path / "outcome.json"
        serialization.save(outcome, str(path))
        assert serialization.load_trace(str(path)) is None

    def test_trace_requires_outcome_artifact(self, problem53, traced):
        _, trace = traced
        with pytest.raises(serialization.SerializationError):
            serialization.dumps(problem53, trace=trace)

    def test_load_trace_rejects_non_outcome(self, tmp_path, problem53):
        path = tmp_path / "problem.json"
        serialization.save(problem53, str(path))
        with pytest.raises(serialization.SerializationError):
            serialization.load_trace(str(path))


class TestVersionCompatibility:
    def test_version_1_outcome_still_loads(self, params5, problem53):
        """Documents written before trace/cache_stats existed must load."""
        outcome = run_dmw(problem53, parameters=params5,
                          rng=random.Random(0))
        document = json.loads(serialization.dumps(outcome))
        document["version"] = 1
        del document["cache_stats"]
        del document["trace"]
        restored = serialization.loads(json.dumps(document))
        assert restored.completed
        assert restored.schedule == outcome.schedule
        assert restored.cache_stats == {}
        assert serialization.trace_from_dict(document) is None

    def test_current_documents_carry_version_4(self, problem53):
        document = json.loads(serialization.dumps(problem53))
        assert document["version"] == serialization.FORMAT_VERSION == 4
        assert serialization.SUPPORTED_VERSIONS == (1, 2, 3, 4)


class TestNaiveOutcomeRoundTrip:
    def test_naive_outcome_serializes(self, problem53):
        from repro.core.naive import run_naive
        outcome = run_naive(problem53)
        restored = serialization.loads(serialization.dumps(outcome))
        assert restored.completed
        assert restored.schedule == outcome.schedule
        assert restored.payments == outcome.payments
        assert restored.transcripts == []
