"""Graceful degradation: per-task quarantine instead of whole-run void.

The invariant under test (ISSUE tentpole 2): with ``degraded=True`` a
fault that voids a single task's auction quarantines *that task only* —
every unaffected task's transcript is bit-identical to the fault-free
run, payments cover exactly the completed tasks, and the auditor
cross-checks the quarantine decision against the public transcript.
"""

import random

import pytest

from repro import PartialSchedule, serialization
from repro.core import (
    DMWAgent,
    DMWProtocol,
    audit_protocol_run,
)
from repro.network.faults import FaultPlan
from repro.network.simulator import SynchronousNetwork
from repro.obs.export import resilience_summary, run_report, validate_run_report
from repro.obs.metrics import registry_for_run
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture()
def problem():
    return SchedulingProblem([
        [1, 2, 3],
        [2, 1, 3],
        [3, 2, 1],
        [1, 3, 2],
        [2, 2, 2],
    ])


def make_agents(params, problem, seed=7):
    master = random.Random(seed)
    return [
        DMWAgent(i, params,
                 [int(problem.time(i, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for i in range(5)
    ]


def drop_task1_aggregates(message):
    """Corruptor voiding task 1's aggregation on every link."""
    if message.kind == "lambda_psi" and message.payload[0] == 1:
        return None
    return message


def task1_fault_plan():
    links = {(s, r): drop_task1_aggregates
             for s in range(5) for r in range(6) if s != r}
    return FaultPlan(corruptors=links)


@pytest.fixture()
def baseline(params5, problem):
    protocol = DMWProtocol(params5, make_agents(params5, problem))
    return protocol.execute(problem.num_tasks)


class TestFaultFreeEquivalence:
    def test_degraded_flag_alone_changes_nothing(self, params5, problem,
                                                 baseline):
        protocol = DMWProtocol(params5, make_agents(params5, problem))
        outcome = protocol.execute(problem.num_tasks, degraded=True)
        assert outcome.completed
        assert outcome.degraded
        assert outcome.task_aborts == {}
        assert outcome.quarantined_tasks == ()
        assert outcome.schedule.assignment == baseline.schedule.assignment
        assert list(outcome.payments) == list(baseline.payments)
        assert outcome.network_metrics.as_dict() == \
            baseline.network_metrics.as_dict()


class TestQuarantine:
    @pytest.mark.parametrize("parallel", [False, True])
    def test_faulty_task_is_quarantined_others_identical(
            self, params5, problem, baseline, parallel):
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, parallel=parallel,
                                   degraded=True)
        assert outcome.completed
        assert outcome.degraded
        assert outcome.quarantined_tasks == (1,)
        abort = outcome.task_aborts[1]
        assert abort.task == 1
        # Partial schedule: quarantined slot is None, others as fault-free.
        assert isinstance(outcome.schedule, PartialSchedule)
        assert outcome.schedule.assignment[1] is None
        assert outcome.schedule.assignment[0] == \
            baseline.schedule.assignment[0]
        assert outcome.schedule.assignment[2] == \
            baseline.schedule.assignment[2]
        # Unaffected auctions are bit-identical to the fault-free run.
        survivors = {t.task: t for t in outcome.transcripts}
        reference = {t.task: t for t in baseline.transcripts}
        assert sorted(survivors) == [0, 2]
        for task in (0, 2):
            got, want = survivors[task], reference[task]
            assert (got.winner, got.first_price, got.second_price) == \
                (want.winner, want.first_price, want.second_price)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_strict_mode_still_voids_the_run(self, params5, problem,
                                             parallel):
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, parallel=parallel)
        assert not outcome.completed
        assert outcome.abort is not None
        assert outcome.abort.task == 1
        assert outcome.schedule is None

    def test_payments_cover_only_completed_tasks(self, params5, problem,
                                                 baseline):
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, degraded=True)
        assert outcome.completed
        # Each agent's payment is the sum of second prices of the
        # completed tasks it won; the quarantined task contributes zero.
        reference = {t.task: t for t in baseline.transcripts}
        expected = [0] * params5.num_agents
        for task in (0, 2):
            expected[reference[task].winner] += reference[task].second_price
        assert list(outcome.payments) == expected

    def test_auditor_accepts_justified_quarantine(self, params5, problem):
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, degraded=True)
        report = audit_protocol_run(protocol, outcome)
        assert report.ok
        assert all(finding.check != "quarantine"
                   for finding in report.findings)


class TestPartialSchedule:
    def test_partial_schedule_round_trips_through_serialization(
            self, params5, problem):
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, degraded=True)
        document = serialization.dumps(outcome)
        restored = serialization.loads(document)
        assert restored.degraded
        assert restored.quarantined_tasks == (1,)
        assert isinstance(restored.schedule, PartialSchedule)
        assert restored.schedule.assignment == outcome.schedule.assignment
        assert restored.task_aborts[1].task == 1
        assert restored.task_aborts[1].phase == outcome.task_aborts[1].phase


class TestDegradedObservability:
    def test_run_report_resilience_section(self, params5, problem):
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, degraded=True)
        document = run_report(outcome)
        validate_run_report(document)
        resilience = document["resilience"]
        assert resilience["degraded"] is True
        assert resilience["quarantined_tasks"] == [1]
        assert "1" in resilience["task_aborts"]

    def test_resilience_summary_zero_on_clean_run(self, baseline):
        summary = resilience_summary(baseline)
        assert summary == {
            "retransmissions": 0,
            "recovered_messages": 0,
            "degraded": False,
            "quarantined_tasks": [],
            "task_aborts": {},
        }

    def test_quarantine_metrics_exported(self, params5, problem):
        network = SynchronousNetwork(5, fault_plan=task1_fault_plan(),
                                     extra_participants=1)
        protocol = DMWProtocol(params5, make_agents(params5, problem),
                               network=network)
        outcome = protocol.execute(problem.num_tasks, degraded=True)
        registry = registry_for_run(outcome)
        rendered = registry.to_prometheus()
        assert "dmw_task_quarantines_total" in rendered
        assert "dmw_run_degraded 1" in rendered
