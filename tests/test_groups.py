"""Unit tests for repro.crypto.groups."""

import random

import pytest

from repro.crypto.groups import (
    FIXTURE_SIZES,
    GroupParameters,
    SchnorrGroup,
    fixture_group,
)
from repro.crypto.modular import OperationCounter


class TestSchnorrGroup:
    def test_validates_divisibility(self):
        with pytest.raises(ValueError):
            SchnorrGroup(p=23, q=7)

    def test_validates_primality(self):
        with pytest.raises(ValueError):
            SchnorrGroup(p=23, q=22)  # 22 divides 22 but is composite
        with pytest.raises(ValueError):
            SchnorrGroup(p=25, q=3)

    def test_small_hand_group(self):
        # p=23, q=11: quadratic residues form the order-11 subgroup.
        group = SchnorrGroup(p=23, q=11)
        assert group.contains(4)  # 2^2
        assert group.contains(2)  # 2 has order 11 mod 23
        assert not group.contains(5)
        assert not group.contains(0)
        assert not group.contains(23)

    def test_exp_reduces_exponent_mod_q(self, group_small):
        group = group_small.group
        base = group_small.z1
        assert group.exp(base, 5) == group.exp(base, 5 + group.q)

    def test_mul_div_roundtrip(self, group_small):
        group = group_small.group
        a = group.exp(group_small.z1, 17)
        b = group.exp(group_small.z1, 23)
        assert group.div(group.mul(a, b), b) == a

    def test_product(self, group_small):
        group = group_small.group
        elements = [group.exp(group_small.z1, k) for k in range(1, 5)]
        assert group.product(elements) == group.exp(group_small.z1, 10)
        assert group.product([]) == 1

    def test_random_exponent_range(self, group_small, rng):
        group = group_small.group
        for _ in range(20):
            e = group.random_exponent(rng)
            assert 0 <= e < group.q
            e = group.random_exponent(rng, nonzero=True)
            assert 1 <= e < group.q

    def test_operations_are_metered(self, group_small):
        group = group_small.group
        counter = OperationCounter()
        group.exp(group_small.z1, 12345, counter)
        assert counter.exponentiations == 1
        assert counter.multiplication_work > 0


class TestGroupParameters:
    def test_generators_valid_and_distinct(self, group_small):
        group = group_small.group
        assert group.contains(group_small.z1)
        assert group.contains(group_small.z2)
        assert group_small.z1 != group_small.z2

    def test_rejects_identity_generator(self, group_small):
        with pytest.raises(ValueError):
            GroupParameters(group=group_small.group, z1=1, z2=group_small.z2)

    def test_rejects_equal_generators(self, group_small):
        with pytest.raises(ValueError):
            GroupParameters(group=group_small.group,
                            z1=group_small.z1, z2=group_small.z1)

    def test_rejects_non_member(self, group_small):
        group = group_small.group
        # Find an element outside the order-q subgroup.
        candidate = 2
        while group.contains(candidate):
            candidate += 1
        with pytest.raises(ValueError):
            GroupParameters(group=group, z1=candidate, z2=group_small.z2)

    def test_generate_fresh(self):
        params = GroupParameters.generate(16, 32, random.Random(5))
        assert params.group.q.bit_length() == 16
        assert params.group.p.bit_length() == 32

    def test_p_bits(self, group_small):
        assert group_small.group.p_bits == group_small.group.p.bit_length()


class TestFixtures:
    def test_fixture_cached(self):
        assert fixture_group("small") is fixture_group("small")

    def test_all_sizes_resolve(self):
        for size in ("tiny", "small"):
            params = fixture_group(size)
            q_bits, p_bits = FIXTURE_SIZES[size]
            assert params.group.q.bit_length() == q_bits
            assert params.group.p.bit_length() == p_bits

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            fixture_group("colossal")


class TestLargeFixture:
    def test_large_group_well_formed(self):
        """The 160/512-bit preset generates and validates (cached once
        per process; this is the size a deployment would actually use)."""
        from repro.crypto.groups import fixture_group
        params = fixture_group("large")
        group = params.group
        assert group.q.bit_length() == 160
        assert group.p.bit_length() == 512
        assert group.contains(params.z1)
        assert group.contains(params.z2)
        assert pow(params.z1, group.q, group.p) == 1
