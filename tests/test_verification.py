"""Unit tests for repro.core.verification (eqs. (7)-(9), (11), (13))."""

import pytest

from repro.core.bidding import ShareBundle, all_share_bundles, encode_bid
from repro.core.verification import (
    gamma_value,
    phi_value,
    verify_f_disclosure,
    verify_lambda_psi,
    verify_share_bundle,
)


@pytest.fixture()
def setup(params5, rng):
    """Packages and bundles for all 5 agents bidding (1, 2, 3, 2, 1)."""
    bids = [1, 2, 3, 2, 1]
    packages = [encode_bid(params5, bid, rng) for bid in bids]
    bundles = [all_share_bundles(params5, package) for package in packages]
    return bids, packages, bundles


class TestShareVerification:
    def test_honest_bundles_verify(self, params5, setup):
        _, packages, bundles = setup
        for sender in range(5):
            for receiver in range(5):
                assert verify_share_bundle(
                    params5, packages[sender].commitments,
                    params5.pseudonyms[receiver],
                    bundles[sender][receiver],
                )

    def test_corrupted_e_detected(self, params5, setup):
        _, packages, bundles = setup
        bundle = bundles[0][1]
        q = params5.group.q
        corrupted = ShareBundle((bundle.e_value + 1) % q, bundle.f_value,
                                bundle.g_value, bundle.h_value)
        assert not verify_share_bundle(params5, packages[0].commitments,
                                       params5.pseudonyms[1], corrupted)

    def test_corrupted_f_detected(self, params5, setup):
        _, packages, bundles = setup
        bundle = bundles[0][1]
        q = params5.group.q
        corrupted = ShareBundle(bundle.e_value, (bundle.f_value + 1) % q,
                                bundle.g_value, bundle.h_value)
        assert not verify_share_bundle(params5, packages[0].commitments,
                                       params5.pseudonyms[1], corrupted)

    def test_corrupted_blinding_detected(self, params5, setup):
        _, packages, bundles = setup
        bundle = bundles[2][3]
        q = params5.group.q
        for field in ("g_value", "h_value"):
            values = {
                "e_value": bundle.e_value, "f_value": bundle.f_value,
                "g_value": bundle.g_value, "h_value": bundle.h_value,
            }
            values[field] = (values[field] + 1) % q
            corrupted = ShareBundle(**values)
            assert not verify_share_bundle(params5, packages[2].commitments,
                                           params5.pseudonyms[3], corrupted)

    def test_swapped_commitments_detected(self, params5, setup):
        # Bundle from agent 0 checked against agent 1's commitments fails.
        _, packages, bundles = setup
        assert not verify_share_bundle(params5, packages[1].commitments,
                                       params5.pseudonyms[2],
                                       bundles[0][2])


class TestGammaPhi:
    def test_gamma_opens_to_e_and_h(self, params5, setup):
        _, packages, _ = setup
        group = params5.group
        alpha = params5.pseudonyms[2]
        expected = group.mul(
            group.exp(params5.z1, packages[0].e.evaluate(alpha)),
            group.exp(params5.z2, packages[0].h.evaluate(alpha)),
        )
        assert gamma_value(params5, packages[0].commitments, alpha) == expected

    def test_phi_opens_to_f_and_h(self, params5, setup):
        _, packages, _ = setup
        group = params5.group
        alpha = params5.pseudonyms[4]
        expected = group.mul(
            group.exp(params5.z1, packages[1].f.evaluate(alpha)),
            group.exp(params5.z2, packages[1].h.evaluate(alpha)),
        )
        assert phi_value(params5, packages[1].commitments, alpha) == expected


class TestLambdaPsi:
    def aggregates_for(self, params5, packages, index):
        group = params5.group
        q = group.q
        alpha = params5.pseudonyms[index]
        e_sum = sum(p.e.evaluate(alpha) for p in packages) % q
        h_sum = sum(p.h.evaluate(alpha) for p in packages) % q
        return (group.exp(params5.z1, e_sum), group.exp(params5.z2, h_sum))

    def test_honest_aggregates_verify(self, params5, setup):
        _, packages, _ = setup
        commitments = [p.commitments for p in packages]
        for index in range(5):
            lam, psi = self.aggregates_for(params5, packages, index)
            assert verify_lambda_psi(params5, commitments,
                                     params5.pseudonyms[index], lam, psi)

    def test_corrupted_lambda_detected(self, params5, setup):
        _, packages, _ = setup
        commitments = [p.commitments for p in packages]
        lam, psi = self.aggregates_for(params5, packages, 0)
        bad = params5.group.mul(lam, params5.z1)
        assert not verify_lambda_psi(params5, commitments,
                                     params5.pseudonyms[0], bad, psi)

    def test_excluding_variant(self, params5, setup):
        """Eq. (15): dividing out the winner still verifies with
        exclude=winner."""
        _, packages, _ = setup
        group = params5.group
        commitments = [p.commitments for p in packages]
        winner = 0
        index = 2
        alpha = params5.pseudonyms[index]
        lam, psi = self.aggregates_for(params5, packages, index)
        lam_prime = group.div(lam, group.exp(params5.z1,
                                             packages[winner].e.evaluate(alpha)))
        psi_prime = group.div(psi, group.exp(params5.z2,
                                             packages[winner].h.evaluate(alpha)))
        assert verify_lambda_psi(params5, commitments, alpha,
                                 lam_prime, psi_prime, exclude=winner)
        # But not with the full product:
        assert not verify_lambda_psi(params5, commitments, alpha,
                                     lam_prime, psi_prime)


class TestDisclosure:
    def test_honest_disclosure_verifies(self, params5, setup):
        _, packages, bundles = setup
        discloser = 1
        row = {
            sender: (bundles[sender][discloser].f_value,
                     bundles[sender][discloser].h_value)
            for sender in range(5)
        }
        assert verify_f_disclosure(params5, [p.commitments for p in packages],
                                   params5.pseudonyms[discloser], row)

    def test_tampered_entry_detected(self, params5, setup):
        _, packages, bundles = setup
        discloser = 1
        q = params5.group.q
        row = {
            sender: (bundles[sender][discloser].f_value,
                     bundles[sender][discloser].h_value)
            for sender in range(5)
        }
        f_value, h_value = row[3]
        row[3] = ((f_value + 1) % q, h_value)
        assert not verify_f_disclosure(params5,
                                       [p.commitments for p in packages],
                                       params5.pseudonyms[discloser], row)

    def test_incomplete_row_rejected(self, params5, setup):
        _, packages, bundles = setup
        discloser = 1
        row = {0: (bundles[0][discloser].f_value,
                   bundles[0][discloser].h_value)}
        assert not verify_f_disclosure(params5,
                                       [p.commitments for p in packages],
                                       params5.pseudonyms[discloser], row)
