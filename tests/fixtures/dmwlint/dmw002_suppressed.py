"""Fixture: DMW002 violation silenced by a line suppression."""


def commit(z1, exponent, p):
    return pow(z1, exponent, p)  # dmwlint: disable=DMW002
