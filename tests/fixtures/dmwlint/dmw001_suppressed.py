"""Fixture: DMW001 violation silenced by a line suppression."""
import random


def draw_nonce():
    return random.randrange(1 << 32)  # dmwlint: disable=DMW001
