"""Fixture: Message mutated after send (DMW005)."""


def broadcast_result(network, message):
    network.send(0, message)
    message.payload["price"] = 7
