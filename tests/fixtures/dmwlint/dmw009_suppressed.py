"""Suppressed fixture for DMW009: the violations are acknowledged."""


class BrokenAuctionMachine:
    def __init__(self, transport):
        self.transport = transport

    def send_bidding(self, commitments, bundle):
        self.transport.publish(0, "lambda_psi", commitments)  # dmwlint: disable=DMW009
        self.transport.send(0, 1, "share_bundle", bundle)  # dmwlint: disable=DMW009

    def send_aggregates(self, value):
        self.transport.publish(0, "lambda_psi", value)
        self.transport.publish(0, "side_channel", value)  # dmwlint: disable=DMW009


def run_round(machine, commitments, bundle, value):
    machine.send_aggregates(value)
    machine.send_bidding(commitments, bundle)  # dmwlint: disable=DMW009
