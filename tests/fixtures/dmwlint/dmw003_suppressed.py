"""Fixture: DMW003 violation silenced by a line suppression."""


def combine(share_a, share_b):
    return share_a + share_b  # dmwlint: disable=DMW003
