"""Fixture: DMW007 violation silenced by a line suppression."""


def evaluate(share, exponent, modulus):
    return pow(share, exponent, modulus)  # dmwlint: disable=DMW007
