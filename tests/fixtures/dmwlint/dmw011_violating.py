"""Violating fixture for DMW011: task-path writes to module globals."""

from concurrent.futures import ProcessPoolExecutor

_SPEC = None
_RESULTS = {}


def _init(spec):
    # Sanctioned: the initializer is the one allowed writer.
    global _SPEC
    _SPEC = spec


def _record(task):
    _RESULTS[task] = task


def _work(task):
    global _SPEC
    _SPEC = task
    _record(task)
    return task


def run_pool(spec, tasks):
    with ProcessPoolExecutor(initializer=_init, initargs=(spec,)) as pool:
        futures = [pool.submit(_work, task) for task in tasks]
    return [future.result() for future in futures]
