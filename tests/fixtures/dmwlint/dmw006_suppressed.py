"""Fixture: DMW006 violation silenced by a line suppression."""


def hit_rate(hits, total):
    return hits / total  # dmwlint: disable=DMW006
