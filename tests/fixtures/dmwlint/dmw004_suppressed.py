"""Fixture: DMW004 violation silenced by a line suppression."""


def log_outcome(bid, logger):
    logger.info("agent bid %s", bid)  # dmwlint: disable=DMW004
