"""Fixture: DMW005 violation silenced by a line suppression."""


def broadcast_result(network, message):
    network.send(0, message)
    message.payload["price"] = 7  # dmwlint: disable=DMW005
