"""Fixture: raw pow() on a commitment base (DMW002)."""


def commit(z1, exponent, p):
    return pow(z1, exponent, p)
