"""Clean fixture for DMW010: coroutines only wait awaitably."""

import asyncio


def load_config(path):
    # Synchronous file I/O outside any coroutine is fine.
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


async def wait_for_round(delay):
    await asyncio.sleep(delay)


async def run(delay):
    await wait_for_round(delay)
