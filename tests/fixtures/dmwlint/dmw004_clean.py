"""Fixture: reveal routed through declassify (DMW004-clean)."""

from repro.crypto.secret import declassify


def log_outcome(bid, logger):
    revealed = declassify(bid, reason="sanctioned reveal: second price y**")
    logger.info("second price %s", revealed)


def report_shape(num_bids):
    # `num_bids` is public protocol data, not a secret.
    print(num_bids)
