"""Fixture: machine steps routed through the transport (DMW008-clean)."""


class CleanMachine:
    def __init__(self, agent):
        self.agent = agent
        self.index = agent.index

    def send_bidding(self, task, transport):
        commitments = self.agent.begin_task(task)
        transport.publish(self.index, "commitments", (task, commitments))

    def recv_bidding(self, transport):
        for message in transport.receive(self.index, "commitments"):
            self.agent.receive_commitments(*message.payload)

    def act_check(self, task):
        return self.agent.check_shares(task)
