"""Fixture: arithmetic bypassing the backend layer (DMW007)."""

import gmpy2


def commit_direct(value, exponent, modulus):
    return gmpy2.powmod(value, exponent, modulus)


def evaluate(share, exponent, modulus):
    return pow(share, exponent, modulus)
