"""Fixture: exponentiation through the fastexp fast path (DMW002-clean)."""


def commit(group_parameters, exponent, counter):
    return group_parameters.exp_z1(exponent, counter)


def square(steps):
    # Two-argument pow is plain integer arithmetic, not modular exp.
    return pow(steps, 2)
