"""Fixture: injected per-run RNG (DMW001-clean)."""
import random


def draw_nonce(rng: random.Random) -> int:
    return rng.randrange(1 << 32)


def fresh_stream(seed: int) -> random.Random:
    return random.Random(seed)
