"""Fixture: global `random` use (DMW001) — two violations."""
import random


def draw_nonce():
    return random.randrange(1 << 32)


def fresh_stream():
    return random.Random()
