"""Fixture: exact integer arithmetic (DMW006-clean)."""


def floor_average(total, count):
    return total // count


def bit_size(value):
    return value.bit_length()
