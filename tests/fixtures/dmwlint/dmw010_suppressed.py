"""Suppressed fixture for DMW010: acknowledged blocking calls."""

import time


def slow_helper(delay):
    time.sleep(delay)


async def wait_for_round(delay):
    time.sleep(delay)  # dmwlint: disable=DMW010


async def run(delay):
    slow_helper(delay)  # dmwlint: disable=DMW010
