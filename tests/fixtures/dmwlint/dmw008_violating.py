"""Fixture: agent step calling the network object directly (DMW008)."""


class LeakyAgent:
    def __init__(self, index, network):
        self.index = index
        self.network = network

    def begin_task(self, task):
        self.network.publish(self.index, "commitments", task)
        self.network.send(self.index, 0, "share_bundle", task)

    def resolve(self, network):
        network.deliver()
        return network.receive(self.index)
