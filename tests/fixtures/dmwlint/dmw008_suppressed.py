"""Fixture: DMW008 violation silenced by a line suppression."""


class LegacyAgent:
    def __init__(self, index, network):
        self.index = index
        self.network = network

    def begin_task(self, task):
        self.network.publish(self.index, "commitments", task)  # dmwlint: disable=DMW008
