"""Violating fixture for DMW009: kinds and steps out of schedule order."""


class BrokenAuctionMachine:
    """Implements enough schedule steps to count as a machine class."""

    def __init__(self, transport):
        self.transport = transport

    def send_bidding(self, commitments, bundle):
        # Wrong-phase kind: lambda_psi belongs to the aggregates phase.
        self.transport.publish(0, "lambda_psi", commitments)
        self.transport.send(0, 1, "share_bundle", bundle)

    def send_aggregates(self, value):
        self.transport.publish(0, "lambda_psi", value)
        # Unknown kind: not declared anywhere in the round schedule.
        self.transport.publish(0, "side_channel", value)


def run_round(machine, commitments, bundle, value):
    machine.send_aggregates(value)
    machine.send_bidding(commitments, bundle)
