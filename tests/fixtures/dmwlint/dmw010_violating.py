"""Violating fixture for DMW010: blocking calls inside coroutines."""

import time
import urllib.request


def fetch_sync(url):
    # Blocking on its own is fine in sync code; the violation is the
    # coroutine one hop above that calls this helper.
    return urllib.request.urlopen(url)


async def wait_for_round(delay):
    time.sleep(delay)


async def read_state(path):
    handle = open(path)
    return handle.read()


async def fetch(url):
    return fetch_sync(url)
