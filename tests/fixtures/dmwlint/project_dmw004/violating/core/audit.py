"""Final hop: the sink, two calls away from the secret source."""


def emit_record(value):
    print(value)
