"""Entry point: a secret bid handed to an innocently-named helper.

No sink appears in this module — the leak only exists across the
two-hop helper chain ``relay_amount -> emit_record -> print``, which
the intra-function DMW004 pass provably cannot see.
"""

from .relay import relay_amount


def submit_bid(bid):
    relay_amount(bid)
