"""Middle hop: the parameter name carries no secrecy hint."""

from .audit import emit_record


def relay_amount(amount):
    emit_record(amount)
