"""Middle hop: identical to the violating twin."""

from .audit import emit_record


def relay_amount(amount):
    emit_record(amount)
