"""Final hop: identical to the violating twin."""


def emit_record(value):
    print(value)
