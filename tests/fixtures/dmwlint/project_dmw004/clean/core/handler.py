"""Entry point: the reveal passes through the declassify() gate."""

from repro.crypto.secret import declassify

from .relay import relay_amount


def submit_bid(bid):
    relay_amount(declassify(bid))
