"""Fixture: reduced field arithmetic (DMW003-clean)."""

from repro.crypto.modular import mod_mul


def combine(share_a, share_b, q):
    return (share_a + share_b) % q


def weigh(coeff, scalar, p, counter):
    return mod_mul(coeff, scalar, p, counter)


def tally(num_shares, batch_index):
    # Index/size arithmetic is exempt by naming convention.
    return num_shares + batch_index + 1
