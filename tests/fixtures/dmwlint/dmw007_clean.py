"""Fixture: arithmetic routed through the pluggable backend (DMW007-clean)."""

from repro.crypto import backend


def commit_direct(value, exponent, modulus):
    return backend.ACTIVE.powmod(value, exponent, modulus)


def invert(share, modulus):
    return backend.ACTIVE.invert(share, modulus)


def square(steps):
    # Two-argument pow is plain integer arithmetic, not modular exp.
    return pow(steps, 2)
