"""Clean fixture for DMW011: shard state flows through return values."""

from concurrent.futures import ProcessPoolExecutor

_SPEC = None


def _init(spec):
    # The initializer installs per-process state once, before any task.
    global _SPEC
    _SPEC = spec


def _work(task):
    # Reads of module state and writes to locals are fine.
    payload = {"task": task, "spec": _SPEC}
    return payload


def run_pool(spec, tasks):
    results = []
    with ProcessPoolExecutor(initializer=_init, initargs=(spec,)) as pool:
        for task in tasks:
            results.append(pool.submit(_work, task))
    return [future.result() for future in results]
