"""Clean fixture for DMW009: steps and kinds follow the round schedule."""


class OrderlyAuctionMachine:
    def __init__(self, transport):
        self.transport = transport

    def send_bidding(self, commitments, bundle):
        self.transport.publish(0, "commitments", commitments)
        self.transport.send(0, 1, "share_bundle", bundle)

    def send_aggregates(self, value):
        self.transport.publish(0, "lambda_psi", value)

    def send_disclosure(self, share):
        self.transport.publish(0, "f_disclosure", share)
        # Complaint kinds are conditional sub-rounds, exempt from order.
        self.transport.publish(0, "disclosure_complaint", share)

    def send_second_price(self, price):
        self.transport.publish(0, "second_price", price)


def run_round(machine, commitments, bundle, value, share):
    machine.send_bidding(commitments, bundle)
    machine.send_aggregates(value)
    machine.send_disclosure(share)


def run_tasks(machine, tasks, commitments, bundle, value, share):
    # Each task restarts the schedule: bidding after the previous task's
    # second price is a new round, not a reordering.
    for _task in tasks:
        run_round(machine, commitments, bundle, value, share)
        machine.send_second_price(0)
