"""Suppressed fixture for DMW011: acknowledged shared-state writes."""

from concurrent.futures import ProcessPoolExecutor

_SPEC = None
_RESULTS = {}


def _init(spec):
    global _SPEC
    _SPEC = spec


def _work(task):
    global _SPEC
    _SPEC = task  # dmwlint: disable=DMW011
    _RESULTS[task] = task  # dmwlint: disable=DMW011
    return task


def run_pool(spec, tasks):
    with ProcessPoolExecutor(initializer=_init, initargs=(spec,)) as pool:
        futures = [pool.submit(_work, task) for task in tasks]
    return [future.result() for future in futures]
