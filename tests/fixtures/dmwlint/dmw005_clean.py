"""Fixture: payload finalized before send (DMW005-clean)."""


def broadcast_result(network, build_message, payload):
    payload["price"] = 7
    message = build_message(payload)
    network.send(0, message)
    return message
