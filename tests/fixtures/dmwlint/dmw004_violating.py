"""Fixture: secret value reaching log/print sinks (DMW004)."""


def log_outcome(bid, logger):
    logger.info("agent bid %s", bid)


def dump_state(true_value):
    print(true_value)
