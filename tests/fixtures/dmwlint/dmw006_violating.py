"""Fixture: float arithmetic inside crypto code (DMW006) — three hits."""


def average_share(total, count):
    return total / count


def scale(value):
    return float(value) * 0.5
