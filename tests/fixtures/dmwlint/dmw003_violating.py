"""Fixture: field arithmetic without reduction (DMW003)."""


def combine(share_a, share_b):
    total = share_a + share_b
    return total
