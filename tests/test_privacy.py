"""Privacy tests: Theorem 10's collusion thresholds, measured."""

import pytest

from repro.analysis.privacy import (
    attack_shares,
    exposure_by_coalition_size,
    run_collusion_experiment,
)
from repro.core.parameters import DMWParameters
from repro.crypto.secretsharing import Share
from repro.scheduling.problem import SchedulingProblem


@pytest.fixture()
def instance(params5):
    problem = SchedulingProblem([
        [1, 3],
        [2, 2],
        [3, 1],
        [2, 3],
        [3, 2],
    ])
    return problem, params5


class TestCollusionExperiment:
    def test_small_coalitions_expose_nothing(self, instance):
        """Coalitions of size <= c + 1 learn no bid at all."""
        problem, params = instance
        for size in (1, 2):  # c = 1
            results = run_collusion_experiment(problem, params,
                                               coalition=list(range(size)))
            assert all(not result.exposed for result in results)

    def test_exposure_threshold_is_degree_plus_one(self, instance):
        """A bid y (degree tau = sigma - y) falls to exactly tau + 1
        colluders — the 'inversely proportional' clause of Theorem 10."""
        problem, params = instance
        for size in range(1, 5):
            results = run_collusion_experiment(problem, params,
                                               coalition=list(range(size)))
            for result in results:
                expected = size >= result.required_colluders
                assert result.exposed == expected, result

    def test_exposed_bid_is_correct(self, instance):
        problem, params = instance
        results = run_collusion_experiment(problem, params,
                                           coalition=[0, 1, 2, 3])
        exposed = [r for r in results if r.exposed]
        assert exposed  # 4 colluders do break the weakest (highest) bids
        for result in exposed:
            assert result.inferred_bid == result.true_bid

    def test_lower_bids_need_more_colluders(self, instance):
        problem, params = instance
        results = run_collusion_experiment(problem, params, coalition=[0])
        by_bid = {}
        for result in results:
            by_bid[result.true_bid] = result.required_colluders
        bids = sorted(by_bid)
        thresholds = [by_bid[b] for b in bids]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_sweep_is_monotone(self, instance):
        problem, params = instance
        rows = exposure_by_coalition_size(problem, params)
        exposed_counts = [row[1] for row in rows]
        # Exposure never decreases with coalition size... but note the
        # target set shrinks as the coalition grows, so compare fractions.
        fractions = [row[1] / row[2] for row in rows]
        assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] == 0.0

    def test_coalition_members_not_attacked(self, instance):
        problem, params = instance
        results = run_collusion_experiment(problem, params, coalition=[0, 1])
        targets = {result.target for result in results}
        assert targets == {2, 3, 4}


class TestAttackPrimitive:
    def test_attack_with_full_shares_succeeds(self, params5, rng):
        from repro.core.bidding import encode_bid
        package = encode_bid(params5, 3, rng)
        true_degree = params5.degree_for_bid(3)
        shares = [Share(alpha, package.e.evaluate(alpha))
                  for alpha in params5.pseudonyms]
        exposed, inferred = attack_shares(params5, shares, true_degree)
        assert exposed
        assert inferred == 3

    def test_attack_with_c_shares_fails(self, params5, rng):
        from repro.core.bidding import encode_bid
        package = encode_bid(params5, 3, rng)
        true_degree = params5.degree_for_bid(3)
        shares = [Share(alpha, package.e.evaluate(alpha))
                  for alpha in params5.pseudonyms[:params5.fault_bound]]
        exposed, _ = attack_shares(params5, shares, true_degree)
        assert not exposed

    def test_losing_bid_values_not_inferable_from_transcript(self, instance):
        """The transcript itself (first/second price + winner) reveals no
        third-lowest-or-higher bid: the attack on remaining agents with an
        empty coalition must be blind."""
        problem, params = instance
        results = run_collusion_experiment(problem, params, coalition=[0])
        # A single colluder (c = 1) exposes nothing.
        assert all(not r.exposed for r in results)
