"""Unit tests for repro.mechanisms.optimal (exact min-makespan)."""

import itertools
import random

import pytest

from repro.mechanisms.optimal import (
    greedy_makespan_schedule,
    makespan_approximation_ratio,
    optimal_makespan_schedule,
)
from repro.mechanisms.minwork import MinWork
from repro.scheduling import workloads
from repro.scheduling.problem import SchedulingProblem
from repro.scheduling.schedule import Schedule


def brute_force_optimum(problem):
    best = None
    for combo in itertools.product(range(problem.num_agents),
                                   repeat=problem.num_tasks):
        makespan = Schedule(list(combo), problem.num_agents).makespan(problem)
        best = makespan if best is None else min(best, makespan)
    return best


class TestOptimal:
    def test_matches_brute_force_on_random_instances(self):
        rng = random.Random(9)
        for _ in range(8):
            problem = workloads.uniform_random(3, 4, rng)
            _, optimum = optimal_makespan_schedule(problem)
            assert optimum == pytest.approx(brute_force_optimum(problem))

    def test_trivial_single_task(self):
        problem = SchedulingProblem([[5], [3]])
        schedule, optimum = optimal_makespan_schedule(problem)
        assert optimum == 3
        assert schedule.agent_of(0) == 1

    def test_spreads_identical_tasks(self):
        problem = SchedulingProblem([[1, 1], [1, 1]])
        _, optimum = optimal_makespan_schedule(problem)
        assert optimum == 1

    def test_schedule_is_consistent_with_reported_makespan(self):
        rng = random.Random(10)
        problem = workloads.uniform_random(3, 5, rng)
        schedule, optimum = optimal_makespan_schedule(problem)
        assert schedule.makespan(problem) == pytest.approx(optimum)

    def test_node_limit_raises(self):
        rng = random.Random(11)
        problem = workloads.uniform_random(4, 8, rng)
        with pytest.raises(RuntimeError):
            optimal_makespan_schedule(problem, node_limit=0)


class TestGreedy:
    def test_greedy_is_feasible(self):
        rng = random.Random(12)
        problem = workloads.uniform_random(4, 6, rng)
        schedule = greedy_makespan_schedule(problem)
        assert schedule.num_tasks == 6

    def test_greedy_not_worse_than_single_machine(self):
        rng = random.Random(13)
        problem = workloads.uniform_random(3, 5, rng)
        schedule = greedy_makespan_schedule(problem)
        single = min(sum(problem.agent_times(i)) for i in range(3))
        assert schedule.makespan(problem) <= single


class TestRatio:
    def test_optimal_schedule_has_ratio_one(self):
        rng = random.Random(14)
        problem = workloads.uniform_random(3, 4, rng)
        schedule, _ = optimal_makespan_schedule(problem)
        assert makespan_approximation_ratio(problem, schedule) == \
            pytest.approx(1.0)

    def test_minwork_ratio_bounded_by_n(self):
        """The n-approximation claim (experiment E8, small scale)."""
        rng = random.Random(15)
        for _ in range(5):
            problem = workloads.uniform_random(3, 4, rng)
            schedule = MinWork().allocate(problem)
            ratio = makespan_approximation_ratio(problem, schedule)
            assert 1.0 - 1e-9 <= ratio <= problem.num_agents + 1e-9

    def test_adversarial_instance_approaches_n(self):
        problem = workloads.adversarial_for_minwork(4)
        schedule = MinWork().allocate(problem)
        ratio = makespan_approximation_ratio(problem, schedule)
        assert ratio == pytest.approx(4.0, rel=1e-3)
