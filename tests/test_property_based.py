"""Property-based tests (hypothesis) on the core invariants.

Each property is a theorem-shaped statement the paper relies on:

* interpolation round-trips and degree resolution are exact;
* degree-encoded sharing sums resolve to the max encoded degree;
* Pedersen commitments verify exactly their own openings;
* MinWork is truthful and satisfies voluntary participation;
* DMW's distributed outcome equals centralized MinWork's (faithful
  implementation of the same social choice function).
"""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.parameters import DMWParameters
from repro.core.protocol import run_dmw
from repro.crypto.groups import fixture_group
from repro.crypto.interpolation import interpolate_at_zero, resolve_degree
from repro.crypto.polynomials import Polynomial, sum_polynomials
from repro.crypto.secretsharing import DegreeEncodingScheme, ShamirScheme
from repro.mechanisms.base import truthful_bids, unilateral_deviation
from repro.mechanisms.minwork import MinWork
from repro.scheduling.problem import SchedulingProblem
from repro.scheduling.schedule import Schedule

Q = 2 ** 61 - 1  # Mersenne prime: fast plain-int field


# -- strategies ---------------------------------------------------------------

def polynomials(min_degree=1, max_degree=8, zero_constant=True):
    return st.builds(
        lambda degree, seed: Polynomial.random(
            degree, Q, random.Random(seed),
            zero_constant_term=zero_constant),
        st.integers(min_degree, max_degree),
        st.integers(0, 2 ** 32),
    )


bid_matrices = st.integers(2, 5).flatmap(
    lambda n: st.integers(1, 3).flatmap(
        lambda m: st.lists(
            st.lists(st.floats(0.5, 99.5, allow_nan=False), min_size=m,
                     max_size=m),
            min_size=n, max_size=n,
        )
    )
)


# -- interpolation / sharing properties ----------------------------------------

class TestInterpolationProperties:
    @given(polynomials(zero_constant=False))
    def test_interpolation_recovers_constant_term(self, poly):
        points = list(range(1, poly.degree + 2))
        values = [poly.evaluate(x) for x in points]
        assert interpolate_at_zero(points, values, Q) == poly.coefficient(0)

    @given(polynomials())
    def test_degree_resolution_exact(self, poly):
        points = list(range(1, poly.degree + 3))
        values = [poly.evaluate(x) for x in points]
        assert resolve_degree(points, values, Q) == poly.degree

    @given(st.lists(polynomials(max_degree=6), min_size=1, max_size=5))
    def test_sum_degree_is_max(self, polys):
        total = sum_polynomials(polys, Q)
        # Leading terms cancel with probability ~1/Q: astronomically rare.
        expected = max(p.degree for p in polys)
        points = list(range(1, expected + 3))
        values = [total.evaluate(x) for x in points]
        assert resolve_degree(points, values, Q) == expected

    @given(polynomials(), st.integers(1, 100))
    def test_evaluation_additive(self, poly, x):
        other = Polynomial([0, 1, 2, 3], Q)
        assert (poly + other).evaluate(x) == \
            (poly.evaluate(x) + other.evaluate(x)) % Q


class TestSharingProperties:
    @given(st.integers(0, Q - 1), st.integers(2, 6), st.integers(0, 2 ** 32))
    def test_shamir_roundtrip(self, secret, threshold, seed):
        scheme = ShamirScheme(Q, threshold)
        points = list(range(1, threshold + 4))
        shares = scheme.share(secret, points, random.Random(seed))
        assert scheme.reconstruct(shares[:threshold]) == secret

    @given(st.integers(1, 8), st.integers(0, 2 ** 32))
    def test_degree_encoding_roundtrip(self, degree, seed):
        scheme = DegreeEncodingScheme(Q, list(range(1, 11)))
        sharing = scheme.share_degree(degree, random.Random(seed))
        assert scheme.resolve(list(sharing.shares)) == degree

    @given(st.lists(st.integers(1, 8), min_size=2, max_size=5),
           st.integers(0, 2 ** 32))
    def test_summed_sharings_reveal_only_max(self, degrees, seed):
        rng = random.Random(seed)
        scheme = DegreeEncodingScheme(Q, list(range(1, 12)))
        sharings = [scheme.share_degree(d, rng) for d in degrees]
        summed = scheme.sum_shares([s.shares for s in sharings])
        assert scheme.resolve(summed) == max(degrees)


class TestCommitmentProperties:
    @given(st.integers(0, 2 ** 40), st.integers(0, 2 ** 40),
           st.integers(1, 2 ** 40))
    def test_commitment_binding_on_distinct_values(self, value, blinding,
                                                   delta):
        from repro.crypto.commitments import PedersenCommitter
        params = fixture_group("small")
        committer = PedersenCommitter(params)
        q = params.group.q
        assume((value + delta) % q != value % q)
        commitment = committer.commit(value, blinding)
        assert committer.verify(commitment, value, blinding)
        assert not committer.verify(commitment, value + delta, blinding)


# -- mechanism properties -------------------------------------------------------

class TestMinWorkProperties:
    @given(bid_matrices, st.integers(0, 2 ** 32))
    @settings(max_examples=40, deadline=None)
    def test_truthfulness_under_random_deviation(self, rows, seed):
        problem = SchedulingProblem(rows)
        rng = random.Random(seed)
        mechanism = MinWork()
        truthful = truthful_bids(problem)
        baseline = mechanism.run(truthful)
        agent = rng.randrange(problem.num_agents)
        deviation = [rng.uniform(0.5, 120) for _ in range(problem.num_tasks)]
        deviated = mechanism.run(
            unilateral_deviation(truthful, agent, deviation))
        assert deviated.utility(agent, problem) <= \
            baseline.utility(agent, problem) + 1e-9

    @given(bid_matrices)
    @settings(max_examples=40, deadline=None)
    def test_voluntary_participation(self, rows):
        problem = SchedulingProblem(rows)
        result = MinWork().run(truthful_bids(problem))
        for agent in range(problem.num_agents):
            assert result.utility(agent, problem) >= -1e-9

    @given(bid_matrices)
    @settings(max_examples=40, deadline=None)
    def test_total_work_minimality(self, rows):
        problem = SchedulingProblem(rows)
        schedule = MinWork().allocate(problem)
        best = sum(min(problem.task_times(j))
                   for j in range(problem.num_tasks))
        assert schedule.total_work(problem) == pytest.approx(best)


# -- the headline end-to-end property --------------------------------------------

class TestDMWEquivalenceProperty:
    @given(st.integers(4, 6), st.integers(1, 2), st.integers(0, 2 ** 32))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dmw_reproduces_minwork(self, n, m, seed):
        """Experiment E9: the faithful-implementation identity."""
        group = fixture_group("small")
        params = DMWParameters.generate(n, fault_bound=1,
                                        group_parameters=group)
        rng = random.Random(seed)
        rows = [[rng.choice(params.bid_values) for _ in range(m)]
                for _ in range(n)]
        problem = SchedulingProblem(rows)
        outcome = run_dmw(problem, parameters=params,
                          rng=random.Random(seed + 1))
        result = MinWork().run(truthful_bids(problem))
        assert outcome.completed
        assert outcome.schedule == result.schedule
        assert list(outcome.payments) == list(result.payments)


class TestAuctionProperties:
    @given(st.lists(st.integers(1, 4), min_size=6, max_size=6),
           st.integers(1, 3), st.integers(0, 2 ** 32))
    @settings(max_examples=25, deadline=None)
    def test_distributed_auction_matches_centralized(self, valuations, m,
                                                     seed):
        """The Kikuchi substrate: distributed == centralized (M+1)st."""
        from repro.auctions import (AuctionParameters,
                                    mplus1_price_auction,
                                    run_distributed_auction)
        params = AuctionParameters.generate(6, collusion_bound=1)
        result, _ = run_distributed_auction(valuations, m,
                                            parameters=params,
                                            rng=random.Random(seed))
        expected = mplus1_price_auction(valuations, m)
        assert result.winners == expected.winners
        assert result.price == expected.price

    @given(st.lists(st.integers(1, 9), min_size=3, max_size=7),
           st.integers(1, 9), st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_mplus1_truthfulness_property(self, valuations, deviation,
                                          bidder_seed):
        """No unilateral misreport beats truth in the (M+1)st auction."""
        from repro.auctions import mplus1_price_auction
        num_items = 1 + bidder_seed % (len(valuations) - 1)
        bidder = bidder_seed % len(valuations)
        truthful = mplus1_price_auction(valuations, num_items)
        bids = list(valuations)
        bids[bidder] = deviation
        deviated = mplus1_price_auction(bids, num_items)
        valuation = valuations[bidder]
        assert deviated.utility(bidder, valuation) <= \
            truthful.utility(bidder, valuation) + 1e-9


class TestSerializationProperties:
    @given(bid_matrices)
    @settings(max_examples=30, deadline=None)
    def test_problem_roundtrip(self, rows):
        from repro import serialization
        problem = SchedulingProblem(rows)
        assert serialization.loads(serialization.dumps(problem)) == problem

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_schedule_roundtrip(self, assignment):
        from repro import serialization
        schedule = Schedule(assignment, num_agents=4)
        assert serialization.loads(
            serialization.dumps(schedule)) == schedule


class TestFaithfulnessProperty:
    @given(st.integers(0, 4), st.integers(0, 12), st.integers(0, 2 ** 32))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_deviation_never_gains(self, deviant_index,
                                          strategy_index, seed):
        """Property form of Theorem 5: any (deviator, strategy, instance)
        triple yields gain <= 0 and no negative honest bystander."""
        from repro.analysis.faithfulness import evaluate_deviation
        from repro.core.deviant import standard_deviations
        params = DMWParameters.generate(
            5, fault_bound=1, group_parameters=fixture_group("small"))
        rng = random.Random(seed)
        rows = [[rng.choice(params.bid_values) for _ in range(2)]
                for _ in range(5)]
        problem = SchedulingProblem(rows)
        strategies = sorted(standard_deviations().items())
        name, factory = strategies[strategy_index % len(strategies)]
        outcome = evaluate_deviation(problem, params, name, factory,
                                     deviant_index, seed=seed)
        assert outcome.gain <= 1e-9, (name, outcome)
        assert outcome.min_honest_utility >= -1e-9, (name, outcome)
