"""Unit tests for repro.core.payments (the Phase IV unanimity escrow)."""

import pytest

from repro.core.payments import PaymentInfrastructure


class TestSubmission:
    def test_valid_claim_accepted(self):
        infra = PaymentInfrastructure(3)
        infra.submit_claim(0, [1.0, 2.0, 0.0])

    def test_invalid_agent_rejected(self):
        infra = PaymentInfrastructure(3)
        with pytest.raises(ValueError):
            infra.submit_claim(3, [1.0, 2.0, 0.0])
        with pytest.raises(ValueError):
            infra.submit_claim(-1, [1.0, 2.0, 0.0])

    def test_wrong_length_rejected(self):
        infra = PaymentInfrastructure(3)
        with pytest.raises(ValueError):
            infra.submit_claim(0, [1.0])

    def test_needs_agents(self):
        with pytest.raises(ValueError):
            PaymentInfrastructure(0)


class TestDecision:
    def test_unanimous_claims_dispense(self):
        infra = PaymentInfrastructure(3)
        for agent in range(3):
            infra.submit_claim(agent, [1.0, 0.0, 2.0])
        decision = infra.decide()
        assert decision.dispensed
        assert decision.payments == (1.0, 0.0, 2.0)
        assert decision.conflicting_agents == ()

    def test_missing_claim_blocks(self):
        infra = PaymentInfrastructure(3)
        infra.submit_claim(0, [1.0, 0.0, 2.0])
        infra.submit_claim(2, [1.0, 0.0, 2.0])
        decision = infra.decide()
        assert not decision.dispensed
        assert decision.payments is None
        assert decision.conflicting_agents == (1,)

    def test_conflicting_claim_blocks(self):
        infra = PaymentInfrastructure(3)
        infra.submit_claim(0, [1.0, 0.0, 2.0])
        infra.submit_claim(1, [9.0, 0.0, 2.0])  # inflated
        infra.submit_claim(2, [1.0, 0.0, 2.0])
        decision = infra.decide()
        assert not decision.dispensed
        assert decision.conflicting_agents == (1,)

    def test_minority_identified(self):
        infra = PaymentInfrastructure(4)
        infra.submit_claim(0, [1.0, 0.0, 0.0, 0.0])
        infra.submit_claim(1, [1.0, 0.0, 0.0, 0.0])
        infra.submit_claim(2, [1.0, 0.0, 0.0, 0.0])
        infra.submit_claim(3, [5.0, 0.0, 0.0, 0.0])
        decision = infra.decide()
        assert decision.conflicting_agents == (3,)

    def test_resubmission_overwrites(self):
        infra = PaymentInfrastructure(2)
        infra.submit_claim(0, [1.0, 0.0])
        infra.submit_claim(0, [2.0, 0.0])
        infra.submit_claim(1, [2.0, 0.0])
        assert infra.decide().dispensed

    def test_float_normalization(self):
        infra = PaymentInfrastructure(2)
        infra.submit_claim(0, [1, 0])      # ints
        infra.submit_claim(1, [1.0, 0.0])  # floats
        assert infra.decide().dispensed


class TestTieBreak:
    """The majority vector must be picked deterministically.  (Regression:
    with counts tied, the chosen "majority" depended on dict insertion
    order — i.e. on claim arrival order — so the set of agents blamed as
    conflicting could differ between otherwise identical runs.)"""

    def test_two_two_split_is_deterministic(self):
        low = [1.0, 0.0, 0.0, 0.0]
        high = [5.0, 0.0, 0.0, 0.0]
        infra = PaymentInfrastructure(4)
        infra.submit_claim(0, low)
        infra.submit_claim(1, low)
        infra.submit_claim(2, high)
        infra.submit_claim(3, high)
        decision = infra.decide()
        assert not decision.dispensed
        # Counts tied 2-2: the lexicographically smaller vector is the
        # canonical majority, so the high claimants are the minority.
        assert decision.conflicting_agents == (2, 3)

    def test_split_is_order_independent(self):
        low = [1.0, 0.0, 0.0, 0.0]
        high = [5.0, 0.0, 0.0, 0.0]
        for order in ([0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]):
            infra = PaymentInfrastructure(4)
            for agent in order:
                infra.submit_claim(agent, high if agent >= 2 else low)
            assert infra.decide().conflicting_agents == (2, 3)

    def test_count_still_beats_lexicographic_order(self):
        low = [1.0, 0.0, 0.0]
        high = [5.0, 0.0, 0.0]
        infra = PaymentInfrastructure(3)
        infra.submit_claim(0, high)
        infra.submit_claim(1, high)
        infra.submit_claim(2, low)
        decision = infra.decide()
        # high wins 2-1 despite being lexicographically larger.
        assert decision.conflicting_agents == (2,)

    def test_three_way_tie_picks_smallest_vector(self):
        infra = PaymentInfrastructure(3)
        infra.submit_claim(0, [3.0, 0.0, 0.0])
        infra.submit_claim(1, [1.0, 0.0, 0.0])
        infra.submit_claim(2, [2.0, 0.0, 0.0])
        decision = infra.decide()
        assert decision.conflicting_agents == (0, 2)
