#!/usr/bin/env python
"""Privacy demonstration: mounting the collusion attack of Theorem 10.

DMW hides losing bids behind degree-encoded secret sharing.  A coalition
of agents can pool the shares it legitimately received and try to
reconstruct a target's bid polynomial.  Theorem 10 says the attack fails
when fewer than ``c`` agents collude, and that lower (better) bids need
*more* colluders to expose.

This script runs the honest protocol, then mounts the attack with every
coalition size, reporting which bids fall and confirming the measured
thresholds match the theory: a bid ``y`` (encoded at degree
``tau = sigma - y``) falls to exactly ``tau + 1`` colluders.

Run:  python examples/privacy_collusion.py
"""

import random

from repro.analysis import render_table, run_collusion_experiment
from repro.core import DMWParameters
from repro.scheduling import workloads


def main():
    parameters = DMWParameters.generate(6, fault_bound=1)
    rng = random.Random(17)
    problem = workloads.random_discrete(6, 2, parameters.bid_values, rng)
    print("Parameters: n=6, c=%d, W=%s, sigma=%d"
          % (parameters.fault_bound, list(parameters.bid_values),
             parameters.sigma))
    print("A bid y is encoded at degree tau = sigma - y; exposing it "
          "takes tau + 1 colluders.\n")

    print("True values (private!):")
    for agent, row in enumerate(problem.times):
        print("  A%d: %s" % (agent + 1, [int(v) for v in row]))

    for size in range(1, 6):
        coalition = list(range(size))
        results = run_collusion_experiment(problem, parameters, coalition)
        rows = []
        for result in results:
            rows.append([
                "A%d" % (result.target + 1),
                result.task,
                result.true_bid,
                result.required_colluders,
                result.exposed,
                result.inferred_bid if result.exposed else "-",
            ])
        exposed = sum(1 for r in results if r.exposed)
        print("\nCoalition {A1..A%d} (%d colluders): exposed %d/%d bids"
              % (size, size, exposed, len(results)))
        print(render_table(
            ["target", "task", "true bid", "colluders needed", "exposed",
             "inferred"],
            rows,
        ))

    print("\nReading the thresholds: with c = %d, coalitions of size "
          "<= c + 1 = %d expose nothing;" % (parameters.fault_bound,
                                             parameters.fault_bound + 1))
    print("larger coalitions peel off the highest (worst) bids first — "
          "exactly Theorem 10's 'inversely proportional' clause.")


if __name__ == "__main__":
    main()
