#!/usr/bin/env python
"""Quickstart: run DMW and verify it reproduces centralized MinWork.

This walks the Fig. 1 / Fig. 2 story end to end on a toy instance:

1. build a 5-machine, 3-task unrelated-machines instance with integer
   processing times drawn from the published bid set ``W``;
2. run the *centralized* MinWork mechanism (a trusted center runs one
   Vickrey auction per task);
3. run *Distributed MinWork* — no center: the agents encode bids in
   polynomial degrees, exchange shares and commitments, and resolve the
   same outcome collectively;
4. check the two outcomes coincide (DMW is a faithful implementation of
   MinWork) and show what the distribution costs.

Run:  python examples/quickstart.py
"""

import random

from repro import MinWork, run_dmw, truthful_bids
from repro.scheduling import workloads


def main():
    rng = random.Random(2005)  # the PODC year, for luck

    # DMW bids must come from a published discrete set W.  For n = 5
    # agents with fault bound c = 1 the maximal legal set is {1, 2, 3}.
    bid_values = [1, 2, 3]
    problem = workloads.random_discrete(num_agents=5, num_tasks=3,
                                        bid_values=bid_values, rng=rng)
    print("True processing times t_i^j (agents x tasks):")
    for agent, row in enumerate(problem.times):
        print("  A%d: %s" % (agent + 1, [int(v) for v in row]))

    # --- centralized MinWork (Nisan & Ronen) -----------------------------
    centralized = MinWork().run(truthful_bids(problem))
    print("\nCentralized MinWork:")
    print("  schedule:", list(centralized.schedule.assignment))
    print("  payments:", list(centralized.payments))

    # --- Distributed MinWork (Carroll & Grosu) --------------------------
    outcome = run_dmw(problem, rng=random.Random(1))
    assert outcome.completed, outcome.abort
    print("\nDistributed MinWork (no trusted center):")
    print("  schedule:", list(outcome.schedule.assignment))
    print("  payments:", list(outcome.payments))
    for transcript in outcome.transcripts:
        print("  task %d: first price %d, winner A%d, second price %d"
              % (transcript.task, transcript.first_price,
                 transcript.winner + 1, transcript.second_price))

    # --- the faithful-implementation identity ----------------------------
    assert outcome.schedule == centralized.schedule
    assert list(outcome.payments) == list(centralized.payments)
    print("\nOutcomes identical: DMW faithfully implements MinWork.")

    # --- what decentralization costs (Table 1) ---------------------------
    metrics = outcome.network_metrics
    print("\nCost of distribution (Table 1's shape):")
    print("  point-to-point messages: %d (MinWork needs %d)"
          % (metrics.point_to_point_messages,
             problem.num_agents * problem.num_tasks))
    print("  synchronous rounds: %d" % metrics.rounds)
    print("  max per-agent modular work: %d multiplications"
          % outcome.max_agent_work)

    print("\nUtilities (payment - true cost of assigned tasks):")
    for agent in range(problem.num_agents):
        print("  A%d: %+.0f" % (agent + 1, outcome.utility(agent, problem)))


if __name__ == "__main__":
    main()
