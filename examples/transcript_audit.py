#!/usr/bin/env python
"""Passive verification: audit a DMW execution from public data only.

The strategyproof-computing literature the paper builds on (Ng et al.;
Kang & Parkes' passive verification) asks: can a third party who merely
*observes* a mechanism's public traffic certify that the execution
followed the strategyproof specification?  For DMW the answer is yes —
every outcome-determining value is published or committed — and this
script demonstrates it:

1. run DMW honestly and audit the bulletin board: the auditor re-derives
   the full outcome (schedule + payments) from public messages alone and
   certifies it;
2. tamper with the recorded transcript (a forged ``Lambda`` value) and
   audit again: the forgery is pinpointed;
3. forge the *reported outcome* (swap a winner): the auditor's
   reconstruction disagrees and flags it.

Run:  python examples/transcript_audit.py
"""

import random

from repro.core import DMWParameters
from repro.core.agent import DMWAgent
from repro.core.audit import audit_protocol_run
from repro.core.protocol import DMWProtocol
from repro.network.message import Message
from repro.scheduling import workloads


def build_and_run(parameters, problem, seed=0):
    master = random.Random(seed)
    agents = [
        DMWAgent(index, parameters,
                 [int(problem.time(index, j))
                  for j in range(problem.num_tasks)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(parameters.num_agents)
    ]
    protocol = DMWProtocol(parameters, agents)
    outcome = protocol.execute(problem.num_tasks)
    assert outcome.completed
    return protocol, outcome


def main():
    parameters = DMWParameters.generate(5, fault_bound=1)
    problem = workloads.random_discrete(5, 2, parameters.bid_values,
                                        random.Random(13))

    # --- 1. honest execution audits clean ---------------------------------
    protocol, outcome = build_and_run(parameters, problem)
    report = audit_protocol_run(protocol, outcome)
    print("Honest execution:")
    print("  reported schedule:       ", list(outcome.schedule.assignment))
    print("  auditor's reconstruction:",
          list(report.reconstructed_assignment))
    print("  auditor's payments:      ",
          list(report.reconstructed_payments))
    print("  verdict: %s (%d findings), auditor spent %d modular mults"
          % ("PASS" if report.ok else "FAIL", len(report.findings),
             report.operations["multiplication_work"]))
    assert report.ok

    # --- 2. a tampered transcript is pinpointed ---------------------------
    protocol, outcome = build_and_run(parameters, problem)
    board = protocol.network.bulletin_board
    for index, message in enumerate(board):
        if message.kind == "lambda_psi":
            task, (lam, psi) = message.payload
            forged = parameters.group.mul(lam, parameters.z1)
            board[index] = Message(sender=message.sender, recipient=None,
                                   kind=message.kind,
                                   payload=(task, (forged, psi)),
                                   field_elements=message.field_elements)
            print("\nTampered with agent A%d's Lambda for task %d..."
                  % (message.sender + 1, task))
            break
    report = audit_protocol_run(protocol, outcome)
    print("  verdict: %s" % ("PASS" if report.ok else "FAIL"))
    for finding in report.findings:
        print("  finding [%s] task=%s: %s"
              % (finding.check, finding.task, finding.detail))
    assert not report.ok

    # --- 3. a forged reported outcome is caught ---------------------------
    protocol, outcome = build_and_run(parameters, problem)
    from repro.scheduling.schedule import Schedule
    forged_assignment = list(outcome.schedule.assignment)
    forged_assignment[0] = (forged_assignment[0] + 1) % 5
    outcome.schedule = Schedule(forged_assignment, 5)
    print("\nForged the reported winner of task 0...")
    report = audit_protocol_run(protocol, outcome)
    print("  verdict: %s" % ("PASS" if report.ok else "FAIL"))
    for finding in report.findings:
        print("  finding [%s]: %s" % (finding.check, finding.detail))
    assert not report.ok

    print("\nPassive verification works: the public transcript alone "
          "certifies (or refutes) any claimed DMW outcome.")


if __name__ == "__main__":
    main()
