#!/usr/bin/env python
"""Fault injection: DMW's safety dichotomy under substrate failures.

The paper's threat model tolerates up to ``c`` faulty agents; the crucial
*safety* property (never stated as a theorem, but implied by the
faithfulness proofs) is a dichotomy: a DMW execution either completes
with exactly the MinWork outcome, or terminates with no allocation and no
payments — it never produces a *wrong* outcome.

This script injects three substrate failures and shows the dichotomy:

1. a crash-stop agent (stops transmitting mid-protocol);
2. a dropped private link (one agent's shares never arrive somewhere);
3. a slow agent behind links that exceed the round timeout — which the
   rest of the system *cannot distinguish* from a withholding deviant.

Run:  python examples/fault_injection.py
"""

import random

from repro.core import DMWParameters
from repro.core.agent import DMWAgent
from repro.core.protocol import DMWProtocol
from repro.mechanisms import MinWork, truthful_bids
from repro.network import FaultPlan, LatencyModel, TimeoutNetwork
from repro.scheduling.problem import SchedulingProblem

PROBLEM = SchedulingProblem([
    [2, 1],
    [1, 3],
    [3, 2],
    [2, 2],
    [3, 3],
])


def build_agents(parameters, seed=0):
    master = random.Random(seed)
    return [
        DMWAgent(index, parameters,
                 [int(PROBLEM.time(index, j)) for j in range(2)],
                 rng=random.Random(master.getrandbits(64)))
        for index in range(5)
    ]


def describe(outcome, expected):
    if outcome.completed:
        correct = (outcome.schedule == expected.schedule
                   and list(outcome.payments) == list(expected.payments))
        print("  COMPLETED, outcome %s"
              % ("matches MinWork exactly" if correct else "WRONG (bug!)"))
        assert correct
    else:
        print("  TERMINATED in phase %r: %s"
              % (outcome.abort.phase, outcome.abort.reason))
        print("  utilities: all zero (no allocation, no payments)")
        assert all(outcome.utility(i, PROBLEM) == 0 for i in range(5))


def main():
    parameters = DMWParameters.generate(5, fault_bound=1)
    expected = MinWork().run(truthful_bids(PROBLEM))
    print("Reference MinWork outcome: schedule %s, payments %s"
          % (list(expected.schedule.assignment), list(expected.payments)))

    print("\n[1] crash-stop: agent A3 dies after the first auction's "
          "bidding round")
    plan = FaultPlan(crashed_from_round={2: 1})
    protocol = DMWProtocol(parameters, build_agents(parameters),
                           fault_plan=plan)
    describe(protocol.execute(2), expected)

    print("\n[2] dropped link: A1 -> A4 silently discards everything")
    plan = FaultPlan(dropped_links={(0, 3)})
    protocol = DMWProtocol(parameters, build_agents(parameters),
                           fault_plan=plan)
    describe(protocol.execute(2), expected)

    print("\n[3] slow agent: all of A4's outgoing links take 100x the "
          "round timeout")
    scale = {(3, k): 1000.0 for k in range(6) if k != 3}
    model = LatencyModel(random.Random(1), base=0.001, jitter=0.001,
                         per_link_scale=scale)
    network = TimeoutNetwork(5, model, round_timeout=0.05,
                             extra_participants=1)
    protocol = DMWProtocol(parameters, build_agents(parameters),
                           network=network)
    describe(protocol.execute(2), expected)
    print("  wall clock burned waiting on barriers: %.3fs over %d rounds"
          % (network.clock, len(network.round_durations)))
    print("  (a slow agent and a withholding deviant are observationally "
          "identical)")

    print("\n[4] control: no faults")
    protocol = DMWProtocol(parameters, build_agents(parameters))
    describe(protocol.execute(2), expected)

    print("\nSafety dichotomy demonstrated: correct outcome or clean "
          "termination — never a wrong schedule or payment.")


if __name__ == "__main__":
    main()
