#!/usr/bin/env python
"""The paper's future work: truthful scheduling on *related* machines.

The conclusion of the paper proposes "designing distributed versions of
the centralized mechanism for scheduling on related machines" as future
work.  This example runs the centralized half of that program — the
Archer-Tardos single-parameter domain with a monotone allocation and
exact discrete Myerson payments — and demonstrates why it is truthful:

1. providers bid an *inverse speed* from a published grid; tasks have
   public sizes;
2. the allocation is monotone (each provider's assigned work can only
   shrink as its bid rises) — the example prints the measured work curve;
3. Myerson threshold payments make truth-telling optimal — the example
   brute-forces every deviation for every provider and shows none helps;
4. as the negative control, the same payments on a deliberately
   non-monotone allocation ARE exploitable, and the harness exhibits the
   profitable lie.

Run:  python examples/related_machines.py
"""

import itertools

from repro.mechanisms.related import (
    GreedyWorkSplit,
    MyersonRelatedMachines,
    assigned_work,
)
from repro.scheduling.schedule import Schedule

SIZES = [5, 4, 3, 2]         # public task sizes r_j
GRID = [1, 2, 3]             # legal inverse-speed bids
TYPES = [1, 2, 2]            # the providers' true inverse speeds


def main():
    mechanism = MyersonRelatedMachines(SIZES, GRID)
    print("Task sizes:", SIZES)
    print("Bid grid (inverse speeds):", GRID)
    print("True types:", TYPES)

    result = mechanism.run(TYPES)
    print("\nTruthful outcome:")
    for agent, bid in enumerate(TYPES):
        work = assigned_work(result.schedule, SIZES, agent)
        print("  provider %d: bid %d, work %.0f, payment %.1f, utility %+.1f"
              % (agent, bid, work, result.payments[agent],
                 result.utility(agent, bid, SIZES)))

    print("\nMonotonicity (provider 0's work as its bid rises, others "
          "truthful):")
    curve = mechanism.work_curve(list(TYPES), 0)
    for bid, work in zip(GRID, curve):
        print("  bid %d -> work %.0f" % (bid, work))
    assert all(b <= a + 1e-9 for a, b in zip(curve, curve[1:]))

    print("\nExhaustive deviation search (|grid|^1 deviations x %d "
          "providers x %d type profiles):" % (len(TYPES), len(GRID) ** 3))
    checked = 0
    for types in itertools.product(GRID, repeat=3):
        violation = mechanism.check_truthfulness(list(types))
        assert violation is None, violation
        checked += 1
    print("  %d profiles checked, 0 profitable deviations — truthful."
          % checked)

    print("\nNegative control: a non-monotone rule with the same payments")

    def perverse(inverse_speeds, sizes):
        slowest = max(range(len(inverse_speeds)),
                      key=lambda i: (inverse_speeds[i], i))
        return Schedule([slowest] * len(sizes), len(inverse_speeds))

    broken = MyersonRelatedMachines(SIZES, GRID, allocation=perverse)
    for types in itertools.product(GRID, repeat=2):
        violation = broken.check_truthfulness(list(types))
        if violation:
            agent, deviation, honest, deviating = violation
            print("  EXPLOITABLE: provider %d with type %d gains %+.1f by "
                  "bidding %d" % (agent, types[agent],
                                  deviating - honest, deviation))
            break
    print("\nMonotonicity is not decoration — it is the truthfulness "
          "boundary (Archer-Tardos).")


if __name__ == "__main__":
    main()
