#!/usr/bin/env python
"""Scaling study: regenerate the shape of Table 1 interactively.

Sweeps the number of agents ``n``, the number of tasks ``m``, and the
cryptographic group size ``log p``, printing measured message counts and
per-agent modular work for centralized MinWork vs DMW, plus the fitted
log-log scaling exponents next to the paper's predictions.

This is the human-readable companion of the pytest-benchmark targets
``benchmarks/bench_table1_*.py`` (which EXPERIMENTS.md records).

Run:  python examples/scaling_study.py
"""

from repro.analysis import (
    fit_loglog_slope,
    measure_dmw,
    measure_minwork,
    render_table,
    sweep_agents,
    sweep_group_size,
    sweep_tasks,
)


def print_sweep(title, samples, axis_name, axis):
    rows = [[getattr(s, "num_agents"), getattr(s, "num_tasks"),
             s.messages, s.field_elements, s.computation] for s in samples]
    print("\n%s" % title)
    print(render_table(["n", "m", "messages", "field elems", "mod work"],
                       rows))
    message_slope = fit_loglog_slope(axis, [s.messages for s in samples])
    work_slope = fit_loglog_slope(axis, [s.computation for s in samples])
    print("fitted exponents vs %s: messages %.2f, computation %.2f"
          % (axis_name, message_slope, work_slope))


def main():
    print("Table 1 (paper): MinWork Theta(mn)/Theta(mn); "
          "DMW Theta(mn^2)/O(mn^2 log p)")

    agents = (4, 6, 8, 10, 12)
    tasks = (1, 2, 4, 6, 8)

    samples = sweep_agents(agents, num_tasks=2, measure=measure_minwork)
    print_sweep("MinWork, sweep n (m=2) — predicted exponent 1",
                samples, "n", [s.num_agents for s in samples])

    samples = sweep_agents(agents, num_tasks=2, measure=measure_dmw)
    print_sweep("DMW, sweep n (m=2) — predicted exponent 2",
                samples, "n", [s.num_agents for s in samples])

    samples = sweep_tasks(tasks, num_agents=6, measure=measure_minwork)
    print_sweep("MinWork, sweep m (n=6) — predicted exponent 1",
                samples, "m", [s.num_tasks for s in samples])

    samples = sweep_tasks(tasks, num_agents=6, measure=measure_dmw)
    print_sweep("DMW, sweep m (n=6) — predicted exponent 1",
                samples, "m", [s.num_tasks for s in samples])

    print("\nDMW, sweep group size (n=6, m=2) — the log p factor:")
    samples = sweep_group_size(("tiny", "small", "medium"), num_agents=6,
                               num_tasks=2)
    rows = [[s.p_bits, s.messages, s.computation] for s in samples]
    print(render_table(["|p| bits", "messages", "mod work"], rows))
    work_slope = fit_loglog_slope([s.p_bits for s in samples],
                                  [s.computation for s in samples])
    print("fitted computation exponent vs |p|: %.2f (predicted ~1; "
          "messages must stay flat)" % work_slope)


if __name__ == "__main__":
    main()
