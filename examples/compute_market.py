#!/usr/bin/env python
"""A decentralized compute market: the workload the paper's intro motivates.

Scenario: ``n`` independent providers (different administrative domains —
no provider trusts any other to run the auction) offer to execute ``m``
batch jobs.  Each provider privately knows how long each job would take on
its hardware.  The jobs are auctioned with Distributed MinWork: providers
jointly compute who runs what and at what price, with no trusted center,
and losing providers' quotes stay private.

The script:

1. generates a heterogeneous provider market (machine-correlated speeds:
   some providers are uniformly faster);
2. discretizes quotes onto the published bid set ``W`` (DMW bids are
   discrete by construction);
3. runs DMW, prints the market outcome, and compares provider revenue to
   the centralized mechanism;
4. demonstrates the privacy property on the transcript.

Run:  python examples/compute_market.py
"""

import random

from repro import MinWork, run_dmw, truthful_bids
from repro.core import DMWParameters
from repro.scheduling import workloads

NUM_PROVIDERS = 8
NUM_JOBS = 5
FAULT_BOUND = 2


def main():
    rng = random.Random(42)
    parameters = DMWParameters.generate(NUM_PROVIDERS,
                                        fault_bound=FAULT_BOUND)
    print("Published market parameters:")
    print("  providers n=%d, fault bound c=%d" % (NUM_PROVIDERS, FAULT_BOUND))
    print("  bid set W=%s, sigma=%d"
          % (list(parameters.bid_values), parameters.sigma))
    print("  Schnorr group: |p|=%d bits, |q|=%d bits"
          % (parameters.group.p_bits, parameters.group.q.bit_length()))

    # Heterogeneous providers: per-provider speeds over per-job sizes.
    continuous = workloads.machine_correlated(NUM_PROVIDERS, NUM_JOBS, rng)
    market = workloads.discretize_to_bid_set(continuous,
                                             parameters.bid_values)
    print("\nQuotes (hours, discretized to W):")
    header = "            " + "".join("job%-4d" % j for j in range(NUM_JOBS))
    print(header)
    for provider in range(NUM_PROVIDERS):
        row = "".join("%-7d" % int(market.time(provider, j))
                      for j in range(NUM_JOBS))
        print("  provider%-2d %s" % (provider, row))

    outcome = run_dmw(market, parameters=parameters, rng=random.Random(7))
    assert outcome.completed, outcome.abort

    print("\nMarket clearing (distributed, no auctioneer):")
    for transcript in outcome.transcripts:
        print("  job %d -> provider %d at price %d (winning quote %d)"
              % (transcript.task, transcript.winner,
                 transcript.second_price, transcript.first_price))

    print("\nProvider economics:")
    print("  %-10s %-8s %-8s %-8s" % ("provider", "revenue", "cost",
                                      "profit"))
    for provider in range(NUM_PROVIDERS):
        revenue = outcome.payments[provider]
        cost = -outcome.schedule.valuation(provider, market)
        print("  %-10d %-8.0f %-8.0f %+8.0f"
              % (provider, revenue, cost, revenue - cost))

    centralized = MinWork().run(truthful_bids(market))
    assert centralized.schedule == outcome.schedule
    assert list(centralized.payments) == list(outcome.payments)
    print("\nSanity: identical to a (hypothetical) trusted auctioneer.")

    # The privacy story: what the public transcript reveals.
    print("\nTranscript disclosure (Theorem 10's remark):")
    print("  revealed per job: winner pseudonym, first price, second price")
    print("  NOT revealed: losing providers' quotes "
          "(requires > c+1 = %d colluders to expose any)"
          % (FAULT_BOUND + 1))
    print("  messages exchanged: %d over %d synchronous rounds"
          % (outcome.network_metrics.point_to_point_messages,
             outcome.network_metrics.rounds))


if __name__ == "__main__":
    main()
