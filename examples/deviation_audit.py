#!/usr/bin/env python
"""Faithfulness audit: measure every deviation strategy against honesty.

Theorem 5 claims DMW is faithful: no agent can increase its utility by
deviating from the suggested strategy.  This script *measures* that claim
(experiments E5/E6): for each deviation family in the paper's Theorem 4
proof, it runs the protocol twice on the same instance — once all-honest,
once with one deviator — and compares the deviator's utilities.  It also
verifies strong voluntary participation: no honest bystander ever ends up
with negative utility, whatever the deviator does.

Run:  python examples/deviation_audit.py
"""

import random

from repro.analysis import (
    faithfulness_violations,
    participation_violations,
    render_table,
    run_deviation_matrix,
)
from repro.core import DMWParameters
from repro.scheduling import workloads


def main():
    parameters = DMWParameters.generate(5, fault_bound=1)
    rng = random.Random(11)
    problem = workloads.random_discrete(5, 2, parameters.bid_values, rng)
    print("Instance (true values):")
    for agent, row in enumerate(problem.times):
        print("  A%d: %s" % (agent + 1, [int(v) for v in row]))

    outcomes = run_deviation_matrix(problem, parameters,
                                    deviant_indices=[0, 2, 4])

    rows = []
    for outcome in outcomes:
        rows.append([
            outcome.strategy,
            "A%d" % (outcome.deviant_index + 1),
            outcome.honest_utility,
            outcome.deviant_utility,
            outcome.gain,
            outcome.completed,
            outcome.abort_phase or "-",
            outcome.min_honest_utility,
        ])
    print()
    print(render_table(
        ["deviation", "by", "U(honest)", "U(deviate)", "gain",
         "completed", "abort phase", "min bystander U"],
        rows,
    ))

    gains = faithfulness_violations(outcomes)
    losses = participation_violations(outcomes)
    print()
    if not gains:
        print("FAITHFUL: no deviation strategy gained utility "
              "(Theorem 5 holds on this instance).")
    else:
        print("VIOLATION: %d profitable deviations found!" % len(gains))
    if not losses:
        print("STRONG VOLUNTARY PARTICIPATION: no honest bystander lost "
              "utility (Theorem 9 holds on this instance).")
    else:
        print("VIOLATION: honest agents lost utility in %d runs!"
              % len(losses))


if __name__ == "__main__":
    main()
