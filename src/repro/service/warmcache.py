"""Cross-run warm caches keyed by group parameters.

The single biggest per-job cost after process startup is precomputation:
fixed-base tables for the public generators, Straus digit tables for
commitment vectors, and the :class:`~repro.crypto.fastexp
.PublicValueCache` entries the Phase-III verification loops derive from
published data.  All of these are *content-keyed public values* — a
commitment evaluation is keyed by ``(modulus, commitment elements,
point)``, a weight vector by ``(points, modulus)`` — so serving them
across executions of the same group can never produce a stale or secret
value.  The protocol still charges every agent the naive analytic
schedule on cache hits (``docs/PERFORMANCE.md``), so warming changes
wall-clock and ``cache_stats`` only; outcomes, transcripts and Table 1
counters are bit-identical with or without it.

:class:`WarmCacheStore` is the daemon's keeper of that state: one
entries-only :class:`PublicValueCache` per group (LRU-bounded), plus the
eviction hook into the process-wide fixed-base table cache
(:func:`repro.crypto.fastexp.clear_fixed_base_tables`) so dropping a
group from the store also drops its precomputed tables — daemon memory
stays bounded and observable (``docs/SERVICE.md``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..crypto.fastexp import PublicValueCache, clear_fixed_base_tables


def group_key(group_parameters: Any) -> str:
    """Stable identity of a cryptographic group for cache keying.

    Hashes ``(p, q, z1, z2)`` — everything that feeds cache-entry keys.
    Two parameter sets sharing a group fixture share warm state even if
    their agent counts or bid sets differ; entries are content-keyed, so
    cross-job reuse within a group is always sound.
    """
    group = group_parameters.group
    material = "%d|%d|%d|%d" % (group.p, group.q, group_parameters.z1,
                                group_parameters.z2)
    return hashlib.sha256(material.encode("ascii")).hexdigest()[:16]


class WarmCacheStore:
    """LRU store of per-group public-value entries for the daemon.

    ``cache_for`` hands each job a *fresh* :class:`PublicValueCache`
    seeded with the group's accumulated entries (never the counters, so
    the job's ``cache_stats`` describe only its own lookups);
    ``absorb`` folds a finished job's entries back in.  Evicting a group
    past ``capacity`` also clears that modulus's fixed-base tables from
    the process-wide cache.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        #: group key -> (modulus, entries-only accumulated cache)
        self._stores: "OrderedDict[str, Tuple[int, PublicValueCache]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- job-facing surface ---------------------------------------------------
    def cache_for(self, parameters: Any) -> PublicValueCache:
        """A fresh per-job cache, warm when the group has been seen."""
        key = group_key(parameters.group_parameters)
        fresh = PublicValueCache()
        held = self._stores.get(key)
        if held is None:
            self.misses += 1
        else:
            self.hits += 1
            self._stores.move_to_end(key)
            fresh.seed_from(held[1])
        return fresh

    def absorb(self, parameters: Any, cache: PublicValueCache) -> None:
        """Fold a finished job's public entries into the group's store."""
        key = group_key(parameters.group_parameters)
        held = self._stores.get(key)
        if held is None:
            modulus = parameters.group_parameters.group.p
            held = (modulus, PublicValueCache())
            self._stores[key] = held
        held[1].seed_from(cache)
        self._stores.move_to_end(key)
        while len(self._stores) > self.capacity:
            _, (modulus, _) = self._stores.popitem(last=False)
            self.evictions += 1
            # Eviction hook: a group leaving the store takes its
            # fixed-base tables with it, bounding daemon memory.
            clear_fixed_base_tables(modulus)

    def warm(self, parameters: Any) -> bool:
        """True when the group already has accumulated entries."""
        return group_key(parameters.group_parameters) in self._stores

    def evict(self, parameters: Optional[Any] = None) -> int:
        """Drop one group's warm state (or all), tables included."""
        if parameters is not None:
            key = group_key(parameters.group_parameters)
            held = self._stores.pop(key, None)
            if held is None:
                return 0
            self.evictions += 1
            clear_fixed_base_tables(held[0])
            return 1
        dropped = len(self._stores)
        for _, (modulus, _) in self._stores.items():
            clear_fixed_base_tables(modulus)
        self._stores.clear()
        self.evictions += dropped
        return dropped

    # -- observability --------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Store-level counters for the service metrics registry."""
        return {
            "groups": len(self._stores),
            "entries": sum(cache.entry_count()
                           for _, cache in self._stores.values()),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
