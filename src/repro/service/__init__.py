"""Always-on auction service: persistent gateway over the DMW engine.

The paper's mechanism is meant to be *deployed* — a distributed
scheduler serving a stream of auction requests, not a cold CLI process
per instance.  This package turns the reproduction into that daemon:

* :mod:`repro.service.jobs` — job submissions validated into
  :class:`~repro.core.parameters.DMWParameters` with structured,
  field-level errors (the gateway's 4xx bodies);
* :mod:`repro.service.warmcache` — the cross-run warm-cache layer:
  public-value entries and fixed-base tables survive between jobs keyed
  by group parameters, so repeat-parameter jobs skip precomputation
  while every counter stays bit-identical (``docs/SERVICE.md``);
* :mod:`repro.service.engine` — the resident worker engine: a queue,
  one executor thread running jobs strictly in submission order
  (sequential or sharded over a long-lived ``repro.parallel`` pool),
  per-job arithmetic-backend selection, and a persistent metrics
  registry;
* :mod:`repro.service.gateway` — a dependency-free asyncio HTTP/1.1
  gateway (``dmw serve``) exposing job submission/status, versioned run
  reports, and Prometheus ``/metrics``.
"""

from .engine import AuctionService, JobRecord
from .gateway import ServiceGateway, serve
from .jobs import JobRequest, JobValidationError, parse_job
from .warmcache import WarmCacheStore

__all__ = [
    "AuctionService",
    "JobRecord",
    "JobRequest",
    "JobValidationError",
    "ServiceGateway",
    "WarmCacheStore",
    "parse_job",
    "serve",
]
