"""Dependency-free asyncio HTTP/1.1 gateway for the auction service.

The container policy is stdlib-only, so the daemon speaks a deliberately
minimal HTTP/1.1 dialect over ``asyncio.start_server``: one request per
connection (``Connection: close``), JSON bodies, explicit
``Content-Length``.  That covers every client the repo ships (urllib in
tests and CI, curl for operators, Prometheus scrapes for ``/metrics``).

Endpoints (``docs/SERVICE.md``)
-------------------------------
* ``POST /jobs`` — submit a job document; ``202`` with the job record,
  ``400`` with field-level errors for malformed submissions (the queue
  is untouched), ``503`` when the queue is full.
* ``GET /jobs`` — all job records, submission order.
* ``GET /jobs/<id>`` — one job's lifecycle record.
* ``GET /jobs/<id>/report`` — the finished job's versioned run report
  (``repro.obs.export`` document; ``409`` until the job completes).
* ``GET /metrics`` — Prometheus text: persistent service series plus
  the latest finished job's canonical ``dmw_*`` series.
* ``GET /healthz`` — liveness.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .engine import AuctionService
from .jobs import JobValidationError

#: Submission documents are small; anything larger is a client error.
MAX_BODY_BYTES = 1 << 20

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable"}


def _response(status: int, body: bytes, content_type: str) -> bytes:
    head = ("HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n\r\n"
            % (status, _REASONS.get(status, "Unknown"), content_type,
               len(body)))
    return head.encode("ascii") + body


def _json_response(status: int, document: Any) -> bytes:
    body = (json.dumps(document, indent=2) + "\n").encode("utf-8")
    return _response(status, body, "application/json")


def _error(status: int, code: str, detail: Any = None) -> bytes:
    document: Dict[str, Any] = {"error": code}
    if detail is not None:
        document["detail"] = detail
    return _json_response(status, document)


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request; returns (method, path, body) or None."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length < 0 or content_length > MAX_BODY_BYTES:
        return method, path, b"\x00overflow"
    body = b""
    if content_length:
        try:
            body = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            return None
    return method, path, body


class ServiceGateway:
    """The asyncio HTTP server wrapping one :class:`AuctionService`."""

    def __init__(self, service: AuctionService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling -----------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                writer.close()
                await writer.wait_closed()
                return
            method, path, body = request
            if body == b"\x00overflow":
                payload = _error(413, "payload_too_large")
            else:
                payload = await self._route(method, path, body)
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method: str, path: str, body: bytes) -> bytes:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                return _error(405, "method_not_allowed")
            return _json_response(200, {"status": "ok"})
        if path == "/metrics":
            if method != "GET":
                return _error(405, "method_not_allowed")
            # Rendering walks the registries; cheap enough to do inline.
            text = self.service.metrics_text()
            return _response(200, text.encode("utf-8"),
                             "text/plain; version=0.0.4")
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return _json_response(200, {
                    "jobs": [record.as_document()
                             for record in self.service.jobs()]})
            return _error(405, "method_not_allowed")
        if path.startswith("/jobs/"):
            return self._job_detail(method, path)
        return _error(404, "not_found")

    def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return _error(400, "invalid_json",
                          "request body must be a JSON object")
        try:
            record = self.service.submit(payload)
        except JobValidationError as exc:
            return _json_response(400, exc.as_document())
        except RuntimeError as exc:
            return _error(503, "unavailable", str(exc))
        return _json_response(202, record.as_document())

    def _job_detail(self, method: str, path: str) -> bytes:
        if method != "GET":
            return _error(405, "method_not_allowed")
        segments = path.split("/")[2:]
        record = self.service.job(segments[0])
        if record is None:
            return _error(404, "unknown_job")
        if len(segments) == 1:
            return _json_response(200, record.as_document())
        if len(segments) == 2 and segments[1] == "report":
            if record.state in ("queued", "running"):
                return _error(409, "job_not_finished",
                              {"state": record.state})
            if record.report is None:
                return _error(409, "no_report", {"state": record.state,
                                                 "error": record.error})
            return _json_response(200, record.report)
        return _error(404, "not_found")


def serve(host: str = "127.0.0.1", port: int = 8080,
          warm_capacity: int = 8, pool_workers: int = 2,
          max_queued: int = 256) -> int:
    """Blocking daemon entry point for ``dmw serve``."""
    service = AuctionService(warm_capacity=warm_capacity,
                             pool_workers=pool_workers,
                             max_queued=max_queued)
    gateway = ServiceGateway(service, host=host, port=port)
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(gateway.start())
        print("dmw service listening on http://%s:%d (warm capacity %d, "
              "pool workers %d)" % (gateway.host, gateway.port,
                                    warm_capacity, pool_workers))
        loop.run_forever()
    except KeyboardInterrupt:
        pass
    finally:
        loop.run_until_complete(gateway.stop())
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()
        service.close()
    return 0
