"""The resident worker engine behind the gateway.

One :class:`AuctionService` owns:

* a FIFO job queue drained by a single executor thread — concurrently
  submitted jobs run strictly in submission order, so the daemon's
  results are deterministic regardless of arrival interleaving;
* the :class:`~repro.service.warmcache.WarmCacheStore` — repeat-group
  jobs start from the accumulated public entries and skip
  precomputation (outcomes and counters bit-identical; only
  ``cache_stats`` and wall-clock shift, by design);
* an optional resident ``ProcessPoolExecutor`` for ``mode="pool"`` jobs,
  reused across jobs (shards re-install their job's spec worker-side);
* a persistent metrics registry (`dmw_service_*`, `dmw_warm_cache_*`,
  `dmw_fixed_base_table_*`) concatenated with the latest finished job's
  canonical run registry for ``/metrics``.

Per-job arithmetic-backend selection routes through
:func:`repro.crypto.backend.using_backend` inside the executor thread:
the daemon honours each job's requested engine even though
``DMW_BACKEND`` was read once at import (the engine global is restored
between jobs, and pool shards carry the backend by name in their
:class:`~repro.parallel.PoolSpec`).
"""

from __future__ import annotations

import queue
import random
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.agent import DMWAgent
from ..core.parameters import DMWParameters
from ..core.protocol import DMWProtocol
from ..core.trace import ProtocolTrace
from ..crypto import backend as crypto_backend
from ..obs.export import run_report, validate_run_report
from ..obs.metrics import (MetricsRegistry, bind_fastexp_metrics,
                           registry_for_run)
from ..obs.spans import SpanRecorder
from .jobs import JobRequest, parse_job, seeded_instance
from .warmcache import WarmCacheStore

#: Latency buckets for the job-duration histogram (seconds).  Auction
#: jobs on the fixture groups run tens of milliseconds to tens of
#: seconds; the default bucket ladder tops out too early.
DURATION_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                    60.0, 120.0)

JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class JobRecord:
    """Lifecycle record of one submitted job."""

    job_id: str
    request: JobRequest
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    warm: Optional[bool] = None
    completed: Optional[bool] = None
    error: Optional[str] = None
    report: Optional[Dict[str, Any]] = None
    outcome: Any = None
    cache_stats: Dict[str, int] = field(default_factory=dict)

    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def as_document(self, include_report: bool = False) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "id": self.job_id,
            "state": self.state,
            "request": self.request.as_document(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_s": self.duration(),
            "warm": self.warm,
            "completed": self.completed,
            "error": self.error,
        }
        if include_report:
            document["report"] = self.report
        return document


class AuctionService:
    """Queue + resident executor thread + warm caches + metrics."""

    def __init__(self, warm_capacity: int = 8,
                 pool_workers: int = 2,
                 max_queued: int = 256) -> None:
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._busy = 0
        self._next_id = 0
        self._closed = False
        self.max_queued = max_queued
        self.pool_workers = pool_workers
        self.store = WarmCacheStore(capacity=warm_capacity)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._last_run_registry: Optional[MetricsRegistry] = None
        self.registry = MetricsRegistry(namespace="dmw")
        self._jobs_total = self.registry.counter(
            "service_jobs_total", "Jobs by terminal state", ["state"])
        self._job_seconds = self.registry.histogram(
            "service_job_duration_seconds",
            "Wall-clock execution time per job", ["mode", "cache"],
            buckets=DURATION_BUCKETS)
        self._queue_depth = self.registry.gauge(
            "service_queue_depth", "Jobs queued but not yet running")
        self._worker = threading.Thread(target=self._run_loop,
                                        name="dmw-service-worker",
                                        daemon=True)
        self._worker.start()

    # -- submission -----------------------------------------------------------
    def submit(self, payload: Any) -> JobRecord:
        """Validate and enqueue one job document.

        Raises :class:`~repro.service.jobs.JobValidationError` (the
        gateway's 400) before anything is queued, and
        :class:`RuntimeError` when the daemon is shutting down or the
        queue is at capacity (503).
        """
        request = parse_job(payload)
        with self._lock:
            if self._closed:
                raise RuntimeError("service is shutting down")
            if self._queue.qsize() >= self.max_queued:
                raise RuntimeError("job queue is full")
            self._next_id += 1
            record = JobRecord(job_id="job-%d" % self._next_id,
                               request=request,
                               submitted_at=time.time())
            self._jobs[record.job_id] = record
            self._order.append(record.job_id)
        self._queue.put(record.job_id)
        self._queue_depth.set(self._queue.qsize())
        return record

    # -- queries --------------------------------------------------------------
    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until the queue is drained and no job is running."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._queue.qsize() > 0 or self._busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- the executor thread --------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                record = self._jobs[job_id]
                record.state = "running"
                record.started_at = time.time()
                self._busy += 1
            self._queue_depth.set(self._queue.qsize())
            try:
                self._execute(record)
                record.state = "done"
            except Exception:
                record.state = "failed"
                record.error = traceback.format_exc(limit=8)
            record.finished_at = time.time()
            self._jobs_total.inc(state=record.state)
            duration = record.duration()
            if duration is not None:
                self._job_seconds.observe(
                    duration, mode=record.request.mode,
                    cache="warm" if record.warm else "cold")
            with self._idle:
                self._busy -= 1
                self._idle.notify_all()

    def _execute(self, record: JobRecord) -> None:
        """Run one job start-to-finish inside its backend context."""
        request = record.request
        with crypto_backend.using_backend(request.backend):
            parameters = DMWParameters.generate(
                request.agents, fault_bound=request.fault_bound,
                group_size=request.group_size)
            problem = seeded_instance(request, parameters)
            # Agent seeding mirrors `dmw run --seed S` exactly, so a
            # service job reproduces the CLI run bit-for-bit.
            master = random.Random(request.seed + 1)
            agents = [
                DMWAgent(index, parameters,
                         [int(problem.time(index, task))
                          for task in range(problem.num_tasks)],
                         rng=random.Random(master.getrandbits(64)))
                for index in range(parameters.num_agents)
            ]
            trace = ProtocolTrace()
            recorder = SpanRecorder()
            protocol = DMWProtocol(parameters, agents, trace=trace,
                                   observer=recorder)
            record.warm = self.store.warm(parameters)
            cache = self.store.cache_for(parameters)
            outcome = protocol.execute(
                problem.num_tasks,
                parallel=(request.mode != "sequential"),
                degraded=request.degraded,
                workers=(request.workers if request.mode == "pool"
                         else None),
                warm_cache=cache,
                pool=(self._resident_pool() if request.mode == "pool"
                      else None))
            self.store.absorb(parameters, cache)
            registry = registry_for_run(outcome, agents=agents, trace=trace,
                                        recorder=recorder)
            document = run_report(outcome, agents=agents, trace=trace,
                                  recorder=recorder, registry=registry,
                                  parameters=parameters)
        validate_run_report(document)
        record.outcome = outcome
        record.report = document
        record.completed = outcome.completed
        record.cache_stats = dict(outcome.cache_stats or {})
        with self._lock:
            self._last_run_registry = registry

    def _resident_pool(self) -> ProcessPoolExecutor:
        """The long-lived executor shared by every pool-mode job."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.pool_workers)
        return self._pool

    # -- observability --------------------------------------------------------
    def metrics_text(self) -> str:
        """Prometheus exposition: service series + latest run's series.

        The two registries have disjoint metric names (``dmw_service_*``
        / ``dmw_warm_cache_*`` / ``dmw_fixed_base_table_*`` vs the
        canonical per-run ``dmw_run_*``/``dmw_network_*``/... set), so
        the concatenation parses as one document.
        """
        stats = self.store.stats()
        for name, value in stats.items():
            self.registry.gauge(
                "warm_cache_" + name,
                "Warm cross-run cache store: " + name).set(value)
        bind_fastexp_metrics(self.registry)
        text = self.registry.to_prometheus()
        with self._lock:
            last = self._last_run_registry
        if last is not None:
            text += last.to_prometheus()
        return text

    # -- lifecycle ------------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Drain the worker thread and shut the resident pool down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join(timeout)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
