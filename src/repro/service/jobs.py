"""Job submissions: strict validation into protocol-ready requests.

The gateway accepts JSON job documents; everything protocol-facing is
validated *here*, before anything is queued, so a malformed submission
is rejected with a structured, field-level 4xx body and the queue is
untouched.  A validated :class:`JobRequest` is a pure value object — the
engine (not the gateway thread) turns it into
:class:`~repro.core.parameters.DMWParameters`, agents, and a problem
instance inside the job's own backend context.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..crypto import backend as crypto_backend
from ..crypto.groups import FIXTURE_SIZES

#: Execution modes a job may request.  ``sequential`` is the reference
#: driver; ``pool`` shards auctions over the engine's resident process
#: pool (``workers`` applies); ``barrier`` is the in-process
#: phase-barrier driver.
MODES = ("sequential", "pool", "barrier")

#: Hard ceilings so one submission cannot occupy the daemon for hours.
MAX_AGENTS = 64
MAX_TASKS = 256
MAX_WORKERS = 32


class JobValidationError(Exception):
    """A submission failed validation; carries field-level errors."""

    def __init__(self, errors: List[Dict[str, str]]) -> None:
        super().__init__("invalid job: %s"
                         % "; ".join(e["error"] for e in errors))
        self.errors = errors

    def as_document(self) -> Dict[str, Any]:
        """The structured 4xx body the gateway returns."""
        return {"error": "invalid_job", "detail": self.errors}


@dataclass(frozen=True)
class JobRequest:
    """One validated auction job, ready for the engine."""

    agents: int
    tasks: int
    seed: int
    fault_bound: int = 1
    group_size: str = "small"
    backend: str = "python"
    mode: str = "sequential"
    workers: int = 2
    degraded: bool = False
    #: Explicit instance rows (agents x tasks) overriding the seeded
    #: random instance; values must lie in the derived bid set.
    times: Optional[Tuple[Tuple[int, ...], ...]] = None

    def as_document(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "agents": self.agents, "tasks": self.tasks, "seed": self.seed,
            "fault_bound": self.fault_bound, "group_size": self.group_size,
            "backend": self.backend, "mode": self.mode,
            "workers": self.workers, "degraded": self.degraded,
        }
        if self.times is not None:
            document["times"] = [list(row) for row in self.times]
        return document


@dataclass
class _Errors:
    items: List[Dict[str, str]] = field(default_factory=list)

    def add(self, fieldname: str, message: str) -> None:
        self.items.append({"field": fieldname, "error": message})


def _int_field(payload: Dict[str, Any], name: str, errors: _Errors,
               default: Optional[int], minimum: int, maximum: int
               ) -> Optional[int]:
    value = payload.get(name, default)
    if value is None:
        errors.add(name, "required")
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        errors.add(name, "must be an integer")
        return None
    if not minimum <= value <= maximum:
        errors.add(name, "must be in [%d, %d]" % (minimum, maximum))
        return None
    return value


def parse_job(payload: Any) -> JobRequest:
    """Validate one submission document into a :class:`JobRequest`.

    Raises
    ------
    JobValidationError
        With one entry per offending field; nothing is queued.
    """
    if not isinstance(payload, dict):
        raise JobValidationError(
            [{"field": "", "error": "job document must be a JSON object"}])
    errors = _Errors()
    known = {"agents", "tasks", "seed", "fault_bound", "group_size",
             "backend", "mode", "workers", "degraded", "times"}
    for name in sorted(set(payload) - known):
        errors.add(name, "unknown field")
    agents = _int_field(payload, "agents", errors, None, 3, MAX_AGENTS)
    tasks = _int_field(payload, "tasks", errors, None, 1, MAX_TASKS)
    seed = _int_field(payload, "seed", errors, None, 0, 2**63 - 1)
    fault_bound = _int_field(payload, "fault_bound", errors, 1, 1, MAX_AGENTS)
    workers = _int_field(payload, "workers", errors, 2, 1, MAX_WORKERS)
    group_size = payload.get("group_size", "small")
    if group_size not in FIXTURE_SIZES:
        errors.add("group_size", "must be one of %s"
                   % ", ".join(sorted(FIXTURE_SIZES)))
    backend = payload.get("backend", "python")
    if backend not in crypto_backend.available_backends():
        errors.add("backend", "must be one of %s"
                   % ", ".join(crypto_backend.available_backends()))
    mode = payload.get("mode", "sequential")
    if mode not in MODES:
        errors.add("mode", "must be one of %s" % ", ".join(MODES))
    degraded = payload.get("degraded", False)
    if not isinstance(degraded, bool):
        errors.add("degraded", "must be a boolean")
        degraded = False
    if agents is not None and fault_bound is not None \
            and agents < fault_bound + 2:
        errors.add("agents", "need agents >= fault_bound + 2 for a "
                   "non-empty bid set")
    times = _parse_times(payload.get("times"), agents, tasks, fault_bound,
                         errors)
    if errors.items:
        raise JobValidationError(errors.items)
    assert agents is not None and tasks is not None and seed is not None
    assert fault_bound is not None and workers is not None
    return JobRequest(agents=agents, tasks=tasks, seed=seed,
                      fault_bound=fault_bound, group_size=group_size,
                      backend=backend, mode=mode, workers=workers,
                      degraded=degraded, times=times)


def _parse_times(raw: Any, agents: Optional[int], tasks: Optional[int],
                 fault_bound: Optional[int], errors: _Errors
                 ) -> Optional[Tuple[Tuple[int, ...], ...]]:
    """Validate an explicit instance matrix against the derived bid set."""
    if raw is None:
        return None
    if agents is None or tasks is None or fault_bound is None:
        return None
    if (not isinstance(raw, list) or len(raw) != agents
            or not all(isinstance(row, list) and len(row) == tasks
                       for row in raw)):
        errors.add("times", "must be an %s x %s matrix" % (agents, tasks))
        return None
    top = agents - fault_bound - 1
    rows = []
    for index, row in enumerate(raw):
        clean = []
        for value in row:
            if isinstance(value, bool) or not isinstance(value, int) \
                    or not 1 <= value <= top:
                errors.add("times",
                           "row %d: values must be integers in the bid "
                           "set {1, ..., %d}" % (index, top))
                return None
            clean.append(value)
        rows.append(tuple(clean))
    return tuple(rows)


def seeded_instance(request: JobRequest, parameters: Any) -> Any:
    """Build the job's problem instance (explicit rows or seeded random).

    Mirrors the CLI's construction exactly — same RNG derivation from
    the seed — so a service job and ``dmw run --seed S`` on the same
    shape produce bit-identical instances and outcomes.
    """
    from ..scheduling import workloads
    from ..scheduling.problem import SchedulingProblem

    if request.times is not None:
        return SchedulingProblem([list(row) for row in request.times])
    rng = random.Random(request.seed)
    return workloads.random_discrete(parameters.num_agents, request.tasks,
                                     parameters.bid_values, rng)
