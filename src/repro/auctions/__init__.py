"""Sealed-bid auction substrate: the (M+1)st-price auction DMW builds on.

:mod:`.sealed_bid` gives the centralized reference semantics (Vickrey and
(M+1)st-price); :mod:`.distributed` implements Kikuchi's degree-encoded
distributed protocol ([23] in the paper) in the honest-but-curious model,
making concrete exactly what DMW adds: commitments, verifiability, and
faithfulness against active deviation.
"""

from .distributed import (
    AuctionError,
    AuctionParameters,
    DistributedAuctionBidder,
    DistributedMPlus1Auction,
    run_distributed_auction,
)
from .sealed_bid import (
    AuctionResult,
    check_auction_truthfulness,
    first_price_auction,
    mplus1_price_auction,
    vickrey_auction,
)

__all__ = [
    "AuctionError",
    "AuctionParameters",
    "AuctionResult",
    "DistributedAuctionBidder",
    "DistributedMPlus1Auction",
    "check_auction_truthfulness",
    "first_price_auction",
    "mplus1_price_auction",
    "run_distributed_auction",
    "vickrey_auction",
]
