"""Kikuchi's distributed (M+1)st-price auction, computed by the bidders.

This is the substrate DMW generalizes from ([23] in the paper): the
``M`` highest of ``n`` bidders win one item each and pay the ``(M+1)``-st
highest bid, computed *distributedly* through degree-encoded secret
sharing — here, as in DMW, by the bidders themselves rather than by
Kikuchi's trusted auctioneer set.

Encoding (a *max* auction, so the degree is **directly** related to the
bid, unlike DMW's inverse encoding):

* bids come from a published discrete set ``W = {w_1 < ... < w_k}``;
* bidder ``i`` with bid ``y`` shares a random zero-constant-term
  polynomial ``e_i`` of degree ``y + c`` (the ``+c`` is the same
  collusion-resilience padding DMW uses);
* the sum ``E = sum e_i`` has degree ``max_i (y_i + c)``: degree
  resolution on the summed shares reveals the *highest* bid and nothing
  about the others;
* the top bidder is excluded (its shares are publicly subtracted) and
  resolution repeats — ``M`` rounds identify the ``M`` winners, and the
  ``(M+1)``-st resolution value is the price.

Trust model: this module implements the *honest-but-curious* variant that
Kikuchi's original protocol analyzes (participants follow the protocol
but pool information to learn bids) — there are no commitments, so active
bid manipulation is not detected here.  Hardening it to the full DMW
threat model is exactly the contribution of the paper, realized in
:mod:`repro.core`; this module exists to make that delta concrete and to
reproduce the substrate's own properties (correctness vs the centralized
reference, loser privacy, message costs).

Winner identification: bidders whose bid equals the resolved maximum
announce themselves and *open* their polynomial's shares (winners' bids
become public — inherent to the auction, as in DMW); the opening is
checked by interpolating the claimed degree against the shares every
bidder holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.interpolation import resolve_degree
from ..crypto.modular import NULL_COUNTER, OperationCounter
from ..crypto.polynomials import Polynomial
from ..network.metrics import NetworkMetrics
from ..network.simulator import SynchronousNetwork
from .sealed_bid import AuctionResult


class AuctionError(Exception):
    """Raised when the distributed auction cannot complete."""


@dataclass(frozen=True)
class AuctionParameters:
    """Published parameters of one distributed (M+1)st-price auction.

    Attributes
    ----------
    modulus:
        The field prime ``q`` shares live in.
    pseudonyms:
        One non-zero, distinct-mod-q evaluation point per bidder.
    bid_values:
        The published discrete bid set ``W`` (ascending).
    collusion_bound:
        ``c`` — degrees are padded by ``c`` so that ``c`` colluders learn
        nothing about any losing bid.
    """

    modulus: int
    pseudonyms: Tuple[int, ...]
    bid_values: Tuple[int, ...]
    collusion_bound: int

    def __post_init__(self) -> None:
        n = len(self.pseudonyms)
        if n < 2:
            raise ValueError("need at least two bidders")
        reduced = [p % self.modulus for p in self.pseudonyms]
        if len(set(reduced)) != n or 0 in reduced:
            raise ValueError("pseudonyms must be distinct and non-zero")
        bids = self.bid_values
        if not bids or list(bids) != sorted(set(bids)) or bids[0] < 1:
            raise ValueError("bid set must be strictly increasing positives")
        if self.collusion_bound < 0:
            raise ValueError("collusion bound must be non-negative")
        if self.degree_for_bid(bids[-1]) > n - 1:
            raise ValueError(
                "largest degree %d unresolvable from %d shares"
                % (self.degree_for_bid(bids[-1]), n)
            )

    @property
    def num_bidders(self) -> int:
        return len(self.pseudonyms)

    def degree_for_bid(self, bid: int) -> int:
        """``degree = bid + c`` (direct relation: max auction)."""
        if bid not in self.bid_values:
            raise ValueError("bid %r not in W=%s" % (bid,
                                                     list(self.bid_values)))
        return bid + self.collusion_bound

    def bid_for_degree(self, degree: int) -> int:
        bid = degree - self.collusion_bound
        if bid not in self.bid_values:
            raise ValueError("degree %d encodes no legal bid" % degree)
        return bid

    def degree_candidates(self) -> List[int]:
        """Candidate degrees for resolution, ascending."""
        return [self.degree_for_bid(bid) for bid in self.bid_values]

    @classmethod
    def generate(cls, num_bidders: int, collusion_bound: int = 1,
                 bid_values: Optional[Sequence[int]] = None,
                 modulus: int = 2 ** 61 - 1) -> "AuctionParameters":
        """Standard parameters: pseudonyms ``1..n``, maximal legal ``W``."""
        if bid_values is None:
            top = num_bidders - collusion_bound - 1
            if top < 1:
                raise ValueError("no legal bid set for n=%d, c=%d"
                                 % (num_bidders, collusion_bound))
            bid_values = range(1, top + 1)
        return cls(modulus=modulus,
                   pseudonyms=tuple(range(1, num_bidders + 1)),
                   bid_values=tuple(bid_values),
                   collusion_bound=collusion_bound)


@dataclass
class _BidderState:
    polynomial: Optional[Polynomial] = None
    #: shares received from every bidder (index -> value at own pseudonym)
    received: Dict[int, int] = field(default_factory=dict)


class DistributedAuctionBidder:
    """One honest-but-curious bidder."""

    def __init__(self, index: int, parameters: AuctionParameters,
                 valuation: int, rng: Optional[random.Random] = None) -> None:
        self.index = index
        self.parameters = parameters
        self.valuation = int(valuation)
        self.rng = rng or random.Random(index)
        self.counter = OperationCounter()
        self.state = _BidderState()

    @property
    def pseudonym(self) -> int:
        return self.parameters.pseudonyms[self.index]

    def choose_bid(self) -> int:
        """Truthful by default; override to model misreporting."""
        return self.valuation

    def encode(self) -> Dict[int, int]:
        """Draw the bid polynomial; return per-recipient shares."""
        degree = self.parameters.degree_for_bid(self.choose_bid())
        self.state.polynomial = Polynomial.random(
            degree, self.parameters.modulus, self.rng,
            zero_constant_term=True,
        )
        shares = {}
        for recipient, pseudonym in enumerate(self.parameters.pseudonyms):
            value = self.state.polynomial.evaluate(pseudonym, self.counter)
            if recipient == self.index:
                self.state.received[self.index] = value
            else:
                shares[recipient] = value
        return shares

    def receive(self, sender: int, value: int) -> None:
        self.state.received[sender] = value

    def summed_share(self, excluded: Sequence[int]) -> int:
        """This bidder's share of ``E`` minus the excluded polynomials."""
        total = 0
        for sender, value in self.state.received.items():
            if sender not in excluded:
                total = (total + value) % self.parameters.modulus
        return total

    def open_polynomial(self) -> Polynomial:
        """Publish the full bid polynomial (winners only — reveals the bid)."""
        return self.state.polynomial


class DistributedMPlus1Auction:
    """Orchestrates the auction over the synchronous network."""

    def __init__(self, parameters: AuctionParameters,
                 bidders: Sequence[DistributedAuctionBidder]) -> None:
        if len(bidders) != parameters.num_bidders:
            raise ValueError("bidder count mismatch")
        self.parameters = parameters
        self.bidders = list(bidders)
        self.network = SynchronousNetwork(parameters.num_bidders)

    def _resolve(self, excluded: Sequence[int],
                 counter: OperationCounter) -> int:
        """Publish summed shares (minus ``excluded``) and resolve a degree."""
        for bidder in self.bidders:
            self.network.publish(bidder.index, "summed_share",
                                 (tuple(sorted(excluded)),
                                  bidder.summed_share(excluded)),
                                 field_elements=1)
        self.network.deliver()
        values: Dict[int, int] = {}
        for bidder in self.bidders:
            for message in self.network.receive(bidder.index, "summed_share"):
                _, value = message.payload
                values[message.sender] = value
        points = [self.parameters.pseudonyms[i] for i in sorted(values)]
        share_values = [values[i] for i in sorted(values)]
        degree = resolve_degree(points, share_values,
                                self.parameters.modulus,
                                candidates=self.parameters.degree_candidates(),
                                counter=counter)
        if degree is None:
            raise AuctionError(
                "degree resolution failed with %d bidders excluded"
                % len(excluded)
            )
        return degree

    def _identify_top_bidder(self, top_bid: int,
                             excluded: Sequence[int],
                             counter: OperationCounter) -> int:
        """Claimants open their polynomials; verify degree; lowest
        pseudonym wins the round."""
        claimants = []
        for bidder in self.bidders:
            if bidder.index in excluded:
                continue
            if bidder.choose_bid() == top_bid:
                self.network.publish(bidder.index, "opening",
                                     bidder.open_polynomial(),
                                     field_elements=top_bid
                                     + self.parameters.collusion_bound)
                claimants.append(bidder.index)
        self.network.deliver()
        openings: Dict[int, Polynomial] = {}
        for bidder in self.bidders:
            for message in self.network.receive(bidder.index, "opening"):
                openings[message.sender] = message.payload
        verified = []
        expected_degree = self.parameters.degree_for_bid(top_bid)
        for claimant in sorted(openings):
            polynomial = openings[claimant]
            if polynomial.degree != expected_degree:
                continue
            # Every bidder checks the opening against the share it holds.
            consistent = all(
                polynomial.evaluate(bidder.pseudonym, counter)
                == bidder.state.received[claimant]
                for bidder in self.bidders
            )
            if consistent:
                verified.append(claimant)
        if not verified:
            raise AuctionError("no verifiable claimant for top bid %d"
                               % top_bid)
        return min(verified,
                   key=lambda i: self.parameters.pseudonyms[i])

    def run(self, num_items: int) -> Tuple[AuctionResult, NetworkMetrics]:
        """Execute the full auction for ``num_items`` items."""
        n = self.parameters.num_bidders
        if not 1 <= num_items <= n - 1:
            raise ValueError("need 1 <= M <= n-1, got M=%d, n=%d"
                             % (num_items, n))
        counter = OperationCounter()
        # Share distribution round.
        for bidder in self.bidders:
            for recipient, value in bidder.encode().items():
                self.network.send(bidder.index, recipient, "share", value,
                                  field_elements=1)
        self.network.deliver()
        for bidder in self.bidders:
            for message in self.network.receive(bidder.index, "share"):
                bidder.receive(message.sender, message.payload)

        winners: List[int] = []
        for _ in range(num_items):
            degree = self._resolve(winners, counter)
            top_bid = self.parameters.bid_for_degree(degree)
            winner = self._identify_top_bidder(top_bid, winners, counter)
            winners.append(winner)
        # The (M+1)-st price: resolve once more with all winners excluded.
        price_degree = self._resolve(winners, counter)
        price = self.parameters.bid_for_degree(price_degree)
        result = AuctionResult(winners=tuple(sorted(winners)),
                               price=float(price))
        return result, self.network.metrics


def run_distributed_auction(valuations: Sequence[int], num_items: int,
                            parameters: Optional[AuctionParameters] = None,
                            collusion_bound: int = 1,
                            rng: Optional[random.Random] = None
                            ) -> Tuple[AuctionResult, NetworkMetrics]:
    """Convenience wrapper: build honest bidders and run the auction."""
    rng = rng or random.Random(0)
    if parameters is None:
        parameters = AuctionParameters.generate(len(valuations),
                                                collusion_bound)
    bidders = [
        DistributedAuctionBidder(index, parameters, valuation,
                                 rng=random.Random(rng.getrandbits(64)))
        for index, valuation in enumerate(valuations)
    ]
    auction = DistributedMPlus1Auction(parameters, bidders)
    return auction.run(num_items)
