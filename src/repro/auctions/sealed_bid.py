"""Centralized sealed-bid auctions: the reference semantics.

DMW is built on Kikuchi's distributed (M+1)st-price auction [23], so this
package implements that substrate — first the *centralized* reference
semantics (this module), then the distributed degree-encoded protocol
(:mod:`repro.auctions.distributed`).

An (M+1)st-price auction sells ``M`` identical items among unit-demand
buyers: the ``M`` highest bidders win and each pays the ``(M+1)``-st
highest bid.  ``M = 1`` is the Vickrey auction.  With unit-demand buyers
the (M+1)st-price auction is strategyproof (it is the VCG mechanism for
this domain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class AuctionResult:
    """Outcome of one sealed-bid multi-unit auction.

    Attributes
    ----------
    winners:
        Indices of the winning bidders, in bidder order.
    price:
        The uniform price every winner pays (the ``(M+1)``-st bid).
    """

    winners: Tuple[int, ...]
    price: float

    def utility(self, bidder: int, valuation: float) -> float:
        """Quasi-linear utility: ``valuation - price`` if winning, else 0."""
        if bidder in self.winners:
            return valuation - self.price
        return 0.0


def mplus1_price_auction(bids: Sequence[float], num_items: int
                         ) -> AuctionResult:
    """Run an (M+1)st-price auction.

    Parameters
    ----------
    bids:
        One bid per bidder (higher is better — these are buyers).
    num_items:
        ``M``, the number of identical items; needs at least ``M + 1``
        bidders so the price is defined.

    Ties on the winning threshold are broken toward lower bidder index
    (mirroring DMW's smallest-pseudonym rule).
    """
    if num_items < 1:
        raise ValueError("need at least one item")
    if len(bids) < num_items + 1:
        raise ValueError(
            "an (M+1)st-price auction needs at least M+1 = %d bidders, "
            "got %d" % (num_items + 1, len(bids))
        )
    order = sorted(range(len(bids)), key=lambda i: (-bids[i], i))
    winners = tuple(sorted(order[:num_items]))
    price = bids[order[num_items]]
    return AuctionResult(winners=winners, price=price)


def vickrey_auction(bids: Sequence[float]) -> AuctionResult:
    """The ``M = 1`` special case: highest bidder wins, pays second price."""
    return mplus1_price_auction(bids, num_items=1)


def first_price_auction(bids: Sequence[float]) -> AuctionResult:
    """First-price auction (NOT truthful — kept as the negative control
    for the property checkers)."""
    winner = max(range(len(bids)), key=lambda i: (bids[i], -i))
    return AuctionResult(winners=(winner,), price=bids[winner])


def check_auction_truthfulness(auction, valuations: Sequence[float],
                               bid_grid: Sequence[float]
                               ) -> List[Tuple[int, float, float, float]]:
    """Exhaustively search unilateral misreports over a bid grid.

    Parameters
    ----------
    auction:
        Callable ``bids -> AuctionResult``.
    valuations:
        The bidders' true values (truthful bids).
    bid_grid:
        Discrete alternative bids to try.

    Returns
    -------
    Violations as ``(bidder, deviation, truthful utility, deviating
    utility)`` tuples; empty for a truthful auction.
    """
    violations = []
    truthful = list(valuations)
    baseline = auction(truthful)
    for bidder, valuation in enumerate(valuations):
        honest_utility = baseline.utility(bidder, valuation)
        for deviation in bid_grid:
            if deviation == valuation:
                continue
            bids = list(truthful)
            bids[bidder] = deviation
            result = auction(bids)
            utility = result.utility(bidder, valuation)
            if utility > honest_utility + 1e-9:
                violations.append((bidder, deviation, honest_utility,
                                   utility))
    return violations
