"""Prime generation for the DMW cryptographic parameters.

DMW (Phase I) publishes two large primes ``p`` and ``q`` with ``q | p - 1``
and two generators of the order-``q`` subgroup of ``Z_p^*``.  This module
provides the number-theoretic machinery: Miller-Rabin primality testing
(deterministic for inputs below 3.3 * 10^24 using the known witness set,
randomized beyond), prime search, and Schnorr-parameter generation.

No external libraries are used; everything operates on Python integers.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

# Witnesses proven sufficient for a deterministic Miller-Rabin test of any
# integer below 3,317,044,064,679,887,385,961,981 (Sorenson & Webster 2015).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)


def _miller_rabin_round(n: int, witness: int, d: int, r: int) -> bool:
    """Return True if ``n`` passes one Miller-Rabin round for ``witness``."""
    x = pow(witness, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, rng: Optional[random.Random] = None, rounds: int = 40) -> bool:
    """Primality test.

    Deterministic for ``n`` below ~3.3e24; Miller-Rabin with ``rounds``
    random witnesses beyond that (error probability at most ``4**-rounds``).

    Parameters
    ----------
    n:
        Integer to test.
    rng:
        Source of witnesses for the probabilistic range.  A fresh
        ``random.Random(n)`` is used when omitted so results are stable.
    rounds:
        Number of probabilistic rounds for large ``n``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [w for w in _DETERMINISTIC_WITNESSES if w < n - 1]
    else:
        rng = rng or random.Random(n)
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return all(_miller_rabin_round(n, w, d, r) for w in witnesses)


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime of exactly ``bits`` bits.

    Parameters
    ----------
    bits:
        Desired bit length (at least 2).
    rng:
        Randomness source; passing the same seeded generator reproduces the
        same prime.
    """
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits, got %d" % bits)
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate, rng):
            return candidate


def generate_schnorr_parameters(q_bits: int, p_bits: int,
                                rng: random.Random,
                                max_attempts: int = 100_000) -> Tuple[int, int]:
    """Generate ``(p, q)`` with ``q`` prime, ``p`` prime, and ``q | p - 1``.

    The construction searches for ``p = k*q + 1`` with ``k`` random and even,
    the standard Schnorr-group setup.

    Parameters
    ----------
    q_bits:
        Bit length of the subgroup order ``q``.
    p_bits:
        Bit length of the field prime ``p`` (must exceed ``q_bits``).
    rng:
        Randomness source.
    max_attempts:
        Safety bound on the number of candidate ``k`` values tried.

    Returns
    -------
    (p, q):
        The field prime and subgroup order.
    """
    if p_bits <= q_bits + 1:
        raise ValueError(
            "p_bits (%d) must exceed q_bits (%d) by at least 2" % (p_bits, q_bits)
        )
    q = random_prime(q_bits, rng)
    k_bits = p_bits - q_bits
    for _ in range(max_attempts):
        k = rng.getrandbits(k_bits) | (1 << (k_bits - 1))
        k += k % 2  # keep k even so p = k*q + 1 is odd
        p = k * q + 1
        if p.bit_length() == p_bits and is_prime(p, rng):
            return p, q
    raise RuntimeError(
        "failed to find p = k*q + 1 prime after %d attempts" % max_attempts
    )


def find_subgroup_generator(p: int, q: int, rng: random.Random,
                            exclude: Tuple[int, ...] = ()) -> int:
    """Return a generator of the order-``q`` subgroup of ``Z_p^*``.

    A random ``h`` is raised to ``(p-1)/q``; the result generates the
    subgroup whenever it is not 1.  Generators listed in ``exclude`` are
    rejected so independent generators (``z1 != z2``) can be drawn.
    """
    if (p - 1) % q != 0:
        raise ValueError("q=%d does not divide p-1=%d" % (q, p - 1))
    cofactor = (p - 1) // q
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, cofactor, p)
        if g != 1 and g not in exclude:
            return g
