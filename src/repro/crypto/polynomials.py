"""Polynomials over ``Z_q`` with metered Horner evaluation.

DMW encodes each bid in the *degree* of a randomly chosen polynomial with a
zero constant term (paper eq. (3): all sums start at ``l = 1``).  Agents
evaluate these polynomials at the published pseudonyms to produce shares;
Theorem 12 costs each evaluation at ``O(degree)`` multiplications via
Horner's rule, which is exactly what :meth:`Polynomial.evaluate` does.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .modular import NULL_COUNTER, OperationCounter


class Polynomial:
    """An immutable polynomial ``a_0 + a_1 x + ... + a_d x^d`` over ``Z_q``.

    Coefficients are normalized mod ``q`` and trailing zero coefficients are
    stripped, so :attr:`degree` is always exact (the zero polynomial has
    degree ``-1`` by convention).
    """

    __slots__ = ("modulus", "coefficients")

    def __init__(self, coefficients: Sequence[int], modulus: int) -> None:
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        reduced = [c % modulus for c in coefficients]
        while reduced and reduced[-1] == 0:
            reduced.pop()
        self.modulus = modulus
        self.coefficients = tuple(reduced)

    # -- constructors --------------------------------------------------------
    @classmethod
    def zero(cls, modulus: int) -> "Polynomial":
        """Return the zero polynomial."""
        return cls((), modulus)

    @classmethod
    def random(cls, degree: int, modulus: int, rng: random.Random,
               zero_constant_term: bool = True) -> "Polynomial":
        """Draw a uniformly random polynomial of *exact* ``degree``.

        Parameters
        ----------
        degree:
            Exact degree; the leading coefficient is drawn from ``Z_q^*``.
            ``-1`` yields the zero polynomial; ``0`` with
            ``zero_constant_term=True`` is rejected (it would force the zero
            polynomial, contradicting exact degree 0).
        modulus:
            The field size ``q``.
        rng:
            Randomness source.
        zero_constant_term:
            When True (the DMW convention, eq. (3)), ``a_0 = 0``.
        """
        if degree < -1:
            raise ValueError("degree must be >= -1, got %d" % degree)
        if degree == -1:
            return cls.zero(modulus)
        if degree == 0 and zero_constant_term:
            raise ValueError("degree 0 with zero constant term is impossible")
        coefficients = [0 if zero_constant_term else rng.randrange(modulus)]
        coefficients.extend(rng.randrange(modulus) for _ in range(degree - 1))
        if degree >= 1:
            coefficients.append(rng.randrange(1, modulus))
        return cls(coefficients, modulus)

    # -- basic queries ---------------------------------------------------------
    @property
    def degree(self) -> int:
        """Exact degree (``-1`` for the zero polynomial)."""
        return len(self.coefficients) - 1

    def coefficient(self, index: int) -> int:
        """Return the coefficient of ``x**index`` (0 beyond the degree)."""
        if index < 0:
            raise IndexError("coefficient index must be non-negative")
        if index >= len(self.coefficients):
            return 0
        return self.coefficients[index]

    def is_zero(self) -> bool:
        return not self.coefficients

    # -- arithmetic -------------------------------------------------------------
    def evaluate(self, x: int, counter: OperationCounter = NULL_COUNTER) -> int:
        """Evaluate at ``x`` by Horner's rule, counting one multiplication
        and one addition per degree."""
        result = 0
        x %= self.modulus
        for coefficient in reversed(self.coefficients):
            counter.count_mul()
            counter.count_add()
            result = (result * x + coefficient) % self.modulus
        return result

    def _check_compatible(self, other: "Polynomial") -> None:
        if self.modulus != other.modulus:
            raise ValueError("polynomials over different moduli (%d vs %d)"
                             % (self.modulus, other.modulus))

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        size = max(len(self.coefficients), len(other.coefficients))
        summed = [
            (self.coefficient(i) + other.coefficient(i)) % self.modulus
            for i in range(size)
        ]
        return Polynomial(summed, self.modulus)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        size = max(len(self.coefficients), len(other.coefficients))
        diffed = [
            (self.coefficient(i) - other.coefficient(i)) % self.modulus
            for i in range(size)
        ]
        return Polynomial(diffed, self.modulus)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(self.modulus)
        product = [0] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            if a == 0:
                continue
            for j, b in enumerate(other.coefficients):
                product[i + j] = (product[i + j] + a * b) % self.modulus
        return Polynomial(product, self.modulus)

    def scale(self, scalar: int) -> "Polynomial":
        """Return ``scalar * self``."""
        scalar %= self.modulus
        return Polynomial([scalar * c for c in self.coefficients], self.modulus)

    # -- protocol conveniences -----------------------------------------------
    def shares_at(self, points: Sequence[int],
                  counter: OperationCounter = NULL_COUNTER) -> List[int]:
        """Evaluate at every point in ``points`` (the pseudonym list)."""
        return [self.evaluate(point, counter) for point in points]

    def padded_coefficients(self, size: int) -> List[int]:
        """Coefficients ``a_0 .. a_{size-1}`` padded with zeros.

        Commitment vectors have fixed length ``sigma`` regardless of the
        underlying degree (that is what hides the degree), so callers need
        zero-padded coefficient lists.
        """
        if size < len(self.coefficients):
            raise ValueError(
                "cannot pad degree-%d polynomial into %d coefficients"
                % (self.degree, size)
            )
        return [self.coefficient(i) for i in range(size)]

    # -- dunder plumbing -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return (self.modulus, self.coefficients) == (other.modulus, other.coefficients)

    def __hash__(self) -> int:
        return hash((self.modulus, self.coefficients))

    def __repr__(self) -> str:
        return "Polynomial(%r, modulus=%d)" % (list(self.coefficients), self.modulus)


def sum_polynomials(polynomials: Sequence[Polynomial], modulus: int) -> Polynomial:
    """Return the sum of ``polynomials`` (the ``E``/``F``/``H`` aggregates)."""
    total = Polynomial.zero(modulus)
    for polynomial in polynomials:
        total = total + polynomial
    return total
