"""Schnorr groups: the algebraic home of the DMW commitments.

Phase I of DMW publishes primes ``p, q`` with ``q | p - 1`` and two distinct
generators ``z1, z2`` of the order-``q`` subgroup of ``Z_p^*``.  All
commitments (``O``, ``Q``, ``R``) and the exponent-space degree-resolution
values (``Lambda``, ``Psi``) are elements of that subgroup; all *exponents*
(polynomial coefficients and shares) live in ``Z_q``.

See DESIGN.md decision 1 for why exponents are taken mod ``q`` even though
the journal text loosely says "mod p": the generators have order ``q``, so
``z1^x`` only depends on ``x mod q`` and eq. (12) itself reduces the Lagrange
coefficients mod ``q``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from . import backend, fastexp
from .modular import NULL_COUNTER, OperationCounter, mod_exp, mod_inv, mod_mul
from .primes import find_subgroup_generator, generate_schnorr_parameters, is_prime


@dataclass(frozen=True)
class SchnorrGroup:
    """An order-``q`` subgroup of ``Z_p^*``.

    Attributes
    ----------
    p:
        Field prime; group elements are integers in ``[1, p-1]``.
    q:
        Prime order of the subgroup; exponents are integers mod ``q``.
    """

    p: int
    q: int

    def __post_init__(self) -> None:
        if (self.p - 1) % self.q != 0:
            raise ValueError("q must divide p - 1")
        if not is_prime(self.q):
            raise ValueError("q=%d is not prime" % self.q)
        if not is_prime(self.p):
            raise ValueError("p=%d is not prime" % self.p)

    # -- group operations (all metered) -------------------------------------
    def exp(self, base: int, exponent: int,
            counter: OperationCounter = NULL_COUNTER) -> int:
        """Return ``base ** (exponent mod q) mod p``."""
        return mod_exp(base % self.p, exponent % self.q, self.p, counter)

    def mul(self, a: int, b: int, counter: OperationCounter = NULL_COUNTER) -> int:
        """Return ``a * b mod p``."""
        return mod_mul(a, b, self.p, counter)

    def div(self, a: int, b: int, counter: OperationCounter = NULL_COUNTER) -> int:
        """Return ``a * b^{-1} mod p``."""
        return mod_mul(a, mod_inv(b, self.p, counter), self.p, counter)

    def product(self, elements: Iterable[int],
                counter: OperationCounter = NULL_COUNTER) -> int:
        """Return the product of ``elements`` mod ``p`` (1 for empty input)."""
        result = 1
        for element in elements:
            result = mod_mul(result, element, self.p, counter)
        return result

    # -- membership / sampling ----------------------------------------------
    def contains(self, element: int) -> bool:
        """Return True if ``element`` lies in the order-``q`` subgroup."""
        return (0 < element < self.p
                and backend.ACTIVE.powmod(element, self.q, self.p) == 1)

    def random_exponent(self, rng: random.Random, nonzero: bool = False) -> int:
        """Draw a uniform exponent from ``Z_q`` (``Z_q^*`` if ``nonzero``)."""
        low = 1 if nonzero else 0
        return rng.randrange(low, self.q)

    def find_generator(self, rng: random.Random,
                       exclude: Tuple[int, ...] = ()) -> int:
        """Return a fresh generator of the subgroup, avoiding ``exclude``."""
        return find_subgroup_generator(self.p, self.q, rng, exclude)

    @property
    def p_bits(self) -> int:
        """Bit length of the field prime (the ``log p`` of Theorem 12)."""
        return self.p.bit_length()


@dataclass(frozen=True)
class GroupParameters:
    """A Schnorr group plus the two public generators ``z1, z2``.

    The discrete logarithm of ``z2`` base ``z1`` must be unknown to every
    agent for the Pedersen commitments to be hiding *and* binding; in this
    simulation the generators are drawn independently at setup time, which
    models a trusted parameter ceremony.
    """

    group: SchnorrGroup
    z1: int
    z2: int

    def __post_init__(self) -> None:
        if not self.group.contains(self.z1) or self.z1 == 1:
            raise ValueError("z1 is not a generator of the order-q subgroup")
        if not self.group.contains(self.z2) or self.z2 == 1:
            raise ValueError("z2 is not a generator of the order-q subgroup")
        if self.z1 == self.z2:
            raise ValueError("z1 and z2 must be distinct")

    # -- fixed-base fast paths (counted on the naive schedule) ---------------
    def _generator_table(self, base: int) -> "fastexp.FixedBaseTable":
        group = self.group
        return fastexp.fixed_base_table(base, group.p, group.q.bit_length())

    def exp_z1(self, exponent: int,
               counter: OperationCounter = NULL_COUNTER) -> int:
        """Return ``z1 ** (exponent mod q) mod p`` via the fixed-base table.

        Counts exactly what :meth:`SchnorrGroup.exp` would: one ``exp``
        event with the square-and-multiply schedule of the reduced
        exponent.
        """
        if not fastexp.enabled():
            return self.group.exp(self.z1, exponent, counter)
        reduced = exponent % self.group.q
        counter.count_exp(reduced)
        return self._generator_table(self.z1).pow(reduced)

    def exp_z2(self, exponent: int,
               counter: OperationCounter = NULL_COUNTER) -> int:
        """Return ``z2 ** (exponent mod q) mod p`` via the fixed-base table."""
        if not fastexp.enabled():
            return self.group.exp(self.z2, exponent, counter)
        reduced = exponent % self.group.q
        counter.count_exp(reduced)
        return self._generator_table(self.z2).pow(reduced)

    def open_value(self, value: int, blinding: int,
                   counter: OperationCounter = NULL_COUNTER) -> int:
        """Return the Pedersen opening ``z1^value * z2^blinding mod p``.

        This is the left-hand side of eqs. (7)-(9) and (13) and the
        commitment function itself; both generators go through their
        fixed-base tables.  Counted cost: two exponentiations plus one
        multiplication — identical to the naive evaluation order.
        """
        group = self.group
        if not fastexp.enabled():
            return group.mul(
                group.exp(self.z1, value, counter),
                group.exp(self.z2, blinding, counter),
                counter,
            )
        reduced_value = value % group.q
        reduced_blinding = blinding % group.q
        counter.count_exp(reduced_value)
        counter.count_exp(reduced_blinding)
        counter.count_mul()
        return (self._generator_table(self.z1).pow(reduced_value)
                * self._generator_table(self.z2).pow(reduced_blinding)
                ) % group.p

    @classmethod
    def generate(cls, q_bits: int, p_bits: int,
                 rng: Optional[random.Random] = None) -> "GroupParameters":
        """Generate fresh parameters of the requested sizes.

        When no ``rng`` is supplied, a generator seeded deterministically
        from the requested sizes is used so that repeated calls (and
        reruns) produce identical parameters — unseeded entropy would
        break bit-identical transcripts (dmwlint DMW001).
        """
        rng = rng or random.Random((q_bits << 16) | p_bits)
        p, q = generate_schnorr_parameters(q_bits, p_bits, rng)
        group = SchnorrGroup(p=p, q=q)
        z1 = group.find_generator(rng)
        z2 = group.find_generator(rng, exclude=(z1,))
        return cls(group=group, z1=z1, z2=z2)


def _precomputed(p: int, q: int, z1: int, z2: int) -> GroupParameters:
    return GroupParameters(group=SchnorrGroup(p=p, q=q), z1=z1, z2=z2)


def _generate_fixture(q_bits: int, p_bits: int, seed: int) -> GroupParameters:
    """Deterministically generate a reusable parameter set (test fixture)."""
    return GroupParameters.generate(q_bits, p_bits, random.Random(seed))


# Small deterministic parameter sets, generated once per process and cached.
# Tests use these to avoid re-running prime search in every test case.
_FIXTURE_CACHE = {}

#: (q_bits, p_bits) presets by human-readable size name.
FIXTURE_SIZES = {
    "tiny": (24, 40),
    "small": (40, 56),
    "medium": (64, 96),
    "large": (160, 512),
}


def fixture_group(size: str = "small") -> GroupParameters:
    """Return a cached deterministic :class:`GroupParameters` preset.

    Parameters
    ----------
    size:
        One of ``"tiny"``, ``"small"``, ``"medium"``, ``"large"`` — see
        :data:`FIXTURE_SIZES`.  The same object is returned on every call
        within a process.
    """
    if size not in FIXTURE_SIZES:
        raise KeyError("unknown fixture size %r; options: %s"
                       % (size, sorted(FIXTURE_SIZES)))
    if size not in _FIXTURE_CACHE:
        q_bits, p_bits = FIXTURE_SIZES[size]
        _FIXTURE_CACHE[size] = _generate_fixture(q_bits, p_bits, seed=0xD311 + q_bits)
    return _FIXTURE_CACHE[size]
