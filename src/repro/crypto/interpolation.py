"""Lagrange interpolation and polynomial degree resolution (paper §2.4).

DMW determines auction outcomes by *degree resolution*: every bid is encoded
as the degree of a polynomial with zero constant term, the polynomials are
summed, and the degree of the sum (which equals the maximum per-agent degree,
hence the minimum bid) is found as the least ``d`` for which interpolating
``d + 1`` shares reproduces the constant term ``0``.

Two variants are provided:

* :func:`resolve_degree` works on plaintext shares (used for winner
  identification, eq. (14), after the relevant shares are disclosed);
* :func:`resolve_degree_in_exponent` works on *committed* shares
  ``Lambda_i = z1^{E(alpha_i)}`` (eq. (12)), testing
  ``prod_k Lambda_k^{rho_k} == 1`` without ever learning the shares.

Note on the off-by-one in the paper (DESIGN.md decision 2): interpolating a
degree-``d`` polynomial requires ``d + 1`` points, so the least ``s`` with
``f^{(s)}(0) = f(0)`` is ``d + 1``, not ``d``.  All functions here take and
return *degrees* and internally use ``degree + 1`` interpolation points,
keeping the protocol self-consistent.  A resolution test at a candidate
degree below the true degree passes accidentally with probability ``1/q``,
the same failure probability the paper cites.

Execution fast paths (see :mod:`repro.crypto.fastexp` and
``docs/PERFORMANCE.md``): inversions are batched with Montgomery's trick,
the exponent-space test products use Straus multi-exponentiation, and both
the Lagrange weight vectors and whole resolutions can be memoised in a
per-execution :class:`~repro.crypto.fastexp.PublicValueCache`.  The
*counted* cost — one ``inv`` per Lagrange basis term, square-and-multiply
exponentiation — is charged on the paper's analytic schedule regardless,
including on cache hits (replayed against the caller's counter).

Every mod-mul, batch inversion, and multi-exponentiation here executes on
the active arithmetic engine (:mod:`repro.crypto.backend`), so selecting
the ``gmpy2`` backend accelerates degree resolution without touching the
counted schedule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from . import fastexp
from .fastexp import PublicValueCache, batch_mod_inv, multi_exp
from .groups import SchnorrGroup
from .modular import (
    NULL_COUNTER,
    OperationCounter,
    mod_add,
    mod_inv,
    mod_mul,
)


def lagrange_weights_at_zero(points: Sequence[int], modulus: int,
                             counter: OperationCounter = NULL_COUNTER) -> List[int]:
    """Return the Lagrange basis values ``L_k(0)`` for the given points.

    ``L_k(0) = prod_{i != k} alpha_i / (alpha_i - alpha_k) (mod modulus)``,
    i.e. the ``rho_k`` of eq. (12).  ``modulus`` must be prime and the points
    distinct, non-zero, and distinct mod ``modulus``.

    The denominators are inverted in one Montgomery batch; the counted cost
    stays one ``inv`` per basis term.
    """
    reduced = [point % modulus for point in points]
    if len(set(reduced)) != len(reduced):
        raise ValueError("interpolation points must be distinct mod modulus")
    if any(point == 0 for point in reduced):
        raise ValueError("interpolation points must be non-zero")
    numerators = []
    denominators = []
    for k, alpha_k in enumerate(reduced):
        numerator, denominator = 1, 1
        for i, alpha_i in enumerate(reduced):
            if i == k:
                continue
            numerator = mod_mul(numerator, alpha_i, modulus, counter)
            denominator = mod_mul(
                denominator, (alpha_i - alpha_k) % modulus, modulus, counter
            )
        numerators.append(numerator)
        denominators.append(denominator)
    inverses = batch_mod_inv(denominators, modulus, counter)
    return [mod_mul(numerator, inverse, modulus, counter)
            for numerator, inverse in zip(numerators, inverses)]


def _interpolation_charge(size: int, counter: OperationCounter) -> None:
    """Charge the naive :func:`interpolate_at_zero` schedule for ``size``
    points without recomputing: ``size^2 + 2 size + 1`` multiplications,
    ``2 size`` inversions, ``size`` additions (see the step-by-step
    accounting in the function body)."""
    counter.count_mul(size * size + 2 * size + 1)
    counter.count_inv(2 * size)
    counter.count_add(size)


def interpolate_at_zero(points: Sequence[int], values: Sequence[int],
                        modulus: int,
                        counter: OperationCounter = NULL_COUNTER,
                        cache: Optional[PublicValueCache] = None) -> int:
    """Return ``f^{(s)}(0)``, the paper's s-th Lagrange interpolation.

    This evaluates, at 0, the unique degree-``s-1`` polynomial through the
    ``s`` given ``(point, value)`` pairs.  It equals the true ``f(0)``
    whenever ``deg f <= s - 1``.

    Implemented with the three-step algorithm of §2.4 (psi / phi / sum),
    which costs ``Theta(s^2)`` multiplications — the figure Theorem 12
    builds on — with the denominator order of eq. (2), ``alpha_i - alpha_k``
    (the §2.4 listing transposes it, which only flips a sign).

    When ``cache`` is given, the point-set-dependent part (the combined
    weights ``phi(0) / (denominator_k * alpha_k)``) is memoised per
    ``(points, modulus)``, so repeated interpolations over the same share
    row cost ``s`` raw multiplications; the naive Theta(s^2) schedule is
    still charged to ``counter`` on every call.
    """
    if len(points) != len(values):
        raise ValueError("points and values must have equal length")
    if not points:
        raise ValueError("at least one interpolation point is required")
    reduced_points = [point % modulus for point in points]
    if not fastexp.enabled():
        # Reference path: exactly the counted §2.4 listing.
        # Step 1: psi_k = f(alpha_k) / prod_{i != k} (alpha_i - alpha_k)
        psi = []
        for k, alpha_k in enumerate(reduced_points):
            denominator = 1
            for i, alpha_i in enumerate(reduced_points):
                if i == k:
                    continue
                denominator = mod_mul(
                    denominator, (alpha_i - alpha_k) % modulus, modulus,
                    counter
                )
            psi.append(
                mod_mul(values[k] % modulus,
                        mod_inv(denominator, modulus, counter), modulus,
                        counter)
            )
        # Step 2: phi(0) = prod_k alpha_k
        phi = 1
        for alpha_k in reduced_points:
            phi = mod_mul(phi, alpha_k, modulus, counter)
        # Step 3: f^{(s)}(0) = phi(0) * sum_k psi_k / alpha_k
        total = 0
        for alpha_k, psi_k in zip(reduced_points, psi):
            total = mod_add(
                total,
                mod_mul(psi_k, mod_inv(alpha_k, modulus, counter), modulus,
                        counter),
                modulus, counter,
            )
        return mod_mul(phi, total, modulus, counter)
    size = len(reduced_points)
    key = None
    if cache is not None:
        key = ("rho", modulus, tuple(reduced_points))
        entry = cache.get_weights(key)
        if entry is not None:
            # Replay the naive schedule, then take the memoised shortcut:
            # f(0) = sum_k values[k] * rho_k with rho_k combining phi,
            # the step-1 denominator, and the step-3 alpha division.
            _interpolation_charge(size, counter)
            total = 0
            for value, rho in zip(values, entry):
                total += (value % modulus) * rho
            return total % modulus
    # Fast path, first computation: same counted schedule as the reference
    # listing (s^2 + 2s + 1 muls, 2s invs, s adds) with the 2s inversions
    # executed as two Montgomery batches.
    denominators = []
    for k, alpha_k in enumerate(reduced_points):
        denominator = 1
        for i, alpha_i in enumerate(reduced_points):
            if i == k:
                continue
            denominator = mod_mul(
                denominator, (alpha_i - alpha_k) % modulus, modulus, counter
            )
        denominators.append(denominator)
    inverse_denominators = batch_mod_inv(denominators, modulus, counter)
    psi = [mod_mul(values[k] % modulus, inverse_denominators[k], modulus,
                   counter)
           for k in range(size)]
    phi = 1
    for alpha_k in reduced_points:
        phi = mod_mul(phi, alpha_k, modulus, counter)
    inverse_alphas = batch_mod_inv(reduced_points, modulus, counter)
    total = 0
    for psi_k, inverse_alpha in zip(psi, inverse_alphas):
        total = mod_add(
            total,
            mod_mul(psi_k, inverse_alpha, modulus, counter),
            modulus, counter,
        )
    result = mod_mul(phi, total, modulus, counter)
    if key is not None:
        rho = tuple(
            (phi * inverse_denominators[k] * inverse_alphas[k]) % modulus
            for k in range(size)
        )
        cache.put_weights(key, rho)
    return result


def resolve_degree(points: Sequence[int], values: Sequence[int], modulus: int,
                   candidates: Optional[Sequence[int]] = None,
                   counter: OperationCounter = NULL_COUNTER,
                   cache: Optional[PublicValueCache] = None) -> Optional[int]:
    """Resolve the degree of a zero-constant-term polynomial from shares.

    Parameters
    ----------
    points, values:
        Shares ``(alpha_k, f(alpha_k))``; at least ``degree + 1`` of them
        must be supplied for the true degree to be detectable.
    modulus:
        The field prime ``q``.
    candidates:
        Candidate degrees to test, in the order given (callers pass them
        ascending so the least passing candidate is returned).  Defaults to
        ``1 .. len(points) - 1``.
    counter:
        Operation meter.
    cache:
        Optional per-execution :class:`PublicValueCache`; memoises the
        Lagrange weight vectors shared by every interpolation over the
        same point prefix.

    Returns
    -------
    The first candidate degree ``d`` such that the ``(d+1)``-point
    interpolation at zero vanishes, or ``None`` if no candidate passes.
    """
    if candidates is None:
        candidates = range(1, len(points))
    for degree in candidates:
        needed = degree + 1
        if needed > len(points):
            continue
        value = interpolate_at_zero(points[:needed], values[:needed],
                                    modulus, counter, cache)
        if value == 0:
            return degree
    return None


def _exponent_product(group: SchnorrGroup, values: Sequence[int],
                      weights: Sequence[int],
                      counter: OperationCounter,
                      tables: Optional[Sequence[Sequence[int]]] = None) -> int:
    """Return ``prod_k values[k] ** weights[k] mod p`` (the eq. (12) test).

    Executed with Straus multi-exponentiation when the fast path is on;
    counted as per-term square-and-multiply plus one multiplication per
    term either way.  ``tables`` may hold precomputed window-5
    :func:`~repro.crypto.fastexp.straus_tables` rows for a prefix-compatible
    base list (the incremental resolution reuses one table set across all
    candidate degrees).
    """
    if not fastexp.enabled():
        product = 1
        for value, weight in zip(values, weights):
            product = group.mul(product, group.exp(value, weight, counter),
                                counter)
        return product
    q = group.q
    reduced = [weight % q for weight in weights]
    for weight in reduced:
        counter.count_exp(weight)
    counter.count_mul(len(reduced))
    if tables is not None:
        return fastexp.multi_exp_with_tables(list(tables[:len(reduced)]),
                                             reduced, group.p, window=5)
    return multi_exp(list(values), reduced, group.p)


def resolve_degree_in_exponent(group: SchnorrGroup, points: Sequence[int],
                               exponent_values: Sequence[int],
                               candidates: Optional[Sequence[int]] = None,
                               counter: OperationCounter = NULL_COUNTER,
                               incremental: bool = True,
                               cache: Optional[PublicValueCache] = None
                               ) -> Optional[int]:
    """Degree resolution on committed shares (eq. (12)).

    Parameters
    ----------
    group:
        A :class:`repro.crypto.groups.SchnorrGroup`; weights are computed
        mod ``group.q`` and the test product mod ``group.p``.
    points:
        The pseudonyms ``alpha_k``.
    exponent_values:
        The published ``Lambda_k = z1^{E(alpha_k)}``.
    candidates:
        Candidate degrees (ascending); defaults to ``1 .. len(points) - 1``.
    counter:
        Operation meter.
    incremental:
        When True (default) the Lagrange weights are *updated* as each new
        point joins the interpolation set — ``O(s)`` multiplications per
        step, ``O(n^2 log p)`` overall — which is the cost Theorem 12
        assumes.  ``False`` recomputes the weights from scratch at every
        candidate (``O(n^3)`` weight work), kept for the cost-model
        ablation benchmark.
    cache:
        Optional per-execution :class:`PublicValueCache`.  All honest
        agents resolve the *same* public ``(points, Lambda)`` inputs, so
        the whole resolution is memoised by content and replayed (result
        plus recorded counter deltas) for every subsequent agent.

    Returns
    -------
    The first candidate degree ``d`` with
    ``prod_{k=1}^{d+1} Lambda_k^{rho_k} == 1 (mod p)``, or ``None``.
    """
    if len(points) != len(exponent_values):
        raise ValueError("points and exponent values must have equal length")
    if candidates is None:
        candidates = range(1, len(points))
    candidates = list(candidates)
    if cache is not None and fastexp.enabled():
        key = ("resolve-exp", group.p, group.q, tuple(points),
               tuple(exponent_values), tuple(candidates), incremental)
        entry = cache.get_weights(key)
        if entry is not None:
            degree, recorded = entry
            counter.merge(recorded)
            return degree
        recorded = OperationCounter()
        degree = _resolve_degree_in_exponent(group, points, exponent_values,
                                             candidates, recorded,
                                             incremental)
        cache.put_weights(key, (degree, recorded))
        counter.merge(recorded)
        return degree
    return _resolve_degree_in_exponent(group, points, exponent_values,
                                       candidates, counter, incremental)


def _resolve_degree_in_exponent(group: SchnorrGroup, points: Sequence[int],
                                exponent_values: Sequence[int],
                                candidates: List[int],
                                counter: OperationCounter,
                                incremental: bool) -> Optional[int]:
    """Uncached body of :func:`resolve_degree_in_exponent`."""
    # One Straus digit-table row per Lambda base, grown lazily with the
    # interpolation prefix and shared across every candidate-degree test
    # (the bases never change within one resolution, only the weights do).
    base_tables: Optional[List[List[int]]] = ([] if fastexp.enabled()
                                              else None)

    def tables_for(size: int) -> Optional[List[List[int]]]:
        if base_tables is None:
            return None
        while len(base_tables) < size:
            base_tables.extend(fastexp.straus_tables(
                [exponent_values[len(base_tables)]], group.p, window=5))
        return base_tables

    if not incremental:
        for degree in candidates:
            needed = degree + 1
            if needed > len(points):
                continue
            weights = lagrange_weights_at_zero(points[:needed], group.q,
                                               counter)
            product = _exponent_product(group, exponent_values[:needed],
                                        weights, counter,
                                        tables_for(needed))
            if product == 1:
                return degree
        return None
    # Incremental scan: maintain the weights for the current point prefix.
    # Adding alpha_new multiplies every existing weight by
    # alpha_new / (alpha_new - alpha_k) and computes the new point's own
    # weight as prod_i alpha_i / (alpha_i - alpha_new).  The per-step
    # divisor inversions run as one Montgomery batch (counted one ``inv``
    # each, the Theorem 12 schedule).
    q = group.q
    candidate_set = set(candidates)
    max_candidate = max(candidate_set) if candidate_set else 0
    reduced = [point % q for point in points]
    if len(set(reduced)) != len(reduced) or 0 in reduced:
        raise ValueError("points must be distinct and non-zero mod q")
    weights: list = []
    for size in range(1, min(len(points), max_candidate + 1) + 1):
        alpha_new = reduced[size - 1]
        differences = [(alpha_new - reduced[k]) % q for k in range(size - 1)]
        inverse_differences = batch_mod_inv(differences, q, counter)
        new_numerator, new_denominator = 1, 1
        for k in range(size - 1):
            alpha_k = reduced[k]
            weights[k] = mod_mul(
                weights[k],
                mod_mul(alpha_new, inverse_differences[k], q, counter),
                q, counter,
            )
            new_numerator = mod_mul(new_numerator, alpha_k, q, counter)
            new_denominator = mod_mul(new_denominator,
                                      (alpha_k - alpha_new) % q, q, counter)
        weights.append(mod_mul(new_numerator,
                               mod_inv(new_denominator, q, counter)
                               if size > 1 else 1, q, counter))
        degree = size - 1
        if degree not in candidate_set:
            continue
        product = _exponent_product(group, exponent_values[:size], weights,
                                    counter, tables_for(size))
        if product == 1:
            return degree
    return None
