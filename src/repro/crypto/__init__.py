"""Cryptographic substrate for DMW.

Everything DMW needs from cryptography, built from scratch on Python
integers: metered modular arithmetic (:mod:`.modular`), prime and Schnorr
group generation (:mod:`.primes`, :mod:`.groups`), polynomials over ``Z_q``
(:mod:`.polynomials`), Lagrange interpolation and degree resolution
(:mod:`.interpolation`), Pedersen commitments (:mod:`.commitments`), and the
degree-encoded secret-sharing scheme (:mod:`.secretsharing`).
"""

from .commitments import PedersenCommitter, PolynomialCommitment
from .groups import GroupParameters, SchnorrGroup, fixture_group
from .interpolation import (
    interpolate_at_zero,
    lagrange_weights_at_zero,
    resolve_degree,
    resolve_degree_in_exponent,
)
from .modular import (
    NULL_COUNTER,
    OperationCounter,
    metered,
    mod_add,
    mod_div,
    mod_exp,
    mod_inv,
    mod_mul,
    mod_sub,
)
from .polynomials import Polynomial, sum_polynomials
from .primes import (
    find_subgroup_generator,
    generate_schnorr_parameters,
    is_prime,
    next_prime,
    random_prime,
)
from .secretsharing import (
    DegreeEncodedSharing,
    DegreeEncodingScheme,
    ShamirScheme,
    Share,
)

__all__ = [
    "NULL_COUNTER",
    "DegreeEncodedSharing",
    "DegreeEncodingScheme",
    "GroupParameters",
    "OperationCounter",
    "PedersenCommitter",
    "Polynomial",
    "PolynomialCommitment",
    "SchnorrGroup",
    "ShamirScheme",
    "Share",
    "find_subgroup_generator",
    "fixture_group",
    "generate_schnorr_parameters",
    "interpolate_at_zero",
    "is_prime",
    "lagrange_weights_at_zero",
    "metered",
    "mod_add",
    "mod_div",
    "mod_exp",
    "mod_inv",
    "mod_mul",
    "mod_sub",
    "next_prime",
    "random_prime",
    "resolve_degree",
    "resolve_degree_in_exponent",
    "sum_polynomials",
]
