"""Cryptographic substrate for DMW.

Everything DMW needs from cryptography, built from scratch on Python
integers: metered modular arithmetic (:mod:`.modular`), prime and Schnorr
group generation (:mod:`.primes`, :mod:`.groups`), polynomials over ``Z_q``
(:mod:`.polynomials`), Lagrange interpolation and degree resolution
(:mod:`.interpolation`), Pedersen commitments (:mod:`.commitments`), and the
degree-encoded secret-sharing scheme (:mod:`.secretsharing`).
"""

from .backend import (
    ArithmeticBackend,
    BackendUnavailableError,
    active_backend,
    available_backends,
    gmpy2_available,
    select_backend,
    using_backend,
)
from .commitments import (
    PedersenCommitter,
    PolynomialCommitment,
    verify_share_batch,
)
from .fastexp import (
    FixedBaseTable,
    FixedBaseTableCache,
    PublicValueCache,
    batch_mod_inv,
    clear_fixed_base_tables,
    fixed_base_table,
    fixed_base_table_stats,
    multi_exp,
    naive_mode,
)
from .groups import GroupParameters, SchnorrGroup, fixture_group
from .interpolation import (
    interpolate_at_zero,
    lagrange_weights_at_zero,
    resolve_degree,
    resolve_degree_in_exponent,
)
from .modular import (
    NULL_COUNTER,
    OperationCounter,
    metered,
    mod_add,
    mod_div,
    mod_exp,
    mod_inv,
    mod_mul,
    mod_sub,
)
from .polynomials import Polynomial, sum_polynomials
from .secret import (
    DeclassificationEvent,
    Secret,
    SecretLeakError,
    clear_declassification_audit,
    declassification_audit,
    declassify,
    local_value,
    sanitize_enabled,
    secret_json_default,
    tag_secret,
)
from .primes import (
    find_subgroup_generator,
    generate_schnorr_parameters,
    is_prime,
    next_prime,
    random_prime,
)
from .secretsharing import (
    DegreeEncodedSharing,
    DegreeEncodingScheme,
    ShamirScheme,
    Share,
)

__all__ = [
    "NULL_COUNTER",
    "ArithmeticBackend",
    "BackendUnavailableError",
    "DeclassificationEvent",
    "DegreeEncodedSharing",
    "DegreeEncodingScheme",
    "FixedBaseTable",
    "GroupParameters",
    "OperationCounter",
    "PedersenCommitter",
    "Polynomial",
    "PolynomialCommitment",
    "PublicValueCache",
    "SchnorrGroup",
    "Secret",
    "SecretLeakError",
    "ShamirScheme",
    "Share",
    "active_backend",
    "available_backends",
    "batch_mod_inv",
    "clear_declassification_audit",
    "declassification_audit",
    "declassify",
    "local_value",
    "sanitize_enabled",
    "secret_json_default",
    "tag_secret",
    "find_subgroup_generator",
    "FixedBaseTableCache",
    "clear_fixed_base_tables",
    "fixed_base_table",
    "fixed_base_table_stats",
    "fixture_group",
    "generate_schnorr_parameters",
    "gmpy2_available",
    "interpolate_at_zero",
    "is_prime",
    "lagrange_weights_at_zero",
    "metered",
    "mod_add",
    "mod_div",
    "mod_exp",
    "mod_inv",
    "mod_mul",
    "mod_sub",
    "multi_exp",
    "naive_mode",
    "next_prime",
    "random_prime",
    "resolve_degree",
    "resolve_degree_in_exponent",
    "select_backend",
    "sum_polynomials",
    "using_backend",
    "verify_share_batch",
]
