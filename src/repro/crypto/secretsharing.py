"""Secret sharing: standard Shamir and the degree-encoded variant.

DMW's privacy rests on a *degree-encoded* secret-sharing scheme (Kikuchi's
(M+1)st-price auction construction): the secret is not a field element
stored in the free term — it is the **degree** of the polynomial itself.
Sharing a value ``d`` means choosing a uniformly random polynomial of exact
degree ``d`` with zero constant term and handing out evaluations.  Such
shares can be *summed* share-wise across agents, and degree resolution on
the summed shares reveals only ``max_i d_i``, which is how the minimum bid
surfaces without exposing anyone else's bid.

Standard Shamir sharing is included both for completeness (the paper
contrasts the two in §3) and because the reconstruction-attack analysis in
:mod:`repro.analysis.privacy` uses it as the adversary's tool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from . import backend
from .interpolation import interpolate_at_zero, resolve_degree
from .modular import NULL_COUNTER, OperationCounter
from .polynomials import Polynomial


@dataclass(frozen=True)
class Share:
    """A single evaluation ``(point, value)`` of a sharing polynomial."""

    point: int
    value: int


class ShamirScheme:
    """Classical ``(threshold, n)`` Shamir sharing over ``Z_q``.

    The secret sits in the free term; any ``threshold`` shares reconstruct,
    fewer reveal nothing.
    """

    def __init__(self, modulus: int, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.modulus = modulus
        self.threshold = threshold

    def share(self, secret: int, points: Sequence[int],
              rng: random.Random) -> List[Share]:
        """Split ``secret`` into one share per point.

        ``len(points)`` must be at least ``threshold`` and the points must
        be distinct and non-zero.
        """
        if len(points) < self.threshold:
            raise ValueError("need at least threshold=%d points" % self.threshold)
        if len(set(p % self.modulus for p in points)) != len(points):
            raise ValueError("share points must be distinct mod q")
        if any(p % self.modulus == 0 for p in points):
            raise ValueError("share points must be non-zero")
        coefficients = [secret % self.modulus]
        coefficients.extend(
            rng.randrange(self.modulus) for _ in range(self.threshold - 1)
        )
        polynomial = Polynomial(coefficients, self.modulus)
        return [Share(point, polynomial.evaluate(point)) for point in points]

    def reconstruct(self, shares: Sequence[Share],
                    counter: OperationCounter = NULL_COUNTER) -> int:
        """Recover the secret from at least ``threshold`` shares."""
        if len(shares) < self.threshold:
            raise ValueError(
                "need %d shares to reconstruct, got %d"
                % (self.threshold, len(shares))
            )
        subset = shares[: self.threshold]
        return interpolate_at_zero(
            [share.point for share in subset],
            [share.value for share in subset],
            self.modulus,
            counter,
        )


@dataclass(frozen=True)
class DegreeEncodedSharing:
    """The result of sharing a value in a polynomial's degree.

    Attributes
    ----------
    polynomial:
        The random polynomial whose exact degree is the encoded value.
        Held privately by the dealer (it is what commitments bind to).
    shares:
        One :class:`Share` per recipient point.
    """

    polynomial: Polynomial
    shares: tuple

    @property
    def encoded_degree(self) -> int:
        return self.polynomial.degree


class DegreeEncodingScheme:
    """Degree-encoded sharing over ``Z_q`` (the DMW bid-encoding primitive).

    Parameters
    ----------
    modulus:
        The field prime ``q``.
    points:
        The public evaluation points (agent pseudonyms); all shares are
        evaluations at these points, in order.
    """

    def __init__(self, modulus: int, points: Sequence[int]) -> None:
        reduced = [p % modulus for p in points]
        if len(set(reduced)) != len(reduced):
            raise ValueError("points must be distinct mod q")
        if any(p == 0 for p in reduced):
            raise ValueError("points must be non-zero mod q")
        self.modulus = modulus
        self.points = tuple(points)

    def share_degree(self, degree: int, rng: random.Random,
                     counter: OperationCounter = NULL_COUNTER
                     ) -> DegreeEncodedSharing:
        """Encode ``degree`` in a random zero-constant-term polynomial.

        ``degree`` must satisfy ``1 <= degree <= len(points) - 1`` so the
        degree remains resolvable from the available shares.
        """
        if not 1 <= degree <= len(self.points) - 1:
            raise ValueError(
                "degree must be in [1, %d], got %d"
                % (len(self.points) - 1, degree)
            )
        polynomial = Polynomial.random(degree, self.modulus, rng,
                                       zero_constant_term=True)
        shares = tuple(
            Share(point, polynomial.evaluate(point, counter))
            for point in self.points
        )
        return DegreeEncodedSharing(polynomial=polynomial, shares=shares)

    def sum_shares(self, sharings: Sequence[Sequence[Share]]) -> List[Share]:
        """Combine sharings point-wise: the share-level image of summing the
        underlying polynomials."""
        if not sharings:
            raise ValueError("need at least one sharing to sum")
        combined = []
        for index, point in enumerate(self.points):
            total = 0
            for sharing in sharings:
                share = sharing[index]
                if share.point != point:
                    raise ValueError(
                        "share %d is for point %d, expected %d"
                        % (index, share.point, point)
                    )
                total = (total + share.value) % self.modulus
            combined.append(Share(point, total))
        return combined

    def resolve(self, shares: Sequence[Share],
                candidates: Optional[Sequence[int]] = None,
                counter: OperationCounter = NULL_COUNTER) -> Optional[int]:
        """Resolve the encoded degree from shares (see
        :func:`repro.crypto.interpolation.resolve_degree`)."""
        return resolve_degree(
            [share.point for share in shares],
            [share.value for share in shares],
            self.modulus,
            candidates=candidates,
            counter=counter,
        )

    def reconstruction_attack(self, shares: Sequence[Share],
                              candidate_degrees: Sequence[int]
                              ) -> Dict[int, bool]:
        """Attempt the collusion attack of Theorem 10.

        Given a coalition's subset of shares of one agent's polynomial, test
        each candidate degree ``d``: the coalition succeeds for ``d`` when it
        holds at least ``d + 1`` consistent evaluations (counting the free
        point ``(0, 0)`` every party knows).  Returns, per candidate degree,
        whether the coalition can *distinguish* that the polynomial has
        degree at most ``d``.

        With fewer than ``d`` proper shares every transcript is consistent
        with every degree-``d`` polynomial, so the attack is information-
        theoretically blind — this is what `tests/test_privacy.py` checks.
        """
        outcomes = {}
        points = [0] + [share.point for share in shares]
        values = [0] + [share.value for share in shares]
        for degree in candidate_degrees:
            if len(points) < degree + 2:
                # Not enough points to over-determine a degree-d polynomial:
                # any values are consistent, the coalition learns nothing.
                outcomes[degree] = False
                continue
            # Interpolate through d+1 points and check the remaining ones.
            base_points, base_values = points[: degree + 1], values[: degree + 1]
            consistent = True
            for point, value in zip(points[degree + 1:], values[degree + 1:]):
                predicted = _interpolate_at(base_points, base_values, point,
                                            self.modulus)
                if predicted != value:
                    consistent = False
                    break
            outcomes[degree] = consistent
        return outcomes


def _interpolate_at(points: Sequence[int], values: Sequence[int],
                    x: int, modulus: int) -> int:
    """Evaluate, at ``x``, the interpolant through ``(points, values)``."""
    x %= modulus
    total = 0
    for k, (alpha_k, value_k) in enumerate(zip(points, values)):
        numerator, denominator = 1, 1
        for i, alpha_i in enumerate(points):
            if i == k:
                continue
            numerator = numerator * ((x - alpha_i) % modulus) % modulus
            denominator = denominator * ((alpha_k - alpha_i) % modulus) % modulus
        total = (total + value_k * numerator
                 * backend.ACTIVE.powmod(denominator, modulus - 2, modulus)
                 ) % modulus
    return total
