"""Counted modular arithmetic.

The computational-cost claims of the paper (Theorem 12, Table 1) are stated
in terms of modular multiplications, inversions, and exponentiations, with
exponentiation `x**z (mod p)` costed as `Theta(log z)` multiplications via
right-to-left binary decomposition (Knuth vol. 2).  To *measure* those costs
rather than assume them, every arithmetic routine in this module reports to
an :class:`OperationCounter`.

Values are computed by the active arithmetic engine (:mod:`.backend`:
pure-Python bigints by default, GMP ``mpz`` when the ``gmpy2`` backend is
selected) while the *cost* of each operation is accounted analytically —
identically across backends — using the same model the paper uses:

* ``mod_mul`` and ``mod_add``/``mod_sub`` count one ``mul``/``add`` each;
* ``mod_inv`` counts one ``inv`` (the paper assumes inversion costs the same
  as a multiplication, see Section 2.4);
* ``mod_exp`` counts the square-and-multiply schedule of the exponent:
  ``bit_length(z) - 1`` squarings plus ``popcount(z) - 1`` multiplications,
  all reported as ``mul``, plus one ``exp`` event for bookkeeping.

Counters are explicit objects, not global state: the caller owns the
counter, threads it through, and reads the totals.  A module-level
:data:`NULL_COUNTER` is used when metering is not wanted; it swallows events
with near-zero overhead.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator

from . import backend as _backend


class OperationCounter:
    """Accumulates modular-arithmetic operation counts.

    Attributes
    ----------
    additions, multiplications, inversions, exponentiations:
        Raw event counts.
    multiplication_work:
        Total cost in *multiplication equivalents*: one per multiplication
        or inversion, plus the square-and-multiply schedule of every
        exponentiation.  This is the quantity Theorem 12 bounds by
        ``O(m n^2 log p)``.
    """

    __slots__ = (
        "additions",
        "multiplications",
        "inversions",
        "exponentiations",
        "multiplication_work",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.additions = 0
        self.multiplications = 0
        self.inversions = 0
        self.exponentiations = 0
        self.multiplication_work = 0

    # -- event sinks -------------------------------------------------------
    def count_add(self, times: int = 1) -> None:
        self.additions += times

    def count_mul(self, times: int = 1) -> None:
        self.multiplications += times
        self.multiplication_work += times

    def count_inv(self, times: int = 1) -> None:
        self.inversions += times
        self.multiplication_work += times

    def count_exp(self, exponent: int) -> None:
        """Record one exponentiation by ``exponent`` (non-negative)."""
        self.exponentiations += 1
        if exponent > 1:
            # bit_count() == bin(exponent).count("1"), just ~5x faster;
            # the analytic square-and-multiply schedule is unchanged.
            squarings = exponent.bit_length() - 1
            multiplies = exponent.bit_count() - 1
            self.multiplication_work += squarings + multiplies

    def count_exp_batch(self, count: int, work: int) -> None:
        """Record ``count`` exponentiations totalling ``work`` multiplications.

        Bulk equivalent of ``count`` :meth:`count_exp` calls whose combined
        square-and-multiply schedules sum to ``work``; fast-path call sites
        use it to charge a precomputed schedule in one step (the totals are
        identical to the per-call accounting).
        """
        self.exponentiations += count
        self.multiplication_work += work

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "additions": self.additions,
            "multiplications": self.multiplications,
            "inversions": self.inversions,
            "exponentiations": self.exponentiations,
            "multiplication_work": self.multiplication_work,
        }

    def restore(self, snapshot: Dict[str, int]) -> None:
        """Overwrite every counter from a :meth:`snapshot` dictionary.

        The inverse of :meth:`snapshot`; checkpoint/resume uses it to
        re-establish an agent's accumulated Theorem 12 work exactly.
        """
        self.additions = snapshot["additions"]
        self.multiplications = snapshot["multiplications"]
        self.inversions = snapshot["inversions"]
        self.exponentiations = snapshot["exponentiations"]
        self.multiplication_work = snapshot["multiplication_work"]

    def merge(self, other: "OperationCounter") -> None:
        """Fold another counter's totals into this one."""
        self.additions += other.additions
        self.multiplications += other.multiplications
        self.inversions += other.inversions
        self.exponentiations += other.exponentiations
        self.multiplication_work += other.multiplication_work

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "OperationCounter(mul={0.multiplications}, inv={0.inversions}, "
            "exp={0.exponentiations}, work={0.multiplication_work})".format(self)
        )


class _NullCounter(OperationCounter):
    """Counter that discards every event (used when metering is off)."""

    def count_add(self, times: int = 1) -> None:
        pass

    def count_mul(self, times: int = 1) -> None:
        pass

    def count_inv(self, times: int = 1) -> None:
        pass

    def count_exp(self, exponent: int) -> None:
        pass

    def count_exp_batch(self, count: int, work: int) -> None:
        pass

    def merge(self, other: "OperationCounter") -> None:
        # The null counter discards merged totals too: fast-path caches
        # replay memoised schedules via merge(), and those replays must
        # not accumulate in the shared NULL_COUNTER singleton.
        pass


NULL_COUNTER = _NullCounter()


@contextlib.contextmanager
def metered() -> Iterator[OperationCounter]:
    """Convenience context manager yielding a fresh counter.

    Example
    -------
    >>> with metered() as ops:
    ...     mod_exp(3, 20, 101, ops)
    ...
    >>> ops.exponentiations
    1
    """
    counter = OperationCounter()
    yield counter


def mod_add(a: int, b: int, modulus: int, counter: OperationCounter = NULL_COUNTER) -> int:
    """Return ``(a + b) mod modulus``, counting one addition."""
    counter.count_add()
    return (a + b) % modulus


def mod_sub(a: int, b: int, modulus: int, counter: OperationCounter = NULL_COUNTER) -> int:
    """Return ``(a - b) mod modulus``, counting one addition."""
    counter.count_add()
    return (a - b) % modulus


def mod_mul(a: int, b: int, modulus: int, counter: OperationCounter = NULL_COUNTER) -> int:
    """Return ``(a * b) mod modulus``, counting one multiplication."""
    counter.count_mul()
    return _backend.ACTIVE.mul(a, b, modulus)


def mod_exp(base: int, exponent: int, modulus: int,
            counter: OperationCounter = NULL_COUNTER) -> int:
    """Return ``base ** exponent mod modulus``.

    Negative exponents are resolved through a modular inverse of the base
    (``modulus`` must then be prime or the base a unit).  The cost model is
    right-to-left binary decomposition, as assumed by Theorem 12.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if exponent < 0:
        base = mod_inv(base, modulus, counter)
        exponent = -exponent
    counter.count_exp(exponent)
    return _backend.ACTIVE.powmod(base, exponent, modulus)


def mod_inv(a: int, modulus: int, counter: OperationCounter = NULL_COUNTER) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``modulus``.

    Raises
    ------
    ZeroDivisionError
        If ``a`` is not invertible (``gcd(a, modulus) != 1``).
    """
    counter.count_inv()
    a %= modulus
    if a == 0:
        raise ZeroDivisionError("0 has no inverse modulo %d" % modulus)
    # The backend normalises the non-invertible error path to one
    # canonical ZeroDivisionError diagnostic, and the *counted* cost
    # stays one ``inv`` (the paper's Section 2.4 model) either way.
    return _backend.ACTIVE.invert(a, modulus)


def mod_div(a: int, b: int, modulus: int, counter: OperationCounter = NULL_COUNTER) -> int:
    """Return ``a * b^{-1} mod modulus`` (one inversion + one multiplication)."""
    return mod_mul(a, mod_inv(b, modulus, counter), modulus, counter)
