"""Pedersen-style commitments over a Schnorr group.

DMW binds each agent to its secret polynomials with commitment *vectors*
(one group element per coefficient slot up to ``sigma``):

* ``O_i`` commits to the coefficients of the product ``e_i * f_i`` blinded
  by ``g_i``'s coefficients,
* ``Q_i`` commits to ``e_i``'s coefficients blinded by ``h_i``'s,
* ``R_i`` commits to ``f_i``'s coefficients blinded by ``h_i``'s.

Because commitments are multiplicatively homomorphic, a verifier can check a
received *share* against the public vector without learning anything else:

``prod_l C_l^(alpha^l) = z1^{value(alpha)} z2^{blinding(alpha)}``

(eqs. (7)-(9) of the paper).  This module provides the single-value
commitment, the coefficient-vector commitment, and the homomorphic
evaluation used by those checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from . import fastexp
from .fastexp import PublicValueCache, multi_exp
from .groups import GroupParameters
from .modular import NULL_COUNTER, OperationCounter
from .polynomials import Polynomial


@dataclass(frozen=True)
class PedersenCommitter:
    """Commitment scheme ``commit(v, r) = z1^v * z2^r (mod p)``."""

    parameters: GroupParameters

    def commit(self, value: int, blinding: int,
               counter: OperationCounter = NULL_COUNTER) -> int:
        """Commit to ``value`` with blinding factor ``blinding``.

        Execution goes through the generators' fixed-base tables
        (:meth:`~repro.crypto.groups.GroupParameters.open_value`); the
        counted cost is the naive two-exponentiations-plus-multiplication
        schedule either way.
        """
        return self.parameters.open_value(value, blinding, counter)

    def verify(self, commitment: int, value: int, blinding: int,
               counter: OperationCounter = NULL_COUNTER) -> bool:
        """Return True if ``commitment`` opens to ``(value, blinding)``."""
        return commitment == self.commit(value, blinding, counter)

    def commit_polynomial(self, values: Polynomial, blindings: Polynomial,
                          size: int,
                          counter: OperationCounter = NULL_COUNTER
                          ) -> "PolynomialCommitment":
        """Commit to coefficients ``1..size`` of ``values``/``blindings``.

        Coefficient slot ``l`` holds ``z1^{a_l} z2^{r_l}`` where ``a_l`` and
        ``r_l`` are the degree-``l`` coefficients (constant terms are zero by
        protocol construction and are *not* committed — the verification
        equations start the product at ``l = 1``).

        Parameters
        ----------
        size:
            Number of slots (the protocol's ``sigma``); polynomials of lower
            degree are zero-padded, which is what hides their degree.
        """
        value_coefficients = values.padded_coefficients(size + 1)
        blinding_coefficients = blindings.padded_coefficients(size + 1)
        if value_coefficients[0] != 0 or blinding_coefficients[0] != 0:
            raise ValueError(
                "committed polynomials must have zero constant terms"
            )
        elements = [
            self.commit(value_coefficients[l], blinding_coefficients[l], counter)
            for l in range(1, size + 1)
        ]
        return PolynomialCommitment(parameters=self.parameters,
                                    elements=tuple(elements))


@dataclass(frozen=True)
class PolynomialCommitment:
    """A vector of per-coefficient Pedersen commitments (slots ``1..sigma``).

    The commitment reveals only ``sigma`` (public protocol parameter), never
    the underlying degree, because every slot is blinded.
    """

    parameters: GroupParameters
    elements: tuple

    @property
    def size(self) -> int:
        """The number of committed coefficient slots (``sigma``)."""
        return len(self.elements)

    def evaluate(self, point: int,
                 counter: OperationCounter = NULL_COUNTER,
                 cache: Optional[PublicValueCache] = None) -> int:
        """Homomorphically evaluate the committed polynomials at ``point``.

        Returns ``prod_{l=1}^{sigma} C_l^(point^l) =
        z1^{value(point)} z2^{blinding(point)}`` — the right-hand side of
        eqs. (7)-(9).

        Execution uses Straus multi-exponentiation (one shared squaring
        chain for all ``sigma`` terms) and, when ``cache`` is given, a
        per-execution memo keyed by ``(modulus, elements, point)``; the
        counted cost is the per-term square-and-multiply schedule in every
        case (replayed against ``counter`` on cache hits).
        """
        group = self.parameters.group
        if not fastexp.enabled():
            result = 1
            power = 1
            for element in self.elements:
                power = (power * point) % group.q
                result = group.mul(result, group.exp(element, power, counter),
                                   counter)
            return result
        q = group.q
        reduced_point = point % q
        key = None
        if cache is not None:
            key = (group.p, self.elements, reduced_point)
            entry = cache.get_evaluation(key)
            if entry is not None:
                value, exp_count, exp_work = entry
                counter.count_exp_batch(exp_count, exp_work)
                counter.count_mul(exp_count)
                return value
        powers = []
        exp_work = 0
        power = 1
        for _ in self.elements:
            power = (power * reduced_point) % q
            powers.append(power)
            if power > 1:
                exp_work += power.bit_length() + power.bit_count() - 2
        exp_count = len(self.elements)
        counter.count_exp_batch(exp_count, exp_work)
        counter.count_mul(exp_count)
        if cache is not None:
            # The same commitment vector is evaluated at up to n distinct
            # pseudonyms per execution; keeping its Straus digit tables in
            # the execution cache amortises the table build across all of
            # them (window 5 is the sweet spot at fixture sizes).
            table_key = (group.p, self.elements)
            tables = cache.get_tables(table_key)
            if tables is None:
                tables = fastexp.straus_tables(self.elements, group.p,
                                               window=5)
                cache.put_tables(table_key, tables)
            value = fastexp.multi_exp_with_tables(tables, powers, group.p,
                                                  window=5)
        else:
            value = multi_exp(self.elements, powers, group.p)
        if key is not None:
            cache.put_evaluation(key, (value, exp_count, exp_work))
        return value

    def verify_share(self, point: int, value: int, blinding: int,
                     counter: OperationCounter = NULL_COUNTER,
                     cache: Optional[PublicValueCache] = None) -> bool:
        """Check a received share pair against this commitment.

        Verifies ``z1^value * z2^blinding == evaluate(point)`` — i.e. that
        ``value = f(point)`` and ``blinding = r(point)`` for the committed
        ``f`` and blinding polynomial ``r``.
        """
        left = self.parameters.open_value(value, blinding, counter)
        return left == self.evaluate(point, counter, cache)


def verify_share_batch(commitments: Sequence[PolynomialCommitment],
                       point: int,
                       openings: Sequence[Tuple[int, int]],
                       coefficients: Sequence[int],
                       counter: OperationCounter = NULL_COUNTER,
                       cache: Optional[PublicValueCache] = None) -> bool:
    """Batch-verify several share openings with one random linear combination.

    Checks, in a single Straus multi-exponentiation, that every
    ``(value_j, blinding_j)`` in ``openings`` opens the matching
    commitment vector at ``point``:

    ``z1^{sum_j c_j v_j} z2^{sum_j c_j b_j}
    prod_j prod_l C_{j,l}^{-c_j point^l} == 1  (mod p)``

    which holds whenever every per-share equation (eqs. (7)-(9)) holds,
    and fails — for uniformly random non-zero ``coefficients`` drawn from
    ``Z_q^*`` — with probability at least ``1 - 1/q`` whenever at least
    one opening is wrong: conditioned on the other terms, a single
    deviating term ``D_j != 1`` would need ``c_j`` to hit the unique
    exponent cancelling the rest.  Callers draw the coefficients from a
    seeded per-agent substream (:meth:`repro.core.agent.DMWAgent`), so
    replays stay deterministic.

    Counting parity: the charged schedule is *exactly* the per-share
    path's — for every opening, two generator exponentiations plus one
    multiplication (the Pedersen opening) and the per-slot
    square-and-multiply evaluation schedule — so honest-run
    :class:`OperationCounter` totals are bit-identical between the
    batched and per-share verification modes.  The execution shortcut
    (one combined multi-exp instead of ``3`` openings and ``3``
    evaluations) is invisible to the counted model, like every other
    fast path in :mod:`repro.crypto.fastexp`.
    """
    if not commitments:
        raise ValueError("need at least one commitment vector")
    if not (len(commitments) == len(openings) == len(coefficients)):
        raise ValueError(
            "commitments, openings, and coefficients must have equal length")
    parameters = commitments[0].parameters
    group = parameters.group
    q = group.q
    reduced_point = point % q
    # Shared powers of the evaluation point (all vectors have width sigma,
    # but tolerate ragged sizes by extending lazily).
    max_size = max(c.size for c in commitments)
    powers: List[int] = []
    exp_work_prefix: List[int] = [0]
    power = 1
    for _ in range(max_size):
        power = (power * reduced_point) % q
        powers.append(power)
        work = power.bit_length() + power.bit_count() - 2 if power > 1 else 0
        exp_work_prefix.append(exp_work_prefix[-1] + work)
    for vector, (value, blinding), coefficient in zip(commitments, openings,
                                                      coefficients):
        if coefficient % q == 0:
            raise ValueError("RLC coefficients must be non-zero mod q")
        # Charged schedule of PolynomialCommitment.verify_share: the
        # Pedersen opening (two generator exps + one mul) ...
        counter.count_exp(value % q)
        counter.count_exp(blinding % q)
        counter.count_mul()
        # ... plus the homomorphic evaluation (sigma exps + sigma muls).
        counter.count_exp_batch(vector.size, exp_work_prefix[vector.size])
        counter.count_mul(vector.size)
    # Execution: fold everything into one multi-exp over 2 + sum sigma_j
    # bases.  Negated slot exponents are lifted to q - x (the generators
    # have order q).
    value_total = 0
    blinding_total = 0
    bases: List[int] = [parameters.z1, parameters.z2]
    exponents: List[int] = [0, 0]
    for vector, (value, blinding), coefficient in zip(commitments, openings,
                                                      coefficients):
        c = coefficient % q
        value_total = (value_total + c * value) % q
        blinding_total = (blinding_total + c * blinding) % q
        for slot in range(vector.size):
            exponents.append((-(c * powers[slot])) % q)
        bases.extend(vector.elements)
    exponents[0] = value_total
    exponents[1] = blinding_total
    if cache is not None:
        # Compose cached window-5 Straus tables: the generator pair is
        # shared protocol-wide, each vector's tables are the same rows
        # PolynomialCommitment.evaluate keeps, so per-share and batched
        # runs amortise the identical table builds.
        tables: List[Sequence[int]] = []
        generator_key = ("batch-generators", group.p, parameters.z1,
                         parameters.z2)
        generator_tables = cache.get_tables(generator_key)
        if generator_tables is None:
            generator_tables = fastexp.straus_tables(
                [parameters.z1, parameters.z2], group.p, window=5)
            cache.put_tables(generator_key, generator_tables)
        tables.extend(generator_tables)
        for vector in commitments:
            table_key = (group.p, vector.elements)
            vector_tables = cache.get_tables(table_key)
            if vector_tables is None:
                vector_tables = fastexp.straus_tables(vector.elements,
                                                      group.p, window=5)
                cache.put_tables(table_key, vector_tables)
            tables.extend(vector_tables)
        combined = fastexp.multi_exp_with_tables(tables, exponents, group.p,
                                                 window=5)
    else:
        combined = multi_exp(bases, exponents, group.p, window=5)
    return combined == 1


def product_of_commitment_evaluations(commitments: Sequence[PolynomialCommitment],
                                      point: int,
                                      counter: OperationCounter = NULL_COUNTER,
                                      cache: Optional[PublicValueCache] = None
                                      ) -> int:
    """Return ``prod_k commitments[k].evaluate(point)``.

    Used for the aggregate checks (eq. (11) and (13)): the product over all
    agents' ``Q`` (resp. ``R``) evaluations at ``alpha_i`` must equal
    ``Lambda_i * Psi_i`` (resp. ``z1^{F(alpha_i)} * Psi_i``).
    """
    if not commitments:
        raise ValueError("need at least one commitment")
    group = commitments[0].parameters.group
    result = 1
    for commitment in commitments:
        result = group.mul(result, commitment.evaluate(point, counter, cache),
                           counter)
    return result
