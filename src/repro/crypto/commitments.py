"""Pedersen-style commitments over a Schnorr group.

DMW binds each agent to its secret polynomials with commitment *vectors*
(one group element per coefficient slot up to ``sigma``):

* ``O_i`` commits to the coefficients of the product ``e_i * f_i`` blinded
  by ``g_i``'s coefficients,
* ``Q_i`` commits to ``e_i``'s coefficients blinded by ``h_i``'s,
* ``R_i`` commits to ``f_i``'s coefficients blinded by ``h_i``'s.

Because commitments are multiplicatively homomorphic, a verifier can check a
received *share* against the public vector without learning anything else:

``prod_l C_l^(alpha^l) = z1^{value(alpha)} z2^{blinding(alpha)}``

(eqs. (7)-(9) of the paper).  This module provides the single-value
commitment, the coefficient-vector commitment, and the homomorphic
evaluation used by those checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from . import fastexp
from .fastexp import PublicValueCache, multi_exp
from .groups import GroupParameters
from .modular import NULL_COUNTER, OperationCounter
from .polynomials import Polynomial


@dataclass(frozen=True)
class PedersenCommitter:
    """Commitment scheme ``commit(v, r) = z1^v * z2^r (mod p)``."""

    parameters: GroupParameters

    def commit(self, value: int, blinding: int,
               counter: OperationCounter = NULL_COUNTER) -> int:
        """Commit to ``value`` with blinding factor ``blinding``.

        Execution goes through the generators' fixed-base tables
        (:meth:`~repro.crypto.groups.GroupParameters.open_value`); the
        counted cost is the naive two-exponentiations-plus-multiplication
        schedule either way.
        """
        return self.parameters.open_value(value, blinding, counter)

    def verify(self, commitment: int, value: int, blinding: int,
               counter: OperationCounter = NULL_COUNTER) -> bool:
        """Return True if ``commitment`` opens to ``(value, blinding)``."""
        return commitment == self.commit(value, blinding, counter)

    def commit_polynomial(self, values: Polynomial, blindings: Polynomial,
                          size: int,
                          counter: OperationCounter = NULL_COUNTER
                          ) -> "PolynomialCommitment":
        """Commit to coefficients ``1..size`` of ``values``/``blindings``.

        Coefficient slot ``l`` holds ``z1^{a_l} z2^{r_l}`` where ``a_l`` and
        ``r_l`` are the degree-``l`` coefficients (constant terms are zero by
        protocol construction and are *not* committed — the verification
        equations start the product at ``l = 1``).

        Parameters
        ----------
        size:
            Number of slots (the protocol's ``sigma``); polynomials of lower
            degree are zero-padded, which is what hides their degree.
        """
        value_coefficients = values.padded_coefficients(size + 1)
        blinding_coefficients = blindings.padded_coefficients(size + 1)
        if value_coefficients[0] != 0 or blinding_coefficients[0] != 0:
            raise ValueError(
                "committed polynomials must have zero constant terms"
            )
        elements = [
            self.commit(value_coefficients[l], blinding_coefficients[l], counter)
            for l in range(1, size + 1)
        ]
        return PolynomialCommitment(parameters=self.parameters,
                                    elements=tuple(elements))


@dataclass(frozen=True)
class PolynomialCommitment:
    """A vector of per-coefficient Pedersen commitments (slots ``1..sigma``).

    The commitment reveals only ``sigma`` (public protocol parameter), never
    the underlying degree, because every slot is blinded.
    """

    parameters: GroupParameters
    elements: tuple

    @property
    def size(self) -> int:
        """The number of committed coefficient slots (``sigma``)."""
        return len(self.elements)

    def evaluate(self, point: int,
                 counter: OperationCounter = NULL_COUNTER,
                 cache: Optional[PublicValueCache] = None) -> int:
        """Homomorphically evaluate the committed polynomials at ``point``.

        Returns ``prod_{l=1}^{sigma} C_l^(point^l) =
        z1^{value(point)} z2^{blinding(point)}`` — the right-hand side of
        eqs. (7)-(9).

        Execution uses Straus multi-exponentiation (one shared squaring
        chain for all ``sigma`` terms) and, when ``cache`` is given, a
        per-execution memo keyed by ``(modulus, elements, point)``; the
        counted cost is the per-term square-and-multiply schedule in every
        case (replayed against ``counter`` on cache hits).
        """
        group = self.parameters.group
        if not fastexp.enabled():
            result = 1
            power = 1
            for element in self.elements:
                power = (power * point) % group.q
                result = group.mul(result, group.exp(element, power, counter),
                                   counter)
            return result
        q = group.q
        reduced_point = point % q
        key = None
        if cache is not None:
            key = (group.p, self.elements, reduced_point)
            entry = cache.get_evaluation(key)
            if entry is not None:
                value, exp_count, exp_work = entry
                counter.count_exp_batch(exp_count, exp_work)
                counter.count_mul(exp_count)
                return value
        powers = []
        exp_work = 0
        power = 1
        for _ in self.elements:
            power = (power * reduced_point) % q
            powers.append(power)
            if power > 1:
                exp_work += power.bit_length() + power.bit_count() - 2
        exp_count = len(self.elements)
        counter.count_exp_batch(exp_count, exp_work)
        counter.count_mul(exp_count)
        if cache is not None:
            # The same commitment vector is evaluated at up to n distinct
            # pseudonyms per execution; keeping its Straus digit tables in
            # the execution cache amortises the table build across all of
            # them (window 5 is the sweet spot at fixture sizes).
            table_key = (group.p, self.elements)
            tables = cache.get_tables(table_key)
            if tables is None:
                tables = fastexp.straus_tables(self.elements, group.p,
                                               window=5)
                cache.put_tables(table_key, tables)
            value = fastexp.multi_exp_with_tables(tables, powers, group.p,
                                                  window=5)
        else:
            value = multi_exp(self.elements, powers, group.p)
        if key is not None:
            cache.put_evaluation(key, (value, exp_count, exp_work))
        return value

    def verify_share(self, point: int, value: int, blinding: int,
                     counter: OperationCounter = NULL_COUNTER,
                     cache: Optional[PublicValueCache] = None) -> bool:
        """Check a received share pair against this commitment.

        Verifies ``z1^value * z2^blinding == evaluate(point)`` — i.e. that
        ``value = f(point)`` and ``blinding = r(point)`` for the committed
        ``f`` and blinding polynomial ``r``.
        """
        left = self.parameters.open_value(value, blinding, counter)
        return left == self.evaluate(point, counter, cache)


def product_of_commitment_evaluations(commitments: Sequence[PolynomialCommitment],
                                      point: int,
                                      counter: OperationCounter = NULL_COUNTER,
                                      cache: Optional[PublicValueCache] = None
                                      ) -> int:
    """Return ``prod_k commitments[k].evaluate(point)``.

    Used for the aggregate checks (eq. (11) and (13)): the product over all
    agents' ``Q`` (resp. ``R``) evaluations at ``alpha_i`` must equal
    ``Lambda_i * Psi_i`` (resp. ``z1^{F(alpha_i)} * Psi_i``).
    """
    if not commitments:
        raise ValueError("need at least one commitment")
    group = commitments[0].parameters.group
    result = 1
    for commitment in commitments:
        result = group.mul(result, commitment.evaluate(point, counter, cache),
                           counter)
    return result
