"""Execution fast paths for the DMW hot loop (counted model unchanged).

The paper costs everything in *modular multiplications* under a fixed
analytic schedule — square-and-multiply exponentiation, one inversion per
Lagrange basis term (Theorem 12, Table 1).  This module makes the
*measured* implementation dramatically faster while keeping that *counted*
model bit-for-bit identical:

* :class:`FixedBaseTable` — windowed fixed-base precomputation for the
  public generators ``z1``/``z2``, built once per ``(base, modulus)`` and
  shared process-wide (:func:`fixed_base_table`);
* :func:`multi_exp` — Straus/Shamir simultaneous multi-exponentiation for
  commitment-vector evaluations ``prod_l C_l^{alpha^l}`` and the
  degree-resolution products ``prod_k Lambda_k^{rho_k}``;
* :func:`batch_mod_inv` — Montgomery's batch-inversion trick (one real
  inversion plus ``3(k-1)`` multiplications for ``k`` inverses);
* :class:`PublicValueCache` — a per-execution memo for publicly derivable
  values (``Gamma_{i,k}``, ``Phi_{i,k}``, commitment evaluations, Lagrange
  weight vectors) so the ``O(n^2)`` Phase-III verification loops compute
  each public value exactly once per execution.

Counting discipline
-------------------
Every fast-path call site charges the caller's
:class:`~repro.crypto.modular.OperationCounter` with the *naive* schedule
(the one the reference implementation would have executed), regardless of
how the value is actually produced — including on cache hits, where the
memoised schedule is replayed against the requesting agent's counter.
This keeps the Table-1/Theorem-12 benches unchanged while wall-clock
drops; see ``docs/PERFORMANCE.md`` for the full counted-vs-measured
contract.

Cache scoping
-------------
A :class:`PublicValueCache` is keyed purely by content (commitment
elements, evaluation point, modulus), so a stale hit is mathematically
impossible.  Scoping is nonetheless strict: the protocol creates one
fresh cache per :meth:`~repro.core.protocol.DMWProtocol.execute` call and
shares it across that execution's agents — caches never survive an
auction run nor leak between executions.

Use :func:`naive_mode` to disable every fast path and fall back to the
reference implementations (the equivalence property tests in
``tests/test_fastexp.py`` assert byte-identical outcomes, transcripts and
counter totals between the two paths).
"""

from __future__ import annotations

import contextlib
import math
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from . import backend as _backend
from .modular import NULL_COUNTER, OperationCounter

#: Cache keys/entries are heterogeneous tuples (namespace tag + ints);
#: the cache itself is shape-agnostic, so both sides are Tuple[Any, ...].
CacheKey = Tuple[Any, ...]
CacheEntry = Tuple[Any, ...]

#: Module-wide switch consulted by every fast-path call site.
_ENABLED = True


def enabled() -> bool:
    """Return True when the execution fast paths are active."""
    return _ENABLED


@contextlib.contextmanager
def naive_mode() -> Iterator[None]:
    """Disable every fast path within the block (reference semantics).

    Used by the equivalence property tests and the ablation benchmarks;
    nesting is safe and the previous state is always restored.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


# ---------------------------------------------------------------------------
# Fixed-base windowed exponentiation
# ---------------------------------------------------------------------------

class FixedBaseTable:
    """Windowed precomputation table for one fixed base.

    Stores ``base^(d * 2^(w*j)) mod modulus`` for every window digit ``d``
    and window index ``j``, so an exponentiation by an ``exponent_bits``-bit
    exponent costs at most ``ceil(exponent_bits / w)`` table lookups and
    multiplications — no squarings at all.  Building the table costs
    ``ceil(exponent_bits / w) * (2^w - 1)`` multiplications, amortised over
    the thousands of ``z1``/``z2`` exponentiations a protocol run performs.
    """

    __slots__ = ("base", "modulus", "window", "mask", "rows")

    def __init__(self, base: int, modulus: int, exponent_bits: int,
                 window: int = 8) -> None:
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.mask = (1 << window) - 1
        num_rows = max(1, -(-exponent_bits // window))
        rows = []
        # Build with backend-native residues (identity for python, mpz
        # for gmpy2); the native type then propagates through every row
        # product and the pow() accumulation below at full engine speed.
        radix_power = _backend.ACTIVE.wrap(self.base)
        for _ in range(num_rows):
            row = [1] * (1 << window)
            acc = 1
            for digit in range(1, 1 << window):
                acc = (acc * radix_power) % modulus
                row[digit] = acc
            rows.append(row)
            # base^(2^window) for the next row: row[mask] * radix_power.
            radix_power = (row[self.mask] * radix_power) % modulus
        self.rows = rows

    def pow(self, exponent: int) -> int:
        """Return ``base ** exponent mod modulus`` (``exponent >= 0``).

        Exponents beyond the table range fall back to built-in ``pow``.
        """
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if exponent >> (self.window * len(self.rows)):
            return _backend.ACTIVE.powmod(self.base, exponent, self.modulus)
        result = 1
        mask = self.mask
        window = self.window
        modulus = self.modulus
        rows = self.rows
        row_index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = (result * rows[row_index][digit]) % modulus
            exponent >>= window
            row_index += 1
        return int(result)


class FixedBaseTableCache:
    """Observable, bounded, evictable process-wide table cache.

    Replaces the former ``@lru_cache`` on :func:`fixed_base_table`, which
    was invisible (no hit/size stats) and unbounded-in-bytes for a
    long-lived daemon (128 *entries*, each potentially megabytes of
    precomputed rows).  This cache keeps LRU semantics but exposes
    counters for the metrics registry, an approximate byte footprint, and
    per-modulus eviction so the service's
    :class:`~repro.service.warmcache.WarmCacheStore` can drop a group's
    tables when it evicts that group.
    """

    __slots__ = ("maxsize", "_tables", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._tables: "OrderedDict[Tuple[int, int, int, int], FixedBaseTable]" = OrderedDict()  # noqa: E501
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, base: int, modulus: int, exponent_bits: int,
            window: int = 8) -> FixedBaseTable:
        """Return the cached table for the key, building it on a miss."""
        key = (base, modulus, exponent_bits, window)
        table = self._tables.get(key)
        if table is not None:
            self.hits += 1
            self._tables.move_to_end(key)
            return table
        self.misses += 1
        table = FixedBaseTable(base, modulus, exponent_bits, window)
        self._tables[key] = table
        while len(self._tables) > self.maxsize:
            self._tables.popitem(last=False)
            self.evictions += 1
        return table

    def clear(self, modulus: Optional[int] = None) -> int:
        """Evict cached tables; return how many were dropped.

        With ``modulus`` given, only that group's tables go (the
        warm-cache store's eviction hook); without it, everything does
        (backend switches, tests, explicit operator resets).
        """
        if modulus is None:
            dropped = len(self._tables)
            self._tables.clear()
        else:
            doomed = [key for key in self._tables if key[1] == modulus]
            for key in doomed:
                del self._tables[key]
            dropped = len(doomed)
        self.evictions += dropped
        return dropped

    def approx_bytes(self) -> int:
        """Rough resident size: entries x modulus-sized row values."""
        total = 0
        for (_, modulus, _, _), table in self._tables.items():
            cell = max(1, modulus.bit_length() // 8)
            total += sum(len(row) for row in table.rows) * cell
        return total

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for the observability layer."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._tables),
            "approx_bytes": self.approx_bytes(),
        }


#: Process-wide table cache behind :func:`fixed_base_table`.
TABLE_CACHE = FixedBaseTableCache()


def fixed_base_table(base: int, modulus: int, exponent_bits: int,
                     window: int = 8) -> FixedBaseTable:
    """Process-wide cached :class:`FixedBaseTable` factory.

    The cache key is the full ``(base, modulus, exponent_bits, window)``
    tuple, so distinct groups never share tables; the public generators of
    the fixture groups are reused across every protocol execution in a
    process, which is where the amortisation comes from.  Backed by
    :data:`TABLE_CACHE` (LRU, observable, evictable) rather than an
    opaque ``functools.lru_cache``.
    """
    return TABLE_CACHE.get(base, modulus, exponent_bits, window)


def fixed_base_table_stats() -> Dict[str, int]:
    """Hit/miss/entry/byte counters of the process-wide table cache."""
    return TABLE_CACHE.stats()


def clear_fixed_base_tables(modulus: Optional[int] = None) -> int:
    """Evict process-wide tables (all, or one modulus); return the count."""
    return TABLE_CACHE.clear(modulus)


# Compatibility with the former ``functools.lru_cache`` surface: the
# backend benchmarks call ``fixed_base_table.cache_clear()`` to drop
# tables built with another engine's native residues.
fixed_base_table.cache_clear = TABLE_CACHE.clear  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# Straus/Shamir simultaneous multi-exponentiation
# ---------------------------------------------------------------------------

def straus_tables(bases: Sequence[int], modulus: int,
                  window: int = 4) -> Tuple[List[int], ...]:
    """Precompute the per-base digit tables Straus's algorithm walks.

    ``tables[i][d - 1] == bases[i] ** d mod modulus`` for every window
    digit ``d`` in ``1 .. 2^window - 1``.  Building costs
    ``t * (2^window - 2)`` multiplications for ``t`` bases; reusing the
    result across many exponent vectors (e.g. evaluating one commitment
    vector at every agent's pseudonym) amortises that away — which is why
    :meth:`~repro.crypto.commitments.PolynomialCommitment.evaluate` keeps
    these tables in the execution's :class:`PublicValueCache`.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    table_size = (1 << window) - 1
    tables: List[List[int]] = []
    for base in bases:
        base = _backend.ACTIVE.wrap(base % modulus)
        row = [base]
        acc = base
        for _ in range(table_size - 1):
            acc = (acc * base) % modulus
            row.append(acc)
        tables.append(row)  # row[d - 1] == base^d
    return tuple(tables)


def multi_exp_with_tables(tables: Sequence[Sequence[int]],
                          exponents: Sequence[int], modulus: int,
                          window: int = 4) -> int:
    """Straus main loop over precomputed :func:`straus_tables`.

    One shared squaring chain for all terms; each window position costs
    ``window`` squarings plus at most one table-lookup multiplication per
    base.  Exponents must be non-negative.
    """
    if len(tables) != len(exponents):
        raise ValueError("tables and exponents must have equal length")
    max_bits = 0
    for exponent in exponents:
        if exponent < 0:
            raise ValueError("exponents must be non-negative")
        bits = exponent.bit_length()
        if bits > max_bits:
            max_bits = bits
    if max_bits == 0:
        return 1 % modulus
    mask = (1 << window) - 1
    num_windows = -(-max_bits // window)
    result = 1
    for window_index in range(num_windows - 1, -1, -1):
        if result != 1:
            for _ in range(window):
                result = (result * result) % modulus
        shift = window_index * window
        for exponent, row in zip(exponents, tables):
            digit = (exponent >> shift) & mask
            if digit:
                result = (result * row[digit - 1]) % modulus
    return int(result)


def multi_exp(bases: Sequence[int], exponents: Sequence[int], modulus: int,
              window: int = 4) -> int:
    """Return ``prod_i bases[i] ** exponents[i] mod modulus`` (uncounted).

    Straus's algorithm: one shared squaring chain for all terms plus one
    small digit table per base (:func:`straus_tables`).  For ``t`` terms
    with ``b``-bit exponents the cost is ``b`` squarings plus roughly
    ``t * (2^w - 1 + b / w)`` multiplications, versus ``t * 1.5 b`` for
    ``t`` independent square-and-multiply exponentiations.

    Exponents must be non-negative; zero-exponent terms are skipped.  The
    *counted* cost of the call sites that use this helper remains the
    per-term square-and-multiply schedule (see module docstring).
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have equal length")
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    pairs = [(base % modulus, exponent)
             for base, exponent in zip(bases, exponents) if exponent]
    for _, exponent in pairs:
        if exponent < 0:
            raise ValueError("exponents must be non-negative")
    if not pairs:
        return 1 % modulus
    if len(pairs) == 1:
        return _backend.ACTIVE.powmod(pairs[0][0], pairs[0][1], modulus)
    tables = straus_tables([base for base, _ in pairs], modulus, window)
    return multi_exp_with_tables(tables, [e for _, e in pairs], modulus,
                                 window)


# ---------------------------------------------------------------------------
# Montgomery batch inversion
# ---------------------------------------------------------------------------

def batch_mod_inv(values: Sequence[int], modulus: int,
                  counter: OperationCounter = NULL_COUNTER) -> List[int]:
    """Invert every value mod ``modulus`` with one real inversion.

    Montgomery's trick: multiply the values into a running prefix product,
    invert the total once, then walk backwards multiplying by the stored
    prefixes.  The *counted* cost is one ``inv`` per value — the analytic
    model's "one inversion per Lagrange basis term" schedule — regardless
    of the execution shortcut.

    Raises
    ------
    ZeroDivisionError
        With the same messages :func:`~repro.crypto.modular.mod_inv` uses,
        identifying the first non-invertible element.
    """
    from .modular import mod_inv

    values = list(values)
    if not _ENABLED or len(values) < 2:
        return [mod_inv(value, modulus, counter) for value in values]
    wrap = _backend.ACTIVE.wrap
    reduced = [wrap(value % modulus) for value in values]
    for value in reduced:
        if value == 0:
            raise ZeroDivisionError("0 has no inverse modulo %d" % modulus)
    counter.count_inv(len(values))
    prefixes: List[int] = []
    acc = wrap(1)
    for value in reduced:
        prefixes.append(acc)
        acc = (acc * value) % modulus
    try:
        inv_acc = _backend.ACTIVE.invert(acc, modulus)
    except ZeroDivisionError:
        # Surface the same per-element diagnostic mod_inv raises.
        for value in reduced:
            if math.gcd(int(value), modulus) != 1:
                raise ZeroDivisionError(
                    "%d is not invertible modulo %d (gcd=%d)"
                    % (value, modulus, math.gcd(int(value), modulus))
                ) from None
        raise  # pragma: no cover - unreachable
    inverses = [0] * len(reduced)
    for index in range(len(reduced) - 1, -1, -1):
        inverses[index] = int((inv_acc * prefixes[index]) % modulus)
        inv_acc = (inv_acc * reduced[index]) % modulus
    return inverses


# ---------------------------------------------------------------------------
# Per-execution public-value memoisation
# ---------------------------------------------------------------------------

class PublicValueCache:
    """Memo for publicly derivable values within one DMW execution.

    Two namespaces:

    * *commitment evaluations* — ``(modulus, commitment elements, point)``
      -> ``(value, exponent schedule)``; serves ``Gamma_{i,k}``,
      ``Phi_{i,k}`` and every eq. (7)-(9) right-hand side;
    * *interpolation weights* — ``(point tuple, modulus)`` -> the combined
      Lagrange-at-zero weight vector used by plaintext winner
      identification (eq. (14)).

    The cache stores no secrets: every entry is computable by any observer
    of the bulletin board.  Counter replay is the *caller's* job (the call
    sites charge the naive schedule on hit and miss alike); the cache only
    stores values plus whatever schedule data the caller needs to replay.

    Scoping rule: one cache per protocol execution, created by
    :meth:`~repro.core.protocol.DMWProtocol.execute` and shared by that
    execution's agents; never reused across executions.
    """

    __slots__ = ("_evaluations", "_weights", "_tables", "hits", "misses",
                 "evaluation_hits", "evaluation_misses", "weight_hits",
                 "weight_misses")

    def __init__(self) -> None:
        self._evaluations: Dict[CacheKey, CacheEntry] = {}
        self._weights: Dict[CacheKey, CacheEntry] = {}
        self._tables: Dict[CacheKey, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        # Per-namespace breakdown (the observability layer exports these
        # as dmw_cache_events_total{namespace=...,result=...}).
        self.evaluation_hits = 0
        self.evaluation_misses = 0
        self.weight_hits = 0
        self.weight_misses = 0

    # -- commitment evaluations ---------------------------------------------
    def get_evaluation(self, key: CacheKey) -> Optional[CacheEntry]:
        entry = self._evaluations.get(key)
        if entry is None:
            self.misses += 1
            self.evaluation_misses += 1
        else:
            self.hits += 1
            self.evaluation_hits += 1
        return entry

    def put_evaluation(self, key: CacheKey, entry: CacheEntry) -> None:
        self._evaluations[key] = entry

    # -- Straus digit tables -------------------------------------------------
    def get_tables(self, key: CacheKey) -> Optional[CacheEntry]:
        """Precomputed :func:`straus_tables` for one commitment vector.

        Table reuse is *not* counted as a hit/miss: the tables are an
        execution artefact with no analytic-model counterpart (their build
        cost is uncounted, like every other fast-path internal).
        """
        return self._tables.get(key)

    def put_tables(self, key: CacheKey, entry: CacheEntry) -> None:
        self._tables[key] = entry

    # -- Lagrange weight vectors --------------------------------------------
    def get_weights(self, key: CacheKey) -> Optional[CacheEntry]:
        entry = self._weights.get(key)
        if entry is None:
            self.misses += 1
            self.weight_misses += 1
        else:
            self.hits += 1
            self.weight_hits += 1
        return entry

    def put_weights(self, key: CacheKey, entry: CacheEntry) -> None:
        self._weights[key] = entry

    # -- reporting -----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Return hit/miss/entry counts (benchmark, test, and observability
        introspection; exported into run reports and Prometheus dumps)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evaluation_hits": self.evaluation_hits,
            "evaluation_misses": self.evaluation_misses,
            "weight_hits": self.weight_hits,
            "weight_misses": self.weight_misses,
            "evaluations": len(self._evaluations),
            "weight_vectors": len(self._weights),
            "straus_tables": len(self._tables),
        }

    # -- checkpoint persistence ----------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """JSON-encodable snapshot of the cache: counters *and* entries.

        Checkpoint/resume embeds this in the ``dmw_checkpoint`` document so
        a resumed run's ``cache_stats`` agree exactly with the uninterrupted
        run: the restored entries reproduce every cross-task hit (e.g. the
        shared ``rho`` Lagrange-weight vectors) and the restored counters
        continue the cumulative tallies.  Every entry is a public value —
        commitment evaluations, Straus digit tables, Lagrange weights, and
        memoised resolution results — so the export leaks nothing the
        bulletin board did not already reveal (``docs/RESILIENCE.md``).
        """
        return {
            "stats": {
                "hits": self.hits,
                "misses": self.misses,
                "evaluation_hits": self.evaluation_hits,
                "evaluation_misses": self.evaluation_misses,
                "weight_hits": self.weight_hits,
                "weight_misses": self.weight_misses,
            },
            "evaluations": [[encode_cache_value(key), encode_cache_value(e)]
                            for key, e in self._evaluations.items()],
            "weights": [[encode_cache_value(key), encode_cache_value(e)]
                        for key, e in self._weights.items()],
            "tables": [[encode_cache_value(key), encode_cache_value(e)]
                       for key, e in self._tables.items()],
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        """Restore an :meth:`export_state` snapshot (checkpoint resume).

        Counters are overwritten, entries are merged in; sections missing
        from ``state`` are left untouched (a stats-only snapshot — the
        process-pool driver's merged tallies — restores just the counters).
        """
        stats = state.get("stats") or {}
        for name in ("hits", "misses", "evaluation_hits",
                     "evaluation_misses", "weight_hits", "weight_misses"):
            if name in stats:
                setattr(self, name, int(stats[name]))
        for section, store in (("evaluations", self._evaluations),
                               ("weights", self._weights),
                               ("tables", self._tables)):
            for encoded_key, encoded_entry in state.get(section) or []:
                store[decode_cache_value(encoded_key)] = \
                    decode_cache_value(encoded_entry)

    def seed_from(self, other: "PublicValueCache") -> None:
        """Copy another cache's *entries* into this one (not its counters).

        The warm-cache path of the always-on service: a fresh per-job
        cache is seeded with a previous job's public entries so repeat
        parameters skip recomputation, while this cache's hit/miss
        counters still describe only the current job.  Entries are
        immutable tuples keyed purely by content, so sharing them across
        executions can never serve a stale value.
        """
        self._evaluations.update(other._evaluations)
        self._weights.update(other._weights)
        self._tables.update(other._tables)

    def entry_count(self) -> int:
        """Total stored entries across all three namespaces."""
        return (len(self._evaluations) + len(self._weights)
                + len(self._tables))

    def hit_rate(self) -> float:
        """Hit fraction over all counted lookups (0.0 when none).

        Diagnostic-only value exported to run reports; never feeds back
        into field arithmetic, hence the DMW006 suppression.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0  # dmwlint: disable=DMW006

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PublicValueCache(%r)" % (self.stats(),)


# ---------------------------------------------------------------------------
# Cache-state encoding (checkpoint persistence)
# ---------------------------------------------------------------------------
#
# Cache keys and entries are heterogeneous trees of ints, strings, bools,
# tuples, lists, and (for memoised resolution schedules) OperationCounter
# replays.  JSON has neither tuples nor counters, so both are wrapped in
# single-key tagged objects: {"t": [...]} for tuples, {"l": [...]} for
# lists, {"c": snapshot} for counters.  Scalars pass through untouched
# (Python's JSON keeps arbitrary-precision ints exact).

def encode_cache_value(value: Any) -> Any:
    """Encode one cache key/entry tree into JSON-safe form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_cache_value(item) for item in value]}
    if isinstance(value, list):
        return {"l": [encode_cache_value(item) for item in value]}
    if isinstance(value, OperationCounter):
        return {"c": value.snapshot()}
    if hasattr(value, "__index__"):
        # Backend-native residues (e.g. gmpy2 ``mpz`` in Straus tables)
        # round-trip as exact ints; mixed int/mpz rows multiply fine on
        # import, so decode does not need to re-wrap.
        return int(value)
    raise TypeError("cannot encode cache value of type %r"
                    % type(value).__name__)


def decode_cache_value(value: Any) -> Any:
    """Invert :func:`encode_cache_value` (tuples come back hashable)."""
    if isinstance(value, dict):
        if "t" in value:
            return tuple(decode_cache_value(item) for item in value["t"])
        if "l" in value:
            return [decode_cache_value(item) for item in value["l"]]
        if "c" in value:
            counter = OperationCounter()
            counter.restore(value["c"])
            return counter
        raise TypeError("unknown cache-value tag %r" % sorted(value))
    return value


def merge_cache_stats(into: Dict[str, int],
                      add: Dict[str, int]) -> Dict[str, int]:
    """Add one :meth:`PublicValueCache.stats` dict into an accumulator.

    The process-pool driver gives every per-task shard its own fresh
    cache; the parent folds the shard statistics together with this so
    the merged ``cache_stats`` are a deterministic per-task sum that is
    independent of the worker count.
    """
    for key, value in add.items():
        into[key] = into.get(key, 0) + value
    return into
