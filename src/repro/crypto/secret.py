"""Runtime secret-taint sanitizer: ``Secret[T]`` and ``declassify``.

Static rule DMW004 catches secret values flowing to sinks *that the AST
can see*; this module is its runtime twin.  Under ``DMW_SANITIZE=1`` the
agents wrap their private values in :class:`Secret`, a taint wrapper that

* supports the arithmetic and comparisons the protocol needs (results of
  arithmetic stay tainted; comparisons produce plain booleans, which is
  how the mechanism computes argmins without revealing operands),
* raises :class:`SecretLeakError` from ``__str__``/``__format__``/
  ``__int__``/``__index__`` so a stray ``print``, f-string, ``"%d"``
  format, or JSON dump fails loudly instead of leaking, and
* can only be opened through :func:`declassify`, which records an
  auditable :class:`DeclassificationEvent` with a human-written reason.

The paper sanctions exactly three reveals (DMW Phase III): the minimum
bid ``y*``, the winner's identity, and the second price ``y**``.  The
protocol routes those — and nothing else — through :func:`declassify`,
so after a sanitized run :func:`declassification_audit` is a complete,
reviewable list of everything the mechanism disclosed.

When ``DMW_SANITIZE`` is unset, :func:`tag_secret` is the identity and
:func:`declassify` a passthrough, so production runs pay nothing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Generic, List, Tuple, TypeVar, Union

T = TypeVar("T", bound=int)

_ENABLED_VALUES = ("1", "true", "yes", "on")

#: Environment variable gating the sanitizer test mode.
SANITIZE_ENV_VAR = "DMW_SANITIZE"


class SecretLeakError(RuntimeError):
    """A secret value was about to escape through an unsanctioned channel."""


def sanitize_enabled() -> bool:
    """True when the ``DMW_SANITIZE=1`` test mode is active."""
    return os.environ.get(SANITIZE_ENV_VAR, "").strip().lower() \
        in _ENABLED_VALUES


@dataclass(frozen=True)
class DeclassificationEvent:
    """One audited reveal.

    Attributes
    ----------
    sequence:
        Monotonic index of the event within the process.
    label:
        Short machine-readable tag of *what* was revealed (``"y*"``,
        ``"winner"``, ``"y**"``, ``"winner_bid"``).
    reason:
        Human-written justification passed at the call site.
    value:
        The revealed value (post-reveal it is public by definition).
    """

    sequence: int
    label: str
    reason: str
    value: int


_audit_log: List[DeclassificationEvent] = []


class Secret(Generic[T]):
    """Taint wrapper around a private integer value.

    Arithmetic keeps the taint; comparisons return plain booleans;
    every rendering or coercion path raises :class:`SecretLeakError`.
    The raw value is reachable only via :func:`declassify` (audited
    reveal) or :func:`local_value` (owner-local computation, e.g. the
    bidding agent encoding its own bid into share polynomials).
    """

    __slots__ = ("_value", "_label")

    def __init__(self, value: T, label: str = "secret") -> None:
        if isinstance(value, Secret):  # re-wrapping keeps innermost value
            value = value._value
        self._value = value
        self._label = label

    @property
    def label(self) -> str:
        return self._label

    # -- arithmetic (taint-preserving) ------------------------------------
    def _lift(self, other: Any) -> int:
        return other._value if isinstance(other, Secret) else other

    def __add__(self, other: Any) -> "Secret[T]":
        return Secret(self._value + self._lift(other), self._label)

    def __radd__(self, other: Any) -> "Secret[T]":
        return Secret(self._lift(other) + self._value, self._label)

    def __sub__(self, other: Any) -> "Secret[T]":
        return Secret(self._value - self._lift(other), self._label)

    def __rsub__(self, other: Any) -> "Secret[T]":
        return Secret(self._lift(other) - self._value, self._label)

    def __mul__(self, other: Any) -> "Secret[T]":
        return Secret(self._value * self._lift(other), self._label)

    def __rmul__(self, other: Any) -> "Secret[T]":
        return Secret(self._lift(other) * self._value, self._label)

    def __mod__(self, other: Any) -> "Secret[T]":
        return Secret(self._value % self._lift(other), self._label)

    def __floordiv__(self, other: Any) -> "Secret[T]":
        return Secret(self._value // self._lift(other), self._label)

    def __neg__(self) -> "Secret[T]":
        return Secret(-self._value, self._label)

    # -- comparisons (reveal one bit, as the mechanism requires) ----------
    def __eq__(self, other: object) -> bool:
        return self._value == self._lift(other)

    def __ne__(self, other: object) -> bool:
        return self._value != self._lift(other)

    def __lt__(self, other: Any) -> bool:
        return self._value < self._lift(other)

    def __le__(self, other: Any) -> bool:
        return self._value <= self._lift(other)

    def __gt__(self, other: Any) -> bool:
        return self._value > self._lift(other)

    def __ge__(self, other: Any) -> bool:
        return self._value >= self._lift(other)

    def __hash__(self) -> int:
        return hash(self._value)

    def __bool__(self) -> bool:
        return bool(self._value)

    # -- leak barriers -----------------------------------------------------
    def _leak(self, channel: str) -> "SecretLeakError":
        return SecretLeakError(
            "secret %r would leak through %s; route the reveal through "
            "declassify(value, reason=...) instead" % (self._label, channel))

    def __str__(self) -> str:
        raise self._leak("str()")

    def __format__(self, format_spec: str) -> str:
        raise self._leak("format()")

    def __int__(self) -> int:
        raise self._leak("int()")

    def __index__(self) -> int:
        raise self._leak("__index__ (range/%d formatting/slicing)")

    def __float__(self) -> float:
        raise self._leak("float()")

    def __repr__(self) -> str:
        # repr is deliberately safe (debuggers call it implicitly) but
        # never includes the value.
        return "Secret(<redacted:%s>)" % self._label


#: A value that may or may not be taint-wrapped depending on the mode.
SecretInt = Union[int, "Secret[int]"]


def tag_secret(value: T, label: str = "secret") -> Union[T, Secret[T]]:
    """Wrap ``value`` when the sanitizer mode is on; identity otherwise."""
    if sanitize_enabled():
        return Secret(value, label)
    return value


def local_value(value: Union[T, Secret[T]]) -> T:
    """Owner-local unwrap: computing on one's *own* secret.

    This is **not** a declassification — the result must stay inside the
    owning agent (e.g. the bid degree used to draw share polynomials).
    It exists so protocol-internal computation does not pollute the
    declassification audit, which must list only actual reveals.
    """
    if isinstance(value, Secret):
        return value._value
    return value


def declassify(value: Union[T, Secret[T]], *, reason: str,
               label: str = "") -> T:
    """Open a secret through the sanctioned gate, recording an audit event.

    ``reason`` is mandatory and should cite the protocol step that makes
    the reveal legitimate (the paper sanctions exactly ``y*``, the winner
    identity, and ``y**``).  Plain values may also be routed through the
    gate: the reveal is still recorded, which keeps the audit complete at
    call sites that only sometimes hold a wrapped value.

    Events are recorded only under ``DMW_SANITIZE=1`` so unsanitized
    production runs do not accumulate an unbounded log.
    """
    if isinstance(value, Secret):
        raw = value._value
        event_label = label or value._label
    else:
        raw = value
        event_label = label or "plain"
    if sanitize_enabled():
        _audit_log.append(DeclassificationEvent(
            sequence=len(_audit_log),
            label=event_label,
            reason=reason,
            value=raw,
        ))
    return raw


def declassification_audit() -> Tuple[DeclassificationEvent, ...]:
    """All reveals recorded since the last :func:`clear_declassification_audit`."""
    return tuple(_audit_log)


def clear_declassification_audit() -> None:
    """Reset the audit log (test isolation)."""
    _audit_log.clear()


def secret_json_default(obj: object) -> object:
    """``json.dumps(default=...)`` hook that turns a Secret leak into
    :class:`SecretLeakError` instead of an opaque ``TypeError``."""
    if isinstance(obj, Secret):
        raise SecretLeakError(
            "secret %r would leak through JSON serialization; declassify "
            "it first" % obj.label)
    raise TypeError(
        "Object of type %s is not JSON serializable" % type(obj).__name__)
