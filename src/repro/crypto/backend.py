"""Pluggable arithmetic backends for the counted modular substrate.

The paper's cost claims (Theorem 12, Table 1) are *counted* analytically
by :class:`~repro.crypto.modular.OperationCounter`; the *values* can be
computed by whatever engine the host has.  This module makes that engine
pluggable:

* ``python`` — the reference backend: CPython bigints, ``pow(b, e, m)``,
  ``pow(a, -1, m)``.  Always available; bit-identical to the historical
  implementation.
* ``gmpy2`` — GMP-backed ``mpz`` residues via ``gmpy2.powmod`` and
  ``gmpy2.invert``.  Selected only when :mod:`gmpy2` is importable;
  otherwise selection degrades gracefully to ``python`` (or raises when
  ``strict=True``).

Selection precedence (first hit wins):

1. an explicit :func:`select_backend` / :func:`using_backend` call
   (the ``--backend`` CLI flag is a thin wrapper over this);
2. the ``DMW_BACKEND`` environment variable, consulted once at import;
3. the ``python`` default.

``"auto"`` resolves to ``gmpy2`` when importable, else ``python``.

Counter-parity contract
-----------------------
Backends change *how* residues are computed, never *what is counted*:
every call site charges its :class:`OperationCounter` before touching the
backend, so Table 1 / Theorem 12 tallies are bit-identical across
backends.  ``tests/test_backend.py`` asserts outcome, transcript, and
counter equality between ``python`` and ``gmpy2`` whole-protocol runs.

Process-pool workers re-select the parent's backend by name from the
pickled :class:`~repro.parallel.PoolSpec` (graceful, never strict), so a
worker on a host without gmpy2 falls back to ``python`` and still
produces the identical outcome.
"""

from __future__ import annotations

import contextlib
import math
import os
import warnings
from typing import Any, Callable, Dict, Iterator, List


class BackendUnavailableError(RuntimeError):
    """Raised by ``select_backend(name, strict=True)`` for missing engines."""


class ArithmeticBackend:
    """One arithmetic engine: scalar entry points plus residue wrapping.

    The scalar methods (:meth:`mul`, :meth:`powmod`, :meth:`invert`) take
    and return plain ``int`` — they are the drop-in targets for
    :mod:`repro.crypto.modular`.  Hot loops that keep intermediate
    residues alive (fixed-base tables, Straus chains, Montgomery batches)
    instead :meth:`wrap` their operands once, run native ``*``/``%``
    Python operators on the wrapped values, and :meth:`unwrap` at the
    return boundary; for the python backend both are identity-cheap.
    """

    name: str = "abstract"

    def wrap(self, value: int) -> Any:
        """Convert an int into this backend's native residue type."""
        raise NotImplementedError

    def unwrap(self, value: Any) -> int:
        """Convert a native residue back into a plain Python int."""
        raise NotImplementedError

    def mul(self, a: int, b: int, modulus: int) -> int:
        """Return ``(a * b) % modulus``."""
        raise NotImplementedError

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """Return ``base ** exponent % modulus`` (``exponent >= 0``)."""
        raise NotImplementedError

    def invert(self, a: int, modulus: int) -> int:
        """Return ``a^{-1} mod modulus``.

        Raises
        ------
        ZeroDivisionError
            With the canonical ``mod_inv`` diagnostic when
            ``gcd(a, modulus) != 1`` — identical wording across backends
            so error-path tests cannot tell engines apart.
        """
        raise NotImplementedError

    def _not_invertible(self, a: int, modulus: int) -> ZeroDivisionError:
        return ZeroDivisionError(
            "%d is not invertible modulo %d (gcd=%d)"
            % (a, modulus, math.gcd(a, modulus))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s backend>" % self.name


class PythonBackend(ArithmeticBackend):
    """The reference engine: CPython bigint arithmetic, zero wrapping."""

    name = "python"

    def wrap(self, value: int) -> Any:
        return value

    def unwrap(self, value: Any) -> int:
        return int(value)

    def mul(self, a: int, b: int, modulus: int) -> int:
        return (a * b) % modulus

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def invert(self, a: int, modulus: int) -> int:
        # Native pow(a, -1, m) (CPython >= 3.8) beats a Python-level
        # extended Euclid by several times; the gcd-based error path
        # keeps the canonical diagnostics.
        try:
            return pow(a, -1, modulus)
        except ValueError:
            raise self._not_invertible(a, modulus) from None


class Gmpy2Backend(ArithmeticBackend):
    """GMP engine: ``mpz`` residues, ``gmpy2.powmod``/``invert``.

    Constructed only when :mod:`gmpy2` imports; :func:`select_backend`
    handles the fallback.  ``mpz`` mimics int for ``*``/``%``/``==``/
    hashing, so wrapped residues flow through the fastexp hot loops
    unchanged — only the wrap/unwrap boundaries know the difference.
    """

    name = "gmpy2"

    def __init__(self) -> None:
        import gmpy2  # noqa: F401  # dmwlint: disable=DMW007

        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz

    def wrap(self, value: int) -> Any:
        return self._mpz(value)

    def unwrap(self, value: Any) -> int:
        return int(value)

    def mul(self, a: int, b: int, modulus: int) -> int:
        return int(self._mpz(a) * b % modulus)

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(base, exponent, modulus))

    def invert(self, a: int, modulus: int) -> int:
        try:
            return int(self._gmpy2.invert(a, modulus))
        except ZeroDivisionError:
            raise self._not_invertible(a, modulus) from None


_FACTORIES: Dict[str, Callable[[], ArithmeticBackend]] = {
    "python": PythonBackend,
    "gmpy2": Gmpy2Backend,
}

#: The engine every counted call site routes through.  Module-global by
#: design: backend choice is an execution-environment property (like
#: ``fastexp._ENABLED``), not per-run state, and must survive pickling
#: into pool workers by *name* rather than by object.
ACTIVE: ArithmeticBackend = PythonBackend()


def gmpy2_available() -> bool:
    """Return True when the gmpy2 engine can actually be constructed."""
    try:
        import gmpy2  # noqa: F401  # dmwlint: disable=DMW007
    except ImportError:
        return False
    return True


def available_backends() -> List[str]:
    """Names of the engines constructible in this interpreter."""
    names = ["python"]
    if gmpy2_available():
        names.append("gmpy2")
    return names


def active_backend() -> ArithmeticBackend:
    """Return the currently selected engine."""
    return ACTIVE


def select_backend(name: str, strict: bool = False) -> ArithmeticBackend:
    """Install the named engine as :data:`ACTIVE` and return it.

    Parameters
    ----------
    name:
        ``"python"``, ``"gmpy2"``, or ``"auto"`` (gmpy2 when importable,
        else python).  Case-insensitive; empty/None-ish falls back to
        ``"python"``.
    strict:
        When True, a named-but-unavailable engine raises
        :class:`BackendUnavailableError`; the default emits a
        :class:`RuntimeWarning` and degrades to ``python``.
    """
    global ACTIVE
    requested = (name or "python").strip().lower()
    if requested == "auto":
        requested = "gmpy2" if gmpy2_available() else "python"
    factory = _FACTORIES.get(requested)
    if factory is None:
        raise ValueError(
            "unknown arithmetic backend %r; options: %s"
            % (name, sorted(_FACTORIES) + ["auto"])
        )
    try:
        backend = factory()
    except ImportError:
        if strict:
            raise BackendUnavailableError(
                "backend %r requested but its engine is not importable "
                "(install the '.[fast]' extra)" % requested
            ) from None
        warnings.warn(
            "backend %r unavailable; falling back to pure-python "
            "arithmetic" % requested,
            RuntimeWarning,
            stacklevel=2,
        )
        backend = PythonBackend()
    # Reachable from `_run_shard_with_spec` only as the value-guarded
    # re-install of the pool initializer path: the resident service pool
    # outlives any one job's PoolSpec, so spec changes re-run the same
    # sanctioned per-process setup the initializer performs.
    ACTIVE = backend  # dmwlint: disable=DMW011
    return backend


@contextlib.contextmanager
def using_backend(name: str, strict: bool = False) -> Iterator[ArithmeticBackend]:
    """Select ``name`` within the block, restoring the previous engine.

    Test/bench helper; nesting is safe and exceptions restore state.
    """
    global ACTIVE
    previous = ACTIVE
    try:
        yield select_backend(name, strict=strict)
    finally:
        ACTIVE = previous


# Environment-variable initialisation (precedence step 2).  Errors here
# must not make `import repro` unusable: an unknown name warns and keeps
# the python default rather than raising at import time.
_env_choice = os.environ.get("DMW_BACKEND", "").strip()
if _env_choice:
    try:
        select_backend(_env_choice)
    except ValueError:
        warnings.warn(
            "ignoring unknown DMW_BACKEND=%r (options: python, gmpy2, "
            "auto)" % _env_choice,
            RuntimeWarning,
        )
