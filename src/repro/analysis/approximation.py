"""Experiment E8: MinWork's n-approximation of the makespan.

MinWork minimizes total work, not the makespan; the paper cites [30] for
its approximation ratio of exactly ``n``.  This module measures the ratio
on random workload families (where it is usually mild) and on the
adversarial family (where it approaches ``n``), against the exact
branch-and-bound optimum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..mechanisms.minwork import MinWork
from ..mechanisms.optimal import optimal_makespan_schedule
from ..scheduling import workloads
from ..scheduling.problem import SchedulingProblem


@dataclass(frozen=True)
class RatioSample:
    """One measured makespan ratio."""

    workload: str
    num_agents: int
    num_tasks: int
    minwork_makespan: float
    optimal_makespan: float

    @property
    def ratio(self) -> float:
        return self.minwork_makespan / self.optimal_makespan


def measure_ratio(problem: SchedulingProblem, workload: str) -> RatioSample:
    """Compare MinWork's makespan with the exact optimum on one instance."""
    schedule = MinWork().allocate(problem)
    _, optimum = optimal_makespan_schedule(problem)
    return RatioSample(
        workload=workload,
        num_agents=problem.num_agents,
        num_tasks=problem.num_tasks,
        minwork_makespan=schedule.makespan(problem),
        optimal_makespan=optimum,
    )


def random_workload_ratios(num_agents: int = 4, num_tasks: int = 6,
                           trials: int = 10, seed: int = 0
                           ) -> List[RatioSample]:
    """Ratios on the standard random families."""
    rng = random.Random(seed)
    samples = []
    families = (
        ("uniform", lambda: workloads.uniform_random(num_agents, num_tasks,
                                                     rng)),
        ("machine_correlated",
         lambda: workloads.machine_correlated(num_agents, num_tasks, rng)),
        ("task_correlated",
         lambda: workloads.task_correlated(num_agents, num_tasks, rng)),
        ("bimodal", lambda: workloads.bimodal(num_agents, num_tasks, rng)),
    )
    for name, build in families:
        for _ in range(trials):
            samples.append(measure_ratio(build(), name))
    return samples


def adversarial_ratios(agent_counts: Sequence[int] = (2, 3, 4, 5)
                       ) -> List[RatioSample]:
    """Ratios on the tight instances — must approach ``n``."""
    return [
        measure_ratio(workloads.adversarial_for_minwork(n), "adversarial")
        for n in agent_counts
    ]
