"""Frugality: how much does MinWork overpay?

Archer and Tardos' frugality lens (reference [5] of the paper) asks how a
mechanism's total payment compares to the cost actually incurred.  For
MinWork the winner of task ``j`` is paid the second-lowest bid, so the
per-task *overpayment* is the gap between the two lowest bids — zero in
perfectly competitive auctions and large when one agent dominates.

Metrics reported per instance:

* ``total_cost`` — the declared cost of the chosen allocation
  (``sum of winning bids``);
* ``total_payment`` — ``sum of second prices``;
* ``frugality_ratio`` — ``total_payment / total_cost`` (>= 1);
* per-task competitive margins.

These quantify a practical deployment question the paper leaves open:
what budget does the payment infrastructure need relative to the work
actually bought?
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..mechanisms.minwork import MinWork, minwork_first_and_second_price
from ..scheduling import workloads
from ..scheduling.problem import SchedulingProblem


@dataclass(frozen=True)
class FrugalityReport:
    """Payment-vs-cost accounting for one MinWork execution."""

    total_cost: float
    total_payment: float
    per_task_margins: Tuple[float, ...]

    @property
    def frugality_ratio(self) -> float:
        """``total_payment / total_cost`` (1.0 = no overpayment)."""
        if self.total_cost == 0:
            raise ValueError("total cost is zero")
        return self.total_payment / self.total_cost

    @property
    def overpayment(self) -> float:
        return self.total_payment - self.total_cost


def frugality_of(problem: SchedulingProblem) -> FrugalityReport:
    """Measure MinWork's payments against its winners' declared costs."""
    result = MinWork().run(problem)
    total_cost = 0.0
    margins: List[float] = []
    for task in range(problem.num_tasks):
        column = problem.task_times(task)
        _, first, second = minwork_first_and_second_price(column)
        total_cost += first
        margins.append(second - first)
    return FrugalityReport(
        total_cost=total_cost,
        total_payment=sum(result.payments),
        per_task_margins=tuple(margins),
    )


def frugality_by_competition(num_agents: int = 6, num_tasks: int = 4,
                             trials: int = 10, seed: int = 0
                             ) -> List[Tuple[str, float]]:
    """Mean frugality ratio per workload family.

    Competitive families (task-correlated: bids cluster) should overpay
    little; dispersed families (uniform, bimodal) more — the measured
    confirmation that second-price overpayment is a competition effect,
    not a mechanism constant.
    """
    rng = random.Random(seed)
    families = (
        ("task_correlated",
         lambda: workloads.task_correlated(num_agents, num_tasks, rng,
                                           noise=0.05)),
        ("uniform",
         lambda: workloads.uniform_random(num_agents, num_tasks, rng)),
        ("bimodal",
         lambda: workloads.bimodal(num_agents, num_tasks, rng)),
    )
    rows = []
    for name, build in families:
        ratios = [frugality_of(build()).frugality_ratio
                  for _ in range(trials)]
        rows.append((name, sum(ratios) / len(ratios)))
    return rows
