"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's Table 1 reports;
these helpers keep that output aligned and diff-friendly (EXPERIMENTS.md
embeds it verbatim).
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_cell(value: Any) -> str:
    """Format one cell: floats get 3 significant decimals, rest ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return "%.3f" % value
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table with a header rule."""
    formatted = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError("row width %d != header width %d"
                             % (len(row), len(headers)))
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
