"""Open Problem 11: the computability threshold under deviation.

The paper's discussion of Feigenbaum-Shenker's Open Problem 11 states:
*"As long as the number of agents obeying the protocol remains above a
threshold, the mechanism is computable.  If the number of agents drops
below the threshold, the mechanism cannot be resolved."*

This module measures that threshold exactly.  The binding constraint is
first-price degree resolution: with minimum bid ``y_min``, the aggregate
``E`` has degree ``sigma - y_min`` and needs ``sigma - y_min + 1`` valid
``Lambda`` values out of ``n``.  Agents that withhold (or corrupt) their
aggregates are excluded from the valid set, so the execution completes
iff the number of such deviators ``k`` satisfies

``k <= n - (sigma - y_min + 1)``.

With the default maximal bid set (``sigma = n``) this is ``k <= y_min - 1``
— a threshold that *depends on the instance*: cheap minimum bids tolerate
no deviation at all, expensive ones tolerate up to ``w_k - 1`` deviators.
:func:`resilience_sweep` measures completion across ``(y_min, k)`` and
returns measured-vs-predicted thresholds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.deviant import WithholdAggregatesAgent, WrongAggregatesAgent
from ..core.parameters import DMWParameters
from ..scheduling.problem import SchedulingProblem
from .faithfulness import honest_factory, run_with_agents


def _uniform_bid_instance(parameters: DMWParameters,
                          bid: int) -> SchedulingProblem:
    """A single-task instance where every agent's true value is ``bid``."""
    return SchedulingProblem([[bid]] * parameters.num_agents)


def completion_with_deviators(parameters: DMWParameters,
                              problem: SchedulingProblem,
                              num_deviators: int,
                              deviant_class=WithholdAggregatesAgent,
                              seed: int = 0) -> bool:
    """Run with the last ``num_deviators`` agents deviating; did it finish?

    The deviators are placed at the *end* of the index range so they are
    never the winner of the first-price tie-break, isolating the
    resolution-threshold effect.
    """
    n = parameters.num_agents
    if not 0 <= num_deviators < n:
        raise ValueError("need 0 <= deviators < n")

    def deviant(index, params, true_values, rng):
        return deviant_class(index, params, true_values, rng=rng)

    factories: List[Callable] = [honest_factory] * n
    for index in range(n - num_deviators, n):
        factories[index] = deviant
    outcome = run_with_agents(parameters, factories, problem, seed)
    return outcome.completed


@dataclass(frozen=True)
class ResilienceRow:
    """Measured tolerance for one minimum-bid level."""

    minimum_bid: int
    aggregate_degree: int
    predicted_threshold: int
    measured_threshold: int

    @property
    def matches(self) -> bool:
        return self.predicted_threshold == self.measured_threshold


def resilience_sweep(parameters: DMWParameters,
                     deviant_class=WithholdAggregatesAgent,
                     seed: int = 0) -> List[ResilienceRow]:
    """Measure the deviation-tolerance threshold per minimum bid.

    For each bid level ``y`` in ``W``, runs the uniform-``y`` instance
    with ``k = 0, 1, ...`` deviators until the first failure; the measured
    threshold is the largest ``k`` that still completed.
    """
    rows = []
    n = parameters.num_agents
    for bid in parameters.bid_values:
        problem = _uniform_bid_instance(parameters, bid)
        degree = parameters.sigma - bid
        predicted = n - (degree + 1)
        measured = -1
        for num_deviators in range(n):
            if completion_with_deviators(parameters, problem,
                                         num_deviators, deviant_class,
                                         seed):
                measured = num_deviators
            else:
                break
        rows.append(ResilienceRow(
            minimum_bid=bid,
            aggregate_degree=degree,
            predicted_threshold=max(predicted, 0),
            measured_threshold=measured,
        ))
    return rows
