"""Baseline/ratchet support: land strict rules on a legacy tree.

A baseline file records the *fingerprints* of known findings; a lint run
with ``--baseline`` subtracts them and fails only on findings that are
not in the file.  That lets a new rule (or a widened scope) land with
zero tolerance for regressions while the recorded findings burn down
incrementally — removing a finding shrinks the file, adding one fails
CI.

Fingerprints are content-addressed, not line-addressed: the hash covers
the rule id, the normalized path, the message, and an occurrence counter
for exact duplicates — but *not* the line number, so pure line shifts
(an unrelated edit above the finding) do not churn the baseline.  The
same fingerprint is exported as ``partialFingerprints`` in the SARIF
output so code-scanning backends track findings identically.

File format (JSON, sorted, committed to the repo)::

    {
      "version": 1,
      "tool": "dmwlint",
      "fingerprints": {
        "<40-hex>": {"rule": "DMW001", "path": "...", "message": "..."},
        ...
      }
    }
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Sequence, Tuple

from .base import Violation
from .engine import LintReport

BASELINE_VERSION = 1
#: Default committed baseline file name (repo root).
DEFAULT_BASELINE_NAME = "dmwlint-baseline.json"


def _violation_key(violation: Violation) -> str:
    return "%s|%s|%s" % (violation.rule_id,
                         violation.path.replace("\\", "/"),
                         violation.message)


def fingerprint_violations(violations: Sequence[Violation]
                           ) -> List[Tuple[Violation, str]]:
    """Stable fingerprints, disambiguating exact duplicates in order."""
    occurrence: Dict[str, int] = {}
    result: List[Tuple[Violation, str]] = []
    for violation in violations:
        key = _violation_key(violation)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            ("%s|#%d" % (key, index)).encode("utf-8")).hexdigest()[:40]
        result.append((violation, digest))
    return result


def render_baseline(report: LintReport) -> str:
    """Serialize the report's findings as a baseline file."""
    fingerprints: Dict[str, Dict[str, str]] = {}
    for violation, digest in fingerprint_violations(
            report.sorted_violations()):
        fingerprints[digest] = {
            "rule": violation.rule_id,
            "path": violation.path.replace("\\", "/"),
            "message": violation.message,
        }
    payload = {
        "version": BASELINE_VERSION,
        "tool": "dmwlint",
        "fingerprints": fingerprints,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(report: LintReport, path: str) -> int:
    """Write the baseline for ``report``; returns the finding count."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(report))
    return len(report.violations)


class BaselineError(Exception):
    """The baseline file is missing or malformed."""


def load_baseline(path: str) -> Dict[str, Dict[str, str]]:
    if not os.path.isfile(path):
        raise BaselineError("baseline file not found: %s" % path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise BaselineError("unreadable baseline %s: %s" % (path, error))
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise BaselineError(
            "baseline %s lacks a 'fingerprints' table" % path)
    if payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            "baseline %s has unsupported version %r"
            % (path, payload.get("version")))
    fingerprints = payload["fingerprints"]
    if not isinstance(fingerprints, dict):
        raise BaselineError("baseline %s fingerprints must be a mapping"
                            % path)
    return fingerprints


def apply_baseline(report: LintReport, path: str) -> None:
    """Drop baselined findings from ``report`` (counted, never silent).

    Mutates the report in place: known fingerprints move from
    ``violations`` to ``baselined_count``; new findings stay and keep
    their exit-status weight.
    """
    known = load_baseline(path)
    kept: List[Violation] = []
    baselined = 0
    for violation, digest in fingerprint_violations(
            report.sorted_violations()):
        if digest in known:
            baselined += 1
        else:
            kept.append(violation)
    report.violations = kept
    report.baselined_count += baselined
