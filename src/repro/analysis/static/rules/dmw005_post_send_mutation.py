"""DMW005 — mutation of a network ``Message`` after it was sent.

Delivery invariant (DESIGN.md / ``repro.network``): the simulated network
delivers by reference within a process, so mutating a message object after
``send()``/``broadcast()`` retroactively rewrites what the recipient — and
the transcript — saw.  That breaks the bulletin-board equivocation checks
(every agent must observe the *same* published value) and makes replay
diverge from the live run.  :class:`repro.network.message.Message` is a
frozen dataclass precisely to prevent this; the rule guards the remaining
hole (mutable payloads) and any future non-frozen message type.

The rule tracks, per function, names passed to a ``send``-like method and
flags later attribute/subscript assignment or mutating method calls on
them.  Sanctioned idiom: build the final payload first, send last, and use
``Message.with_round`` — which copies — for stamping.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..base import FileContext, Rule, Violation

SEND_METHODS = {"send", "broadcast", "transmit", "enqueue"}
MUTATING_METHODS = {"update", "append", "add", "clear", "pop", "extend",
                    "setdefault", "insert", "remove"}


def _attribute_chain_base(node: ast.AST) -> Tuple[Optional[str], bool]:
    """(base name, chain passed through an attribute/subscript) of a target."""
    through_attribute = False
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            through_attribute = True
            current = current.value
        elif isinstance(current, ast.Subscript):
            through_attribute = True
            current = current.value
        else:
            break
    if isinstance(current, ast.Name):
        return current.id, through_attribute
    return None, through_attribute


class PostSendMutationRule(Rule):
    rule_id = "DMW005"
    description = "mutation of a Message object after send/broadcast"
    invariant = ("the network delivers by reference: post-send mutation "
                 "rewrites what recipients and the transcript observed, "
                 "breaking equivocation checks and replay")
    include_parts = ("core", "network", "auctions")

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(context, node)

    def _check_function(self, context: FileContext,
                        function: ast.AST) -> Iterator[Violation]:
        sent_at: Dict[str, int] = {}
        mutations: List[Tuple[int, str, ast.AST]] = []
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                self._note_send(node, sent_at)
                mutated = self._mutating_call_target(node)
                if mutated is not None:
                    mutations.append((node.lineno, mutated, node))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    base, through = _attribute_chain_base(target)
                    if base is not None and through:
                        mutations.append((node.lineno, base, node))
        for lineno, name, node in sorted(mutations, key=lambda m: m[0]):
            if name in sent_at and lineno > sent_at[name]:
                yield self.violation(
                    context, node,
                    "`%s` mutated on line %d after being sent on line %d; "
                    "messages must be immutable once transmitted" %
                    (name, lineno, sent_at[name]))

    @staticmethod
    def _note_send(call: ast.Call, sent_at: Dict[str, int]) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in SEND_METHODS):
            return
        for argument in call.args:
            if isinstance(argument, ast.Name):
                sent_at.setdefault(argument.id, call.lineno)
            elif isinstance(argument, (ast.List, ast.Tuple)):
                for element in argument.elts:
                    if isinstance(element, ast.Name):
                        sent_at.setdefault(element.id, call.lineno)

    @staticmethod
    def _mutating_call_target(call: ast.Call) -> Optional[str]:
        """Name mutated by ``name.attr.update(...)``-style calls, if any."""
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS):
            return None
        # Require at least one attribute hop below the method so that
        # plain `some_list.append(x)` is not treated as message mutation.
        base, through = _attribute_chain_base(func.value)
        if base is not None and through:
            return base
        return None
