"""DMW011 — module globals mutated on the process-pool worker task path.

The pool driver's determinism contract (``repro.parallel``) is that a
shard is a pure function of ``(PoolSpec, task)``: workers are recycled
across tasks, so any module-level state a task writes leaks into the
*next* task scheduled on the same worker — and which tasks share a
worker depends on timing, so the contamination is irreproducible by
construction.  Results must flow back through the picklable
:class:`~repro.parallel.ShardResult`; per-process setup belongs in the
pool *initializer*, which runs once before any task and is the one
sanctioned writer of worker-process globals (that is how ``_SPEC`` and
the arithmetic-backend selection are installed).

Statically: the rule finds the pool entry points — functions passed as
``initializer=`` to ``ProcessPoolExecutor(...)`` and functions submitted
with ``pool.submit(f, ...)`` — takes the call-graph closure of the
*task* entries, and flags, inside any function of that closure:

* rebinding a module global (``global X`` + assignment);
* mutating a module-level mutable container (``X.append/update/...``,
  ``X[k] = v``), whether accessed by local name or as ``module.X``.

Functions reachable only from an initializer are exempt (the sanctioned
install point); parent-side code (never submitted to the pool) is out of
closure and untouched.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, List, Optional, Set, Tuple

from ..base import ProjectRule, Violation
from ..callgraph import FunctionInfo, ModuleInfo, Project

#: Method names that mutate a list/dict/set in place.
MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
}

#: Constructors whose module-level result is a mutable container.
_CONTAINER_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict",
                    "Counter", "deque"}

_CONTAINER_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                       ast.DictComp, ast.SetComp)


def _module_globals(module: ModuleInfo) -> Tuple[Set[str], Set[str]]:
    """(all module-level names, the mutable-container subset)."""
    names: Set[str] = set()
    containers: Set[str] = set()
    for node in module.tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            names.add(target.id)
            if value is None:
                continue
            if isinstance(value, _CONTAINER_LITERALS):
                containers.add(target.id)
            elif (isinstance(value, ast.Call)
                  and isinstance(value.func, ast.Name)
                  and value.func.id in _CONTAINER_CALLS):
                containers.add(target.id)
    return names, containers


def _resolve_function_ref(project: Project, module: ModuleInfo,
                          node: ast.AST) -> Optional[FunctionInfo]:
    """Resolve a bare function reference (not a call) like ``_init_worker``."""
    if isinstance(node, ast.Name):
        if node.id in module.functions:
            return module.functions[node.id]
        if node.id in module.imports:
            return project._resolve_dotted(module.imports[node.id])
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            dotted = ".".join(reversed(parts))
            head = dotted.split(".")[0]
            if head in module.imports:
                dotted = module.imports[head] + dotted[len(head):]
            return project._resolve_dotted(dotted)
    return None


def _pool_entries(project: Project) -> Tuple[Set[str], Set[str]]:
    """(initializer entry qualnames, task entry qualnames)."""
    initializers: Set[str] = set()
    tasks: Set[str] = set()
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
            if name in ("ProcessPoolExecutor", "Pool"):
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        target = _resolve_function_ref(project, module,
                                                       keyword.value)
                        if target is not None:
                            initializers.add(target.qualname)
            elif name in ("submit", "apply_async") and node.args:
                target = _resolve_function_ref(project, module, node.args[0])
                if target is not None:
                    tasks.add(target.qualname)
            elif name == "map" and isinstance(func, ast.Attribute) \
                    and node.args:
                # ``pool.map(f, items)`` — only when the receiver is
                # plausibly an executor, to keep builtin map() out.
                receiver = func.value
                receiver_name = (receiver.id if isinstance(receiver, ast.Name)
                                 else receiver.attr
                                 if isinstance(receiver, ast.Attribute)
                                 else "")
                if any(token in receiver_name.lower()
                       for token in ("pool", "executor")):
                    target = _resolve_function_ref(project, module,
                                                   node.args[0])
                    if target is not None:
                        tasks.add(target.qualname)
    return initializers, tasks


class PoolSharedStateRule(ProjectRule):
    rule_id = "DMW011"
    description = ("module global mutated on the process-pool worker "
                   "task path")
    invariant = ("a pool shard is a pure function of (PoolSpec, task): "
                 "workers are recycled, so module state written by one "
                 "task leaks into whichever task lands on the same "
                 "worker next — results must return via ShardResult, "
                 "per-process setup via the pool initializer")
    include_parts = ("parallel.py", "parallel", "crypto", "core", "network")

    def _function_writes(self, function: FunctionInfo, module: ModuleInfo,
                         project: Project
                         ) -> Iterator[Tuple[ast.AST, str, str]]:
        """Yield (node, global name, verb) for shared-state writes."""
        _names, containers = _module_globals(module)
        declared_global: Set[str] = set()
        for node in ast.walk(function.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(function.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id in declared_global):
                        yield node, target.id, "rebinds"
                    elif (isinstance(target, ast.Subscript)
                          and isinstance(target.value, ast.Name)
                          and target.value.id in containers
                          and target.value.id not in
                          self._local_shadows(function)):
                        yield node, target.value.id, "writes into"
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id in module.imports):
                        owner = project.modules.get(
                            module.imports[target.value.id])
                        if owner is not None:
                            owner_names, _ = _module_globals(owner)
                            if target.attr in owner_names:
                                yield (node, "%s.%s" % (target.value.id,
                                                        target.attr),
                                       "rebinds")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATOR_METHODS:
                receiver = node.func.value
                if (isinstance(receiver, ast.Name)
                        and receiver.id in containers
                        and receiver.id not in
                        self._local_shadows(function)):
                    yield node, receiver.id, "mutates"
                elif (isinstance(receiver, ast.Attribute)
                      and isinstance(receiver.value, ast.Name)
                      and receiver.value.id in module.imports):
                    owner = project.modules.get(
                        module.imports[receiver.value.id])
                    if owner is not None:
                        _, owner_containers = _module_globals(owner)
                        if receiver.attr in owner_containers:
                            yield (node, "%s.%s" % (receiver.value.id,
                                                    receiver.attr),
                                   "mutates")

    @staticmethod
    def _local_shadows(function: FunctionInfo) -> Set[str]:
        """Names rebound locally (parameters or plain assignments),
        which therefore do not refer to the module global."""
        shadows: Set[str] = set(function.param_names)
        globals_declared: Set[str] = set()
        for node in ast.walk(function.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        shadows.add(target.id)
            elif isinstance(node, (ast.For,)):
                if isinstance(node.target, ast.Name):
                    shadows.add(node.target.id)
        return shadows - globals_declared

    def check_project(self, project: Any) -> Iterator[Violation]:
        graph = project.callgraph
        initializers, task_entries = _pool_entries(project.project)
        if not task_entries:
            return
        task_closure = graph.reachable(task_entries)
        init_closure = graph.reachable(initializers)
        sanctioned = init_closure - task_closure
        for qualname in sorted(task_closure):
            if qualname in sanctioned or qualname in initializers:
                continue
            function = project.project.functions.get(qualname)
            if function is None:
                continue
            context = project.context_for(function.path)
            if context is None or not self.applies_to(context):
                continue
            module = project.project.modules.get(function.module)
            if module is None:
                continue
            entry_label = ", ".join(sorted(
                entry for entry in task_entries)[:2])
            for node, name, verb in self._function_writes(
                    function, module, project.project):
                yield self.violation(
                    context, node,
                    "`%s` %s module global `%s` and is reachable from "
                    "pool worker entry `%s` — shard state must flow "
                    "through ShardResult, per-process setup through the "
                    "pool initializer" % (function.qualname, verb, name,
                                          entry_label))
