"""DMW000 — strict annotation coverage for the typed packages (opt-in).

The repo ships a ``py.typed`` marker and promises ``mypy --strict``
cleanliness on ``crypto/``, ``core/``, and ``network/``.  mypy itself runs
in CI (it is not vendored here); this opt-in rule gives a fast local
approximation so annotation regressions are caught before CI: every
function parameter (except ``self``/``cls``) and every return type must be
annotated, and annotations must not use bare generics (``tuple`` for
``Tuple[int, ...]``), which ``--strict`` rejects as implicit ``Any``.

Enable with ``dmwlint --check-annotations`` or ``--select DMW000``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..base import FileContext, Rule, Violation

BARE_GENERICS = {
    "tuple", "dict", "list", "set", "frozenset",
    "Tuple", "Dict", "List", "Set", "FrozenSet",
}


class AnnotationCoverageRule(Rule):
    rule_id = "DMW000"
    description = "missing or bare-generic annotation in a typed package"
    invariant = ("mypy --strict cleanliness on crypto/core/network: every "
                 "signature fully annotated, no bare generics")
    include_parts = ("crypto", "core", "network")
    default_enabled = False

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_signature(context, node)

    def _check_signature(self, context: FileContext,
                         function: ast.AST) -> Iterator[Violation]:
        args = function.args  # type: ignore[attr-defined]
        name = function.name  # type: ignore[attr-defined]
        positional: List[ast.arg] = args.posonlyargs + args.args
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                yield self.violation(
                    context, arg,
                    "parameter `%s` of `%s` lacks a type annotation"
                    % (arg.arg, name))
            else:
                yield from self._check_annotation(context, arg.annotation,
                                                 name)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                yield self.violation(
                    context, arg,
                    "keyword-only parameter `%s` of `%s` lacks a type "
                    "annotation" % (arg.arg, name))
            else:
                yield from self._check_annotation(context, arg.annotation,
                                                 name)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                yield self.violation(
                    context, vararg,
                    "`*%s` of `%s` lacks a type annotation"
                    % (vararg.arg, name))
        if function.returns is None:  # type: ignore[attr-defined]
            yield self.violation(
                context, function,
                "function `%s` lacks a return annotation" % name)
        else:
            yield from self._check_annotation(
                context, function.returns, name)  # type: ignore[attr-defined]

    def _check_annotation(self, context: FileContext, annotation: ast.AST,
                          function_name: str) -> Iterator[Violation]:
        """Flag bare generics used directly as an annotation node."""
        # Only the annotation root and Subscript roots need checking: a
        # bare `tuple` *inside* a Subscript (e.g. Tuple[tuple, int]) is
        # still caught because ast.walk visits it as a Name.
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id in BARE_GENERICS:
                parent_is_subscript_value = False
                for candidate in ast.walk(annotation):
                    if (isinstance(candidate, ast.Subscript)
                            and candidate.value is node):
                        parent_is_subscript_value = True
                        break
                if not parent_is_subscript_value:
                    yield self.violation(
                        context, node,
                        "bare generic `%s` in annotation of `%s`; "
                        "parameterize it (e.g. Tuple[int, ...])"
                        % (node.id, function_name))
