"""Rule registry for dmwlint.

``DEFAULT_RULES`` are the domain rules that run by default;
``ALL_RULES`` additionally contains opt-in rules (``DMW000`` strict
annotation coverage, enabled via ``--check-annotations`` or ``--select``).
``RELAXED_RULES`` is the reduced set applied to benchmarks/ and
examples/ when the CLI widens its default scope: those trees drive the
protocol from outside, so only the rules whose invariants hold anywhere
(seeded randomness DMW001, exact arithmetic DMW006) apply there.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..base import Rule
from .dmw000_annotations import AnnotationCoverageRule
from .dmw001_global_random import GlobalRandomRule
from .dmw002_raw_pow import RawPowOnBaseRule
from .dmw003_unreduced_field import UnreducedFieldArithmeticRule
from .dmw004_secret_taint import SecretTaintRule
from .dmw005_post_send_mutation import PostSendMutationRule
from .dmw006_float_in_crypto import FloatInCryptoRule
from .dmw007_backend_bypass import BackendBypassRule
from .dmw008_agent_network_access import AgentNetworkAccessRule
from .dmw009_protocol_flow import ProtocolFlowRule
from .dmw010_async_blocking import AsyncBlockingRule
from .dmw011_pool_globals import PoolSharedStateRule

RULE_CLASSES: List[Type[Rule]] = [
    AnnotationCoverageRule,
    GlobalRandomRule,
    RawPowOnBaseRule,
    UnreducedFieldArithmeticRule,
    SecretTaintRule,
    PostSendMutationRule,
    FloatInCryptoRule,
    BackendBypassRule,
    AgentNetworkAccessRule,
    ProtocolFlowRule,
    AsyncBlockingRule,
    PoolSharedStateRule,
]

ALL_RULES: List[Rule] = [cls() for cls in RULE_CLASSES]

DEFAULT_RULES: List[Rule] = [r for r in ALL_RULES if r.default_enabled]

#: Rules safe on example/benchmark code (no protocol-internal scoping).
RELAXED_RULE_IDS = ("DMW001", "DMW006")

RELAXED_RULES: List[Rule] = [r for r in ALL_RULES
                             if r.rule_id in RELAXED_RULE_IDS]

_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}


def rule_by_id(rule_id: str) -> Optional[Rule]:
    """Look up a rule instance by its canonical id (``DMW003``)."""
    return _BY_ID.get(rule_id.upper())


__all__ = [
    "ALL_RULES",
    "DEFAULT_RULES",
    "RELAXED_RULES",
    "RELAXED_RULE_IDS",
    "RULE_CLASSES",
    "rule_by_id",
]
