"""DMW001 — global ``random`` use breaks transcript determinism.

Protocol invariant (paper §4, reproduction DESIGN.md): a DMW run seeded
with the same master seed must produce a *bit-identical* transcript, or
checkpoint/resume and the auditor's replay both break.  Any call to the
module-level ``random`` functions (which share hidden global state), any
*unseeded* ``random.Random()`` instance, and any ``random.seed(...)`` of
the global generator introduces nondeterminism that survives seeding.

Sanctioned idiom: accept an injected per-run ``random.Random`` (the
``rng`` parameter convention used throughout ``crypto/`` and
``network/``), or derive one deterministically (``random.Random(seed)``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..base import FileContext, Rule, Violation

#: Module-level functions of ``random`` that mutate/read the hidden
#: global Mersenne Twister state.
GLOBAL_RANDOM_FUNCS: Set[str] = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}


class GlobalRandomRule(Rule):
    rule_id = "DMW001"
    description = "global `random` use in crypto/protocol paths"
    invariant = ("seeded runs must be bit-identical (transcript replay, "
                 "checkpoint/resume, audit): randomness must flow through "
                 "an injected per-run random.Random")

    def check(self, context: FileContext) -> Iterator[Violation]:
        imported_funcs = self._from_imports(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # random.<fn>(...) on the module's global state.
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr in GLOBAL_RANDOM_FUNCS):
                yield self.violation(
                    context, node,
                    "call to global `random.%s()`; inject a per-run "
                    "random.Random instead" % func.attr)
            # Unseeded random.Random() — fresh OS-entropy stream.
            elif (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr in ("Random", "SystemRandom")
                    and not node.args and not node.keywords):
                yield self.violation(
                    context, node,
                    "unseeded `random.%s()`; pass an explicit seed or "
                    "accept an injected rng" % func.attr)
            # Bare calls to `from random import randrange`-style names.
            elif (isinstance(func, ast.Name)
                    and func.id in imported_funcs):
                yield self.violation(
                    context, node,
                    "call to `%s` imported from the random module; inject "
                    "a per-run random.Random instead" % func.id)

    @staticmethod
    def _from_imports(tree: ast.Module) -> Set[str]:
        """Names bound by ``from random import <global fn>``."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in GLOBAL_RANDOM_FUNCS:
                        names.add(alias.asname or alias.name)
        return names
