"""DMW010 — blocking calls reachable inside ``async def`` bodies.

The asyncio socket transport (``repro.network.asyncio_transport``) keeps
every participant's traffic on one event loop; the round barrier is an
ack-counted gather with a wall-clock bound.  A *blocking* call on that
loop — ``time.sleep``, synchronous socket or file I/O, ``subprocess`` —
stalls every agent at once: the simulated clock keeps its schedule but
real delivery does not, the ack barrier times out spuriously, and the
transport's carefully ported timeout/retry semantics (bit-identical to
the in-process simulator) silently drift.  Inside coroutines, waiting
must be ``await``-shaped (``asyncio.sleep``, reader/writer calls).

The rule flags a blocking call either directly inside an ``async def``
body or one call-graph hop away: a synchronous helper that itself makes
a blocking call, invoked from a coroutine (the project call graph
resolves the helper; unresolvable calls are not guessed at).  Nested
``def``/``async def`` bodies are analyzed on their own, not attributed
to the enclosing coroutine.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator, List, Optional, Tuple

from ..base import ProjectRule, Violation, dotted_name
from ..callgraph import FunctionInfo

#: Exact dotted names that block the event loop.
BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "socket.create_connection",
    "urllib.request.urlopen",
}

#: Dotted-name prefixes that block (any member of the module).
BLOCKING_PREFIXES = ("subprocess.", "requests.")

#: Bare built-in calls that perform synchronous file I/O.
BLOCKING_BUILTINS = {"open", "input"}


def _blocking_description(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        if call.func.id in BLOCKING_BUILTINS:
            return "`%s()`" % call.func.id
        return None
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    if dotted in BLOCKING_CALLS:
        return "`%s`" % dotted
    if any(dotted.startswith(prefix) for prefix in BLOCKING_PREFIXES):
        return "`%s`" % dotted
    return None


def _own_body_calls(function: FunctionInfo) -> Iterator[ast.Call]:
    """Call nodes in the function body, excluding nested defs."""
    stack: List[ast.AST] = list(
        ast.iter_child_nodes(function.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _direct_blocking(function: FunctionInfo
                     ) -> List[Tuple[ast.Call, str]]:
    found: List[Tuple[ast.Call, str]] = []
    for call in _own_body_calls(function):
        description = _blocking_description(call)
        if description is not None:
            found.append((call, description))
    return found


class AsyncBlockingRule(ProjectRule):
    rule_id = "DMW010"
    description = ("blocking call reachable inside an async def body "
                   "(stalls the event loop)")
    invariant = ("the asyncio transport's round barrier and timeout "
                 "semantics mirror the in-process simulator only while "
                 "the event loop runs freely; a blocking call inside a "
                 "coroutine stalls every agent and desynchronizes the "
                 "ack barrier from the simulated clock")
    include_parts = ("network",)

    def check_project(self, project: Any) -> Iterator[Violation]:
        graph = project.callgraph
        for function in project.project.iter_functions():
            if not function.is_async:
                continue
            context = project.context_for(function.path)
            if context is None or not self.applies_to(context):
                continue
            for call, description in _direct_blocking(function):
                yield self.violation(
                    context, call,
                    "blocking call %s inside `async def %s` — use the "
                    "awaitable equivalent (e.g. asyncio.sleep, stream "
                    "I/O)" % (description, function.name))
            # One hop: a sync helper that blocks, called from this
            # coroutine.
            for edge in graph.callees(function.qualname):
                callee = project.project.functions.get(edge.callee)
                if callee is None or callee.is_async:
                    continue
                blocking = _direct_blocking(callee)
                if not blocking:
                    continue
                _node, description = blocking[0]
                yield self.violation(
                    context, edge.node,
                    "`async def %s` calls helper `%s`, which makes "
                    "blocking call %s — the helper blocks the event "
                    "loop one hop away" % (function.name, callee.qualname,
                                           description))
