"""DMW007 — arithmetic that bypasses the pluggable backend layer.

Backend invariant (``docs/PERFORMANCE.md``, "Arithmetic backends"): every
modular exponentiation and inversion in the counted protocol path must
route through :mod:`repro.crypto.backend` (directly, or via ``modular``/
``fastexp``, which wrap it).  A stray three-argument ``pow(...)`` — or a
direct ``gmpy2`` import/call — executes on a hard-coded engine, so the
``python`` and ``gmpy2`` backends would no longer be interchangeable and
the bit-identical-across-backends guarantee of ``check_regression.py``'s
backend gate could silently rot.

Sanctioned idiom: ``backend.ACTIVE.powmod(...)`` / ``backend.ACTIVE.invert``
(or the counted ``mod_exp``/``mod_inv`` wrappers).  Exempt:

* ``backend.py`` — the module that legitimately owns the engines;
* ``primes.py`` — uncounted setup-time primality testing that runs before
  any backend selection matters (Miller–Rabin witnesses, generator search).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import FileContext, Rule, Violation, dotted_name


class BackendBypassRule(Rule):
    rule_id = "DMW007"
    description = ("direct gmpy2/pow() call bypasses the pluggable "
                   "arithmetic backend")
    invariant = ("python and gmpy2 backends stay interchangeable (identical "
                 "outcomes, transcripts, counters) only while all modular "
                 "arithmetic routes through repro.crypto.backend")
    include_parts = ("crypto", "core", "auctions")
    exempt_names = ("backend.py", "primes.py")

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "gmpy2":
                        yield self.violation(
                            context, node,
                            "direct `import gmpy2`; only "
                            "repro.crypto.backend may construct the gmpy2 "
                            "engine (select it via select_backend)")
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "gmpy2":
                    yield self.violation(
                        context, node,
                        "direct `from gmpy2 import ...`; only "
                        "repro.crypto.backend may construct the gmpy2 "
                        "engine (select it via select_backend)")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[0] == "gmpy2":
                    yield self.violation(
                        context, node,
                        "direct `%s(...)` call; route through "
                        "backend.ACTIVE so the engine stays pluggable"
                        % name)
                elif (isinstance(node.func, ast.Name)
                        and node.func.id == "pow" and len(node.args) == 3):
                    yield self.violation(
                        context, node,
                        "raw three-argument pow() hard-codes the CPython "
                        "engine; use backend.ACTIVE.powmod (or the counted "
                        "mod_exp wrapper)")
