"""DMW003 — field arithmetic without a ``% p`` reduction.

Soundness invariant (paper eq. (3)–(7)): shares, polynomial coefficients,
Lagrange weights, and commitment values are elements of ``Z_q``/``Z_p``.
Python integers never overflow, so an un-reduced ``a * b`` produces a
*numerically* plausible value that is simply outside the field — degree
resolution and commitment verification then fail on honest data, which the
protocol misreads as agent misbehavior.  Every ``+``/``-``/``*`` whose
operands are field elements must be reduced in the enclosing expression.

The rule fires on a binary ``+``/``-``/``*`` where an operand's name marks
it as a field element (contains ``share``, ``coeff``, ``commitment``,
``lagrange``, ``residue``, or ``_mod_p``/``_mod_q``) and no enclosing
expression applies ``%`` or routes through the metered ``mod_*`` helpers.

Sanctioned idioms::

    value = (share_a + share_b) % q
    value = mod_mul(share_a, share_b, p, counter)

Index/length arithmetic is excluded by construction: only Name/Attribute/
Subscript operands are inspected, and ``*_count``/``*_index``/``num_*``
names are ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..base import FileContext, Rule, Violation

#: Substrings that mark a name as denoting a field element.
FIELD_TOKENS = ("share", "coeff", "commitment", "lagrange", "residue",
                "_mod_p", "_mod_q")

#: Name patterns that are *not* field elements even when a token matches
#: (counters, indices, sizes riding along in the same identifiers).
EXEMPT_SUFFIXES = ("_count", "_counts", "_index", "_indices", "_len",
                   "_size", "_bits", "_rank")
EXEMPT_PREFIXES = ("num_", "n_", "count_")

#: Calls that perform their own reduction.
REDUCING_CALLS: Set[str] = {
    "mod_add", "mod_sub", "mod_mul", "mod_div", "mod_exp", "mod_inv",
    "multi_exp", "batch_mod_inv", "interpolate_at_zero",
}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult)


def _operand_field_name(node: ast.AST) -> Optional[str]:
    """Field-element name of an operand, or None if it is not one."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    lowered = name.lower()
    if any(lowered.endswith(s) for s in EXEMPT_SUFFIXES):
        return None
    if any(lowered.startswith(p) for p in EXEMPT_PREFIXES):
        return None
    if any(token in lowered for token in FIELD_TOKENS):
        return name
    return None


class UnreducedFieldArithmeticRule(Rule):
    rule_id = "DMW003"
    description = "field arithmetic without % p reduction in the expression"
    invariant = ("all arithmetic on shares/coefficients/commitments must "
                 "stay in Z_p/Z_q (eq. (3)-(7)); un-reduced values make "
                 "honest data fail verification")
    include_parts = ("crypto", "core", "auctions")

    def check(self, context: FileContext) -> Iterator[Violation]:
        reduced = self._reduced_nodes(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, _ARITH_OPS):
                continue
            if id(node) in reduced:
                continue
            name = (_operand_field_name(node.left)
                    or _operand_field_name(node.right))
            if name is None:
                continue
            op_symbol = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*"}[
                type(node.op)]
            yield self.violation(
                context, node,
                "`%s` involved in `%s` without a %% reduction in the "
                "enclosing expression; reduce mod p/q or use the mod_* "
                "helpers" % (name, op_symbol))

    @staticmethod
    def _reduced_nodes(tree: ast.Module) -> Set[int]:
        """ids of nodes that sit under a ``%`` or a reducing call."""
        reduced: Set[int] = set()

        def mark(node: ast.AST) -> None:
            for child in ast.walk(node):
                reduced.add(id(child))

        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                # Everything under `expr % modulus` is considered reduced
                # (the left side is what gets reduced; the right side is
                # the modulus expression itself).
                mark(node.left)
                mark(node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(node.op,
                                                               ast.Mod):
                mark(node.value)
                mark(node.target)
            elif isinstance(node, ast.Call):
                func = node.func
                func_name = None
                if isinstance(func, ast.Name):
                    func_name = func.id
                elif isinstance(func, ast.Attribute):
                    func_name = func.attr
                if func_name in REDUCING_CALLS:
                    for arg in node.args:
                        mark(arg)
        return reduced
