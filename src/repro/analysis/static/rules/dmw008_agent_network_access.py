"""DMW008 — agent or machine code reaching the network object directly.

Transport invariant (``docs/TRANSPORTS.md``): all mechanism logic lives
in the agents, all wire access lives in the :class:`~repro.core.machine
.AgentMachine` send/receive steps — and those steps reach the wire only
through the :class:`~repro.network.transport.Transport` handed to them
by the driver.  An agent (or a machine act-step) that calls
``network.send``/``publish``/``deliver``/``receive`` directly bypasses
the transport seam: it would work on the in-process simulator and
silently break (or cheat the failure model of) the socket transport,
and it couples mechanism code to one substrate, which is exactly what
the pluggable-transport refactor removed.

The rule scans ``core/agent.py``, ``core/deviant.py``, and
``core/machine.py`` for calls whose receiver chain goes through a name
or attribute called ``network`` (``self.network.send(...)``,
``network.deliver()``, ``protocol.network.receive(...)``) and flags any
transmission-primitive call on it.  Machines are handed a ``transport``
parameter; that is the sanctioned access path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import FileContext, Rule, Violation

#: The transmission primitives of the network/transport surface.
NETWORK_METHODS = {"send", "publish", "deliver", "receive", "broadcast",
                   "peek", "published", "step"}

#: Names that identify the network object in a receiver chain.
NETWORK_NAMES = {"network", "net"}


def _chain_contains_network(node: ast.AST) -> bool:
    """True if a Name/Attribute receiver chain mentions the network."""
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            if current.attr in NETWORK_NAMES:
                return True
            current = current.value
        elif isinstance(current, ast.Name):
            return current.id in NETWORK_NAMES
        else:
            return False


class AgentNetworkAccessRule(Rule):
    rule_id = "DMW008"
    description = "agent/machine code calling the network object directly"
    invariant = ("agents and machine steps reach the wire only through "
                 "the Transport handed to them; direct network calls "
                 "bypass the pluggable-transport seam and break on "
                 "socket transports")
    include_parts = ("core",)

    #: Only the agent/machine layer is in scope: the driver and the
    #: in-process mechanisms (protocol.py, naive.py) legitimately own
    #: their network/transport objects.
    _scoped_names = ("agent.py", "deviant.py", "machine.py")

    def applies_to(self, context: FileContext) -> bool:
        return (super().applies_to(context)
                and context.filename in self._scoped_names)

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in NETWORK_METHODS:
                continue
            if _chain_contains_network(func.value):
                yield self.violation(
                    context, node,
                    "direct network access `%s` — route through the "
                    "transport parameter instead" % func.attr)
