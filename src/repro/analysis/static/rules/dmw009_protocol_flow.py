"""DMW009 — protocol-flow conformance against the declared round schedule.

Theorem 11's communication counts assume a *fixed* per-round message
schedule: Phase II bidding (commitments + private share bundles), then
step III.2 aggregates, III.3 disclosure (and winner claims), III.4
second price, and finally the Phase IV payment claims — with complaint
sub-rounds only between phases and only under attack.  The
:class:`~repro.core.machine.AgentMachine` / driver split (PR 8) makes
that schedule mechanical: machines own the per-phase ``send_*`` steps
and the message kinds they emit, drivers own the phase order.  This rule
pins both statically:

* **machine conformance** — inside a class implementing the schedule's
  send/receive steps, every ``transport.publish(...)`` /
  ``transport.send(...)`` / ``transport.receive(...)`` with a constant
  message kind must use exactly the kinds declared for that step's
  phase.  Publishing a later phase's kind early (equivocation-shaped
  reordering) or inventing an undeclared kind (an extra message per
  phase, which silently breaks the Theorem 11 counts) is a violation;
* **driver flow** — in every function, the sequence of schedule steps
  (spliced through resolved local helper calls on the project call
  graph) must be phase-monotone: a ``send_aggregates`` before the
  ``send_bidding`` of the same flow is a violation.

Complaint kinds (``*_complaint``) are conditional sub-rounds and are
exempt from ordering; kinds that only appear behind a variable (the
generic complaint-round helper) are out of static reach and ignored.
The schedule spec below *is* the declaration — changing the protocol's
wire schedule must come with a matching edit here, which is exactly the
review point the rule exists to force.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from ..base import FileContext, ProjectRule, Violation
from ..callgraph import FunctionInfo

#: The declared round schedule: (phase name, machine steps, message kinds).
ROUND_SCHEDULE: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...] = (
    ("bidding", ("send_bidding", "recv_bidding"),
     ("commitments", "share_bundle")),
    ("aggregates", ("send_aggregates",), ("lambda_psi",)),
    ("disclosure", ("send_disclosure", "collect_claims"),
     ("f_disclosure", "winner_claim")),
    ("second_price", ("send_second_price",), ("second_price",)),
    ("payment", ("send_payment_claim",), ("payment_claim",)),
)

STEP_TO_PHASE: Dict[str, int] = {}
KIND_TO_PHASE: Dict[str, int] = {}
PHASE_NAMES: List[str] = []
for _index, (_phase, _steps, _kinds) in enumerate(ROUND_SCHEDULE):
    PHASE_NAMES.append(_phase)
    for _step in _steps:
        STEP_TO_PHASE[_step] = _index
    for _kind in _kinds:
        KIND_TO_PHASE[_kind] = _index

#: Transport primitives and the argument position of their kind operand
#: (``publish(sender, kind, ...)``, ``send(sender, recipient, kind, ...)``,
#: ``receive(recipient, kind)``).
_KIND_ARG_POSITION = {"publish": 1, "send": 2, "receive": 1}

#: How many schedule steps a class must implement to count as a machine.
_MACHINE_STEP_THRESHOLD = 2


def _constant_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _call_attr(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _kind_operand(call: ast.Call) -> Optional[str]:
    """The constant message kind of a transport primitive call, if any."""
    attr = _call_attr(call)
    position = _KIND_ARG_POSITION.get(attr or "")
    if position is None or len(call.args) <= position:
        return None
    return _constant_str(call.args[position])


def _is_complaint_kind(kind: str) -> bool:
    return kind.endswith("_complaint")


def _ordered_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Call nodes in source order, not descending into nested defs."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        if isinstance(child, ast.Call):
            yield child
        yield from _ordered_calls(child)


class _Event:
    """One schedule step observed in a flow, at a top-level call site."""

    __slots__ = ("phase", "label", "node")

    def __init__(self, phase: int, label: str, node: ast.Call) -> None:
        self.phase = phase
        self.label = label
        self.node = node


class _Reset:
    """A round boundary: branch alternative or loop entry/exit.

    Mutually exclusive ``if``/``elif``/``else`` branches must not
    order-constrain each other, and a loop body restarts the schedule
    each iteration (a multi-auction driver runs bidding again after the
    previous auction's resolution) — the monotonicity check resets its
    running maximum at each marker.
    """

    __slots__ = ()


_RESET = _Reset()


class ProtocolFlowRule(ProjectRule):
    rule_id = "DMW009"
    description = ("protocol step or message kind out of the declared "
                   "round schedule")
    invariant = ("the per-round message schedule is fixed (Theorem 11 "
                 "communication counts): bidding -> aggregates -> "
                 "disclosure -> second price -> payment, with exactly the "
                 "declared message kinds per phase")
    include_parts = ("core", "network")

    # -- event extraction ---------------------------------------------------
    def _direct_events(self, call: ast.Call) -> Optional[_Event]:
        attr = _call_attr(call)
        if attr in STEP_TO_PHASE:
            return _Event(STEP_TO_PHASE[attr], "step `%s`" % attr, call)
        if attr == "collect_published" and call.args:
            kind = _constant_str(call.args[0])
            if kind is not None and kind in KIND_TO_PHASE:
                return _Event(KIND_TO_PHASE[kind],
                              "collect of kind `%s`" % kind, call)
            return None
        kind = _kind_operand(call)
        if kind is not None and kind in KIND_TO_PHASE:
            return _Event(KIND_TO_PHASE[kind], "kind `%s`" % kind, call)
        return None

    def _flow_events(self, project: Any, function: FunctionInfo,
                     memo: Dict[str, List[object]],
                     active: Set[str]) -> List[object]:
        """Event stream of one function: :class:`_Event` instances and
        :data:`_RESET` markers, splicing resolved local helper calls."""
        graph = project.callgraph
        resolved = {id(edge.node): edge.callee
                    for edge in graph.callees(function.qualname)}
        items: List[object] = []
        self._collect_statements(project, function.node.body, resolved,
                                 memo, active, items)
        return items

    def _collect_statements(self, project: Any, statements: List[ast.stmt],
                            resolved: Dict[int, str],
                            memo: Dict[str, List[object]],
                            active: Set[str],
                            items: List[object]) -> None:
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if isinstance(statement, ast.If):
                self._collect_calls(project, statement.test, resolved,
                                    memo, active, items)
                for branch in (statement.body, statement.orelse):
                    items.append(_RESET)
                    self._collect_statements(project, branch, resolved,
                                             memo, active, items)
                items.append(_RESET)
            elif isinstance(statement, (ast.For, ast.AsyncFor)):
                self._collect_calls(project, statement.iter, resolved,
                                    memo, active, items)
                for branch in (statement.body, statement.orelse):
                    items.append(_RESET)
                    self._collect_statements(project, branch, resolved,
                                             memo, active, items)
                items.append(_RESET)
            elif isinstance(statement, ast.While):
                self._collect_calls(project, statement.test, resolved,
                                    memo, active, items)
                for branch in (statement.body, statement.orelse):
                    items.append(_RESET)
                    self._collect_statements(project, branch, resolved,
                                             memo, active, items)
                items.append(_RESET)
            elif isinstance(statement, ast.Try):
                branches = ([statement.body]
                            + [handler.body
                               for handler in statement.handlers]
                            + [statement.orelse, statement.finalbody])
                for branch in branches:
                    items.append(_RESET)
                    self._collect_statements(project, branch, resolved,
                                             memo, active, items)
                items.append(_RESET)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                # A with block is straight-line: context expressions
                # first, then the body at the same schedule position.
                for item in statement.items:
                    self._collect_calls(project, item.context_expr,
                                        resolved, memo, active, items)
                self._collect_statements(project, statement.body, resolved,
                                         memo, active, items)
            else:
                self._collect_calls(project, statement, resolved, memo,
                                    active, items)

    def _collect_calls(self, project: Any, node: ast.AST,
                       resolved: Dict[int, str],
                       memo: Dict[str, List[object]],
                       active: Set[str],
                       items: List[object]) -> None:
        for call in _ordered_calls(node):
            self._collect_one_call(project, call, resolved, memo, active,
                                   items)
        if isinstance(node, ast.Call):
            self._collect_one_call(project, node, resolved, memo, active,
                                   items)

    def _collect_one_call(self, project: Any, call: ast.Call,
                          resolved: Dict[int, str],
                          memo: Dict[str, List[object]],
                          active: Set[str],
                          items: List[object]) -> None:
        direct = self._direct_events(call)
        if direct is not None:
            items.append(direct)
            return
        callee = resolved.get(id(call))
        if callee is None:
            return
        for item in self._summary_events(project, callee, memo, active):
            if item is _RESET:
                items.append(_RESET)
            else:
                phase, label = item  # type: ignore[misc]
                items.append(_Event(phase, label, call))

    def _summary_events(self, project: Any, qualname: str,
                        memo: Dict[str, List[object]],
                        active: Set[str]) -> List[object]:
        if qualname in memo:
            return memo[qualname]
        if qualname in active:      # call cycle: contribute nothing
            return []
        function = project.project.functions.get(qualname)
        if function is None:
            return []
        active.add(qualname)
        try:
            events = self._flow_events(project, function, memo, active)
        finally:
            active.discard(qualname)
        summary: List[object] = []
        for item in events:
            if item is _RESET:
                summary.append(_RESET)
            else:
                event = item  # type: ignore[assignment]
                summary.append((event.phase,
                                "%s (via `%s`)" % (event.label, qualname)))
        memo[qualname] = summary
        return summary

    # -- checks -------------------------------------------------------------
    def _check_machine_class(self, context: FileContext,
                             node: ast.ClassDef) -> Iterator[Violation]:
        step_methods = [child for child in node.body
                        if isinstance(child, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))
                        and child.name in STEP_TO_PHASE]
        if len(step_methods) < _MACHINE_STEP_THRESHOLD:
            return
        for method in step_methods:
            phase = STEP_TO_PHASE[method.name]
            allowed = set(ROUND_SCHEDULE[phase][2])
            for call in ast.walk(method):
                if not isinstance(call, ast.Call):
                    continue
                attr = _call_attr(call)
                if attr not in _KIND_ARG_POSITION:
                    continue
                kind = _kind_operand(call)
                if kind is None or _is_complaint_kind(kind):
                    continue
                if kind in allowed:
                    continue
                if kind in KIND_TO_PHASE:
                    yield self.violation(
                        context, call,
                        "step `%s` (phase %s) emits kind `%s` declared for "
                        "phase %s — phase reordering breaks the Theorem 11 "
                        "schedule" % (method.name, PHASE_NAMES[phase], kind,
                                      PHASE_NAMES[KIND_TO_PHASE[kind]]))
                else:
                    yield self.violation(
                        context, call,
                        "step `%s` emits kind `%s` which is not in the "
                        "declared round schedule — an extra message kind "
                        "per phase changes the counted communication"
                        % (method.name, kind))

    def _check_driver_flow(self, project: Any, context: FileContext,
                           function: FunctionInfo,
                           memo: Dict[str, List[object]]
                           ) -> Iterator[Violation]:
        items = self._flow_events(project, function, memo, set())
        max_phase = -1
        max_label = ""
        max_node: Optional[ast.Call] = None
        for item in items:
            if item is _RESET:
                max_phase = -1
                max_node = None
                continue
            event = item  # type: ignore[assignment]
            if event.phase < max_phase and event.node is not max_node:
                yield self.violation(
                    context, event.node,
                    "%s (phase %s) runs after %s (phase %s) — protocol "
                    "flow violates the declared round-schedule order"
                    % (event.label, PHASE_NAMES[event.phase], max_label,
                       PHASE_NAMES[max_phase]))
            if event.phase > max_phase:
                max_phase = event.phase
                max_label = event.label
                max_node = event.node

    def check_project(self, project: Any) -> Iterator[Violation]:
        memo: Dict[str, List[object]] = {}
        for context in project.contexts:
            if not self.applies_to(context):
                continue
            for node in context.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._check_machine_class(context, node)
        for function in project.project.iter_functions():
            context = project.context_for(function.path)
            if context is None or not self.applies_to(context):
                continue
            yield from self._check_driver_flow(project, context, function,
                                               memo)
