"""DMW002 — raw ``pow`` on commitment bases bypasses the fastexp tables.

Performance invariant (Theorem 12 / PERFORMANCE.md): every exponentiation
of the published commitment bases ``z1``/``z2`` (and generator aliases)
must go through :mod:`repro.crypto.fastexp`'s cached fixed-base windowed
tables — both for the 3.3–3.8x speedup and because the
:class:`~repro.crypto.fastexp.PublicValueCache` replay-on-hit accounting
only stays exact when *all* base exponentiations are routed through it.
A stray ``pow(z1, e, p)`` silently recomputes and skews the measured
operation counts that Table 1 reproduces.

Sanctioned idiom: ``group.power_z1(e)`` / ``fixed_base_table(z1, p).pow(e)``
/ ``mod_exp`` (which meters the cost model).  The implementing modules
(``fastexp.py``, ``modular.py``, ``groups.py``) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..base import FileContext, Rule, Violation, terminal_name

#: Names that denote a published commitment base / generator.
BASE_NAMES: Set[str] = {
    "g", "g1", "g2", "z", "z1", "z2", "generator", "generators", "base",
}


class RawPowOnBaseRule(Rule):
    rule_id = "DMW002"
    description = "raw pow() on a commitment base bypasses fastexp tables"
    invariant = ("Theorem 12 cost accounting and the PublicValueCache "
                 "replay counters are exact only when base exponentiations "
                 "use the cached fixed-base tables")
    include_parts = ("crypto", "core", "auctions")
    exempt_names = ("backend.py", "fastexp.py", "modular.py", "groups.py")

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name)
                    and node.func.id == "pow"
                    and len(node.args) == 3):
                continue
            base = terminal_name(node.args[0])
            if base is not None and base.lower() in BASE_NAMES:
                yield self.violation(
                    context, node,
                    "raw pow() on commitment base `%s`; use the fastexp "
                    "fixed-base tables (GroupParameters.exp_z1/exp_z2 or "
                    "fixed_base_table(...).pow)" % base)
