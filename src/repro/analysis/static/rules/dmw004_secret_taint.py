"""DMW004 — secret-tagged values reaching transcript/log/serialization sinks.

Privacy invariant (paper Theorem 13 / analysis in ``repro.analysis.privacy``):
below the collusion threshold ``c``, losing bids must remain
information-theoretically hidden.  The cryptography guarantees this on the
wire — but a single ``print(bid)``, a log record, or a JSON dump of an
agent's private state leaks the value out-of-band and voids the theorem.
The only sanctioned reveals are the outcome of resolution: the minimum bid
``y*``, the winner's identity, and the second price ``y**`` — and those
must go through the explicit :func:`repro.crypto.secret.declassify` gate so
every reveal is auditable.

The rule runs two passes sharing one vocabulary
(:mod:`repro.analysis.static.dataflow`):

* the **intra-function pass** taints parameters and variables whose
  names mark them as secret (``bid``/``bids`` segments, ``secret``,
  ``true_value``/``valuation``), propagates taint through assignments,
  and flags any tainted name appearing in a sink call — ``print``,
  logger methods, ``json.dump(s)``, ``transcript.append/record`` —
  unless wrapped in ``declassify(...)``;
* the **interprocedural pass** flags the leaks the intra pass provably
  cannot see: a secret handed to a helper (possibly in another module)
  whose innocently-named parameter flows — through any number of
  further calls, returns, and attribute stores — into a sink.  Taint
  summaries come from the worklist dataflow over the project call
  graph; ``declassify()`` remains the only sanctioner at every hop.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Set

from ..base import FileContext, ProjectRule, Violation, assigned_names
from ..dataflow import (
    LOGGER_BASES,
    LOGGER_METHODS,
    PUBLIC_EXCEPTIONS,
    SECRET_SEGMENTS,
    SECRET_SUBSTRINGS,
    TRANSCRIPT_METHODS,
    declassified_ids,
    find_interprocedural_leaks,
    is_declassify_call,
    is_secret_name,
    sink_description,
)

__all__ = [
    "LOGGER_BASES",
    "LOGGER_METHODS",
    "PUBLIC_EXCEPTIONS",
    "SECRET_SEGMENTS",
    "SECRET_SUBSTRINGS",
    "SecretTaintRule",
    "TRANSCRIPT_METHODS",
    "is_secret_name",
]

# Backwards-compatible aliases (the helpers moved to ``dataflow`` so the
# whole-program pass shares them).
_is_declassify_call = is_declassify_call
_declassified_ids = declassified_ids
_sink_description = sink_description


class SecretTaintRule(ProjectRule):
    rule_id = "DMW004"
    description = "secret value reaches a transcript/log/serialization sink"
    invariant = ("losing bids stay hidden below the collusion threshold c "
                 "(Theorem 13); the only sanctioned reveals (y*, winner, "
                 "y**) must pass through declassify(...)")
    include_parts = ("crypto", "core", "auctions", "network")

    # -- intra-function pass ----------------------------------------------
    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(context, node)

    def _check_function(self, context: FileContext,
                        function: ast.AST) -> Iterator[Violation]:
        tainted = self._tainted_names(function)
        if not tainted:
            return
        laundered = declassified_ids(function)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            sink = sink_description(node)
            if not sink:
                continue
            leaking = self._tainted_in_args(node, tainted, laundered)
            for name in leaking:
                yield self.violation(
                    context, node,
                    "secret-tagged `%s` reaches %s outside a declassify() "
                    "gate" % (name, sink))

    @staticmethod
    def _tainted_names(function: ast.AST) -> Set[str]:
        """Seed taint from parameter names, then propagate once through
        assignments in source order."""
        tainted: Set[str] = set()
        args = function.args  # type: ignore[attr-defined]
        all_args = (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else []))
        for arg in all_args:
            if is_secret_name(arg.arg):
                tainted.add(arg.arg)
        statements = sorted(
            (n for n in ast.walk(function)
             if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign))),
            key=lambda n: n.lineno)
        for statement in statements:
            value = statement.value
            if value is None:
                continue
            targets: List[str] = []
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    targets.extend(assigned_names(target))
            else:
                targets.extend(assigned_names(statement.target))
            # Direct secret names taint their targets; so does any RHS
            # mentioning an already-tainted name (unless declassified).
            rhs_names = {n.id for n in ast.walk(value)
                         if isinstance(n, ast.Name)}
            rhs_tainted = any(is_secret_name(n) or n in tainted
                              for n in rhs_names)
            if rhs_tainted and not is_declassify_call(value):
                tainted.update(targets)
            for name in targets:
                if is_secret_name(name):
                    tainted.add(name)
        return tainted

    @staticmethod
    def _tainted_in_args(call: ast.Call, tainted: Set[str],
                         laundered: Set[int]) -> List[str]:
        leaking: Dict[str, None] = {}
        argument_nodes = list(call.args) + [kw.value for kw in call.keywords]
        for argument in argument_nodes:
            for node in ast.walk(argument):
                if id(node) in laundered:
                    continue
                if isinstance(node, ast.Name):
                    if node.id in tainted or is_secret_name(node.id):
                        leaking[node.id] = None
                elif isinstance(node, ast.Attribute):
                    if is_secret_name(node.attr):
                        leaking[node.attr] = None
        return list(leaking)

    # -- interprocedural pass ---------------------------------------------
    def check_project(self, project: Any) -> Iterator[Violation]:
        graph = project.callgraph
        summaries = project.taint_summaries
        scoped = []
        for function in project.project.iter_functions():
            context = project.context_for(function.path)
            if context is not None and self.applies_to(context):
                scoped.append(function)
        for leak in find_interprocedural_leaks(project.project, graph,
                                               summaries, scoped):
            context = project.context_for(leak.function.path)
            if context is None:
                continue
            via = " -> ".join(leak.chain)
            yield self.violation(
                context, leak.node,
                "secret-tagged `%s` reaches %s through call chain %s "
                "without a declassify() gate (interprocedural)"
                % (leak.name, leak.sink, via))
