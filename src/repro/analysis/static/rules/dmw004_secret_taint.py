"""DMW004 — secret-tagged values reaching transcript/log/serialization sinks.

Privacy invariant (paper Theorem 13 / analysis in ``repro.analysis.privacy``):
below the collusion threshold ``c``, losing bids must remain
information-theoretically hidden.  The cryptography guarantees this on the
wire — but a single ``print(bid)``, a log record, or a JSON dump of an
agent's private state leaks the value out-of-band and voids the theorem.
The only sanctioned reveals are the outcome of resolution: the minimum bid
``y*``, the winner's identity, and the second price ``y**`` — and those
must go through the explicit :func:`repro.crypto.secret.declassify` gate so
every reveal is auditable.

The rule performs an intra-function taint pass: parameters and variables
whose names mark them as secret (``bid``/``bids`` segments, ``secret``,
``true_value``/``valuation``) are tainted, taint propagates through
assignments, and any tainted name appearing in a sink call —
``print``, logger methods, ``json.dump(s)``, ``transcript.append/record``
— is flagged unless wrapped in ``declassify(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from ..base import (FileContext, Rule, Violation, assigned_names,
                    dotted_name, terminal_name)

#: Underscore-separated segments that mark a name as secret.
SECRET_SEGMENTS = {"bid", "bids", "valuation", "valuations"}
#: Substrings that mark a name as secret wherever they appear.
SECRET_SUBSTRINGS = ("secret", "true_value", "private_value")
#: Names that *look* secret but denote public protocol data.
PUBLIC_EXCEPTIONS = {
    "bid_set", "bid_sets", "bid_range", "num_bids", "max_bid", "bids_allowed",
}

LOGGER_BASES = ("log", "logger", "logging")
LOGGER_METHODS = {"debug", "info", "warning", "error", "critical",
                  "exception", "log"}
TRANSCRIPT_METHODS = {"append", "record", "write", "publish"}


def is_secret_name(name: str) -> bool:
    lowered = name.lower()
    if lowered in PUBLIC_EXCEPTIONS:
        return False
    if any(sub in lowered for sub in SECRET_SUBSTRINGS):
        return True
    return any(segment in SECRET_SEGMENTS
               for segment in lowered.split("_"))


def _is_declassify_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = terminal_name(node.func)
    return name == "declassify"


def _declassified_ids(root: ast.AST) -> Set[int]:
    """ids of all nodes laundered by an enclosing ``declassify(...)``."""
    laundered: Set[int] = set()
    for node in ast.walk(root):
        if _is_declassify_call(node):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for child in ast.walk(arg):
                    laundered.add(id(child))
    return laundered


def _sink_description(call: ast.Call) -> str:
    """Non-empty description when ``call`` is a sink, else empty string."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "print":
            return "print()"
        return ""
    if isinstance(func, ast.Attribute):
        base = terminal_name(func.value)
        dotted = dotted_name(func) or func.attr
        if dotted in ("json.dump", "json.dumps"):
            return "JSON serialization"
        if (func.attr in LOGGER_METHODS and base is not None
                and any(token in base.lower() for token in LOGGER_BASES)):
            return "logger call `%s`" % dotted
        if (func.attr in TRANSCRIPT_METHODS and base is not None
                and "transcript" in base.lower()):
            return "transcript sink `%s`" % dotted
    return ""


class SecretTaintRule(Rule):
    rule_id = "DMW004"
    description = "secret value reaches a transcript/log/serialization sink"
    invariant = ("losing bids stay hidden below the collusion threshold c "
                 "(Theorem 13); the only sanctioned reveals (y*, winner, "
                 "y**) must pass through declassify(...)")
    include_parts = ("crypto", "core", "auctions", "network")

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(context, node)

    def _check_function(self, context: FileContext,
                        function: ast.AST) -> Iterator[Violation]:
        tainted = self._tainted_names(function)
        if not tainted:
            return
        laundered = _declassified_ids(function)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_description(node)
            if not sink:
                continue
            leaking = self._tainted_in_args(node, tainted, laundered)
            for name in leaking:
                yield self.violation(
                    context, node,
                    "secret-tagged `%s` reaches %s outside a declassify() "
                    "gate" % (name, sink))

    @staticmethod
    def _tainted_names(function: ast.AST) -> Set[str]:
        """Seed taint from parameter names, then propagate once through
        assignments in source order."""
        tainted: Set[str] = set()
        args = function.args  # type: ignore[attr-defined]
        all_args = (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else []))
        for arg in all_args:
            if is_secret_name(arg.arg):
                tainted.add(arg.arg)
        statements = sorted(
            (n for n in ast.walk(function)
             if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign))),
            key=lambda n: n.lineno)
        for statement in statements:
            value = statement.value
            if value is None:
                continue
            targets: List[str] = []
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    targets.extend(assigned_names(target))
            else:
                targets.extend(assigned_names(statement.target))
            # Direct secret names taint their targets; so does any RHS
            # mentioning an already-tainted name (unless declassified).
            rhs_names = {n.id for n in ast.walk(value)
                         if isinstance(n, ast.Name)}
            rhs_tainted = any(is_secret_name(n) or n in tainted
                              for n in rhs_names)
            if rhs_tainted and not _is_declassify_call(value):
                tainted.update(targets)
            for name in targets:
                if is_secret_name(name):
                    tainted.add(name)
        return tainted

    @staticmethod
    def _tainted_in_args(call: ast.Call, tainted: Set[str],
                         laundered: Set[int]) -> List[str]:
        leaking: Dict[str, None] = {}
        argument_nodes = list(call.args) + [kw.value for kw in call.keywords]
        for argument in argument_nodes:
            for node in ast.walk(argument):
                if id(node) in laundered:
                    continue
                if isinstance(node, ast.Name):
                    if node.id in tainted or is_secret_name(node.id):
                        leaking[node.id] = None
                elif isinstance(node, ast.Attribute):
                    if is_secret_name(node.attr):
                        leaking[node.attr] = None
        return list(leaking)
