"""DMW006 — floating-point operations inside ``crypto/`` modules.

Exactness invariant (DESIGN.md): the entire cryptographic substrate is
built on exact Python integers.  A single float — a ``/`` true division,
a float literal, ``math.sqrt``/``math.log`` — introduces rounding that is
platform- and optimization-dependent, so transcripts stop being
bit-identical and modular identities (``g^a * g^b == g^(a+b)``) silently
fail for large operands (floats cannot even represent a 56-bit group
element exactly beyond 2^53).

Sanctioned idioms: ``//`` floor division, ``int.bit_length()`` instead of
``math.log2``, ``math.isqrt`` instead of ``math.sqrt``, and exact rational
accounting (numerator/denominator pairs) where ratios are needed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import FileContext, Rule, Violation, dotted_name

#: math-module functions that return floats.
FLOAT_MATH_FUNCS = {
    "math.sqrt", "math.log", "math.log2", "math.log10", "math.exp",
    "math.pow", "math.sin", "math.cos", "math.tan", "math.hypot",
    "math.ceil", "math.floor", "math.fsum", "math.dist",
}


class FloatInCryptoRule(Rule):
    rule_id = "DMW006"
    description = "floating-point operation inside a crypto/ module"
    invariant = ("crypto operates on exact integers only: floats round "
                 "above 2^53 and break both modular identities and "
                 "bit-identical transcripts")
    include_parts = ("crypto",)

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield self.violation(
                    context, node,
                    "true division `/` produces a float; use `//` or exact "
                    "rational arithmetic")
            elif (isinstance(node, ast.Constant)
                    and isinstance(node.value, float)):
                yield self.violation(
                    context, node,
                    "float literal %r in crypto code; use exact integers"
                    % node.value)
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted == "float":
                    yield self.violation(
                        context, node,
                        "float() conversion in crypto code; keep values as "
                        "exact integers")
                elif dotted in FLOAT_MATH_FUNCS:
                    yield self.violation(
                        context, node,
                        "`%s` returns a float; use integer equivalents "
                        "(bit_length, math.isqrt, //)" % dotted)
