"""The dmwlint engine: file discovery, rule execution, reporting.

The engine is a pure function from (paths, rules) to a
:class:`LintReport`; all I/O (reading files, walking directories) happens
here so the rules stay testable on in-memory source strings.

Two passes share one parse per file:

* the **file pass** runs every rule's per-file ``check`` on each
  :class:`FileContext` (optionally across worker processes, ``jobs``);
* the **project pass** hands all contexts at once to each
  :class:`~repro.analysis.static.base.ProjectRule` via a
  :class:`~repro.analysis.static.project.ProjectContext`, which is how
  interprocedural rules (DMW004's cross-module taint, DMW009–DMW011)
  see the whole program.

Suppressions apply uniformly: a ``# dmwlint: disable=...`` comment
silences project-pass findings on its line exactly like file-pass ones,
and every suppression is counted, never silent.
"""

from __future__ import annotations

import ast
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .base import FileContext, ProjectRule, Rule, Violation
from .suppressions import parse_suppressions

#: Directory names never descended into during discovery.
SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache",
             "build", "dist", ".eggs"}


class UsageError(Exception):
    """A caller error (unknown path, bad flag value) — CLI exit status 2."""


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    baselined_count: int = 0
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def sorted_violations(self) -> List[Violation]:
        return sorted(self.violations,
                      key=lambda v: (v.path, v.line, v.col, v.rule_id))

    def render_human(self) -> str:
        lines = [v.format_human() for v in self.sorted_violations()]
        for path, error in self.parse_errors:
            lines.append("%s: PARSE-ERROR %s" % (path, error))
        summary = ("dmwlint: %d file(s) checked, %d violation(s), "
                   "%d suppressed" % (self.files_checked,
                                      len(self.violations),
                                      self.suppressed_count))
        if self.baselined_count:
            summary += ", %d baselined" % self.baselined_count
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "tool": "dmwlint",
            "files_checked": self.files_checked,
            "violation_count": len(self.violations),
            "suppressed_count": self.suppressed_count,
            "baselined_count": self.baselined_count,
            "violations": [v.to_dict() for v in self.sorted_violations()],
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in self.parse_errors
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def merge(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.files_checked += other.files_checked
        self.suppressed_count += other.suppressed_count
        self.baselined_count += other.baselined_count
        self.parse_errors.extend(other.parse_errors)


def _parse_context(path: str,
                   source: str) -> Tuple[Optional[FileContext],
                                         Optional[Tuple[str, str]]]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return None, (path, str(error))
    return FileContext(path=path, source=source, tree=tree), None


def _file_pass(context: FileContext,
               rules: Sequence[Rule]) -> List[Violation]:
    raw: List[Violation] = []
    for rule in rules:
        if rule.applies_to(context):
            raw.extend(rule.check(context))
    return raw


def _project_pass(contexts: List[FileContext],
                  rules: Sequence[Rule]) -> List[Violation]:
    project_rules = [rule for rule in rules
                     if isinstance(rule, ProjectRule)]
    if not project_rules or not contexts:
        return []
    # Imported lazily: project.py pulls in the callgraph/dataflow stack,
    # which plain per-file linting never needs.
    from .project import ProjectContext
    project = ProjectContext(contexts)
    raw: List[Violation] = []
    for rule in project_rules:
        raw.extend(rule.check_project(project))
    return raw


def _apply_suppressions(report: LintReport, raw: List[Violation],
                        contexts: List[FileContext]) -> None:
    suppressions = {context.path: parse_suppressions(context.source)
                    for context in contexts}
    kept: List[Violation] = []
    suppressed = 0
    for violation in raw:
        table = suppressions.get(violation.path)
        if table is not None and table.is_suppressed(violation):
            suppressed += 1
        else:
            kept.append(violation)
    report.violations.extend(kept)
    report.suppressed_count += suppressed


def lint_source(path: str, source: str,
                rules: Sequence[Rule]) -> LintReport:
    """Lint one in-memory source file against ``rules``.

    Runs both passes: project rules see a single-module project, so a
    whole-program rule is exercised the same way on one file as on a
    tree.
    """
    report = LintReport(files_checked=1)
    context, parse_error = _parse_context(path, source)
    if context is None:
        assert parse_error is not None
        report.parse_errors.append(parse_error)
        return report
    raw = _file_pass(context, rules)
    raw.extend(_project_pass([context], rules))
    _apply_suppressions(report, raw, [context])
    return report


def lint_file(path: str, rules: Sequence[Rule]) -> LintReport:
    """Lint one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(path, source, rules)


def _lint_file_worker(args: Tuple[str, Sequence[Rule]]) -> LintReport:
    """Per-file worker for ``jobs > 1``: file pass only.

    The project pass needs every AST in one address space, so it always
    runs in the parent; workers handle the embarrassingly parallel
    per-file rules.  Module-level so it pickles.
    """
    path, rules = args
    report = LintReport(files_checked=1)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        report.parse_errors.append((path, str(error)))
        return report
    context, parse_error = _parse_context(path, source)
    if context is None:
        assert parse_error is not None
        report.parse_errors.append(parse_error)
        return report
    _apply_suppressions(report, _file_pass(context, rules), [context])
    return report


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    A path that is neither a file nor a directory raises
    :class:`UsageError` — a typo'd path must not silently report
    "0 files checked" and exit 0.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in SKIP_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            raise UsageError("dmwlint: path does not exist: %s" % path)
    return sorted(dict.fromkeys(found))


def run_paths(paths: Iterable[str],
              rules: Optional[Sequence[Rule]] = None,
              jobs: int = 1) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with ``rules``.

    ``rules`` defaults to ``DEFAULT_RULES`` — the eleven default-enabled
    domain rules (DMW001–DMW011; the opt-in DMW000 annotation gate is
    excluded).  ``jobs > 1`` fans the per-file pass out over worker
    processes; the whole-program pass always runs in the parent.
    """
    if rules is None:
        from .rules import DEFAULT_RULES
        rules = DEFAULT_RULES
    files = discover_files(paths)
    report = LintReport()
    contexts: List[FileContext] = []
    # Parse every file once in the parent: the project pass shares these
    # ASTs, and with jobs == 1 the file pass does too.
    sources: Dict[str, str] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
        except OSError as error:
            report.parse_errors.append((path, str(error)))
            report.files_checked += 1
            continue
        context, parse_error = _parse_context(path, sources[path])
        report.files_checked += 1
        if context is None:
            assert parse_error is not None
            report.parse_errors.append(parse_error)
        else:
            contexts.append(context)
    if jobs > 1 and len(contexts) > 1:
        worker_args = [(context.path, rules) for context in contexts]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for sub_report in pool.map(_lint_file_worker, worker_args):
                report.violations.extend(sub_report.violations)
                report.suppressed_count += sub_report.suppressed_count
                report.parse_errors.extend(sub_report.parse_errors)
    else:
        for context in contexts:
            _apply_suppressions(report, _file_pass(context, rules),
                                [context])
    _apply_suppressions(report, _project_pass(contexts, rules), contexts)
    return report
