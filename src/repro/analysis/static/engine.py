"""The dmwlint engine: file discovery, rule execution, reporting.

The engine is a pure function from (paths, rules) to a
:class:`LintReport`; all I/O (reading files, walking directories) happens
here so the rules stay testable on in-memory source strings.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .base import FileContext, Rule, Violation
from .suppressions import parse_suppressions

#: Directory names never descended into during discovery.
SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache",
             "build", "dist", ".eggs"}


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def sorted_violations(self) -> List[Violation]:
        return sorted(self.violations,
                      key=lambda v: (v.path, v.line, v.col, v.rule_id))

    def render_human(self) -> str:
        lines = [v.format_human() for v in self.sorted_violations()]
        for path, error in self.parse_errors:
            lines.append("%s: PARSE-ERROR %s" % (path, error))
        summary = ("dmwlint: %d file(s) checked, %d violation(s), "
                   "%d suppressed" % (self.files_checked,
                                      len(self.violations),
                                      self.suppressed_count))
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "tool": "dmwlint",
            "files_checked": self.files_checked,
            "violation_count": len(self.violations),
            "suppressed_count": self.suppressed_count,
            "violations": [v.to_dict() for v in self.sorted_violations()],
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in self.parse_errors
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def merge(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.files_checked += other.files_checked
        self.suppressed_count += other.suppressed_count
        self.parse_errors.extend(other.parse_errors)


def lint_source(path: str, source: str,
                rules: Sequence[Rule]) -> LintReport:
    """Lint one in-memory source file against ``rules``."""
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        report.parse_errors.append((path, str(error)))
        return report
    context = FileContext(path=path, source=source, tree=tree)
    raw: List[Violation] = []
    for rule in rules:
        if rule.applies_to(context):
            raw.extend(rule.check(context))
    suppressions = parse_suppressions(source)
    kept = suppressions.filter(raw)
    report.violations = kept
    report.suppressed_count = len(raw) - len(kept)
    return report


def lint_file(path: str, rules: Sequence[Rule]) -> LintReport:
    """Lint one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(path, source, rules)


def discover_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in SKIP_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
    return sorted(dict.fromkeys(found))


def run_paths(paths: Iterable[str],
              rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with ``rules``.

    ``rules`` defaults to the six domain rules (``DEFAULT_RULES``).
    """
    if rules is None:
        from .rules import DEFAULT_RULES
        rules = DEFAULT_RULES
    report = LintReport()
    for path in discover_files(paths):
        report.merge(lint_file(path, rules))
    return report
