"""Module resolution and call graph for whole-program dmwlint rules.

The per-file rules see one AST at a time; the whole-program rules
(interprocedural DMW004, protocol-flow DMW009, async-safety DMW010,
pool-shared-state DMW011) need to know *who calls whom* across module
boundaries.  This module builds that picture from nothing but the parsed
ASTs the engine already holds:

* :func:`module_name_for_path` maps a file path to its dotted module
  name (``src/repro/core/machine.py`` -> ``repro.core.machine``);
* :class:`Project` indexes every module's functions, classes, and
  imports, and resolves dotted names through ``from x import y`` chains
  — including re-exports through package ``__init__`` files;
* :class:`CallGraph` records one edge per *resolved* call site, with
  method calls resolved through ``self``, explicit ``ClassName.method``
  references, parameter annotations, and local ``x = ClassName(...)``
  construction, walking base classes for inherited methods.

Resolution is deliberately conservative: a call that cannot be resolved
contributes no edge (rules must not invent reachability), and cycles in
the import or call structure are handled by plain breadth-first
reachability.  Everything here is pure and side-effect free so the
engine can build one :class:`Project` per run and share it between
rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Maximum ``from x import y`` hops followed through package re-exports.
_REEXPORT_DEPTH = 10


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str          #: ``repro.core.machine:AgentMachine.send_bidding``
    module: str            #: dotted module name
    name: str              #: bare function name
    class_name: Optional[str]
    node: ast.AST          #: FunctionDef or AsyncFunctionDef
    path: str              #: source file the definition lives in
    is_async: bool

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def param_names(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        ordered = list(args.posonlyargs) + list(args.args)
        names = [arg.arg for arg in ordered]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        names.extend(arg.arg for arg in args.kwonlyargs)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names

    @property
    def label(self) -> str:
        """Human-oriented short name for messages (``module:func``)."""
        return self.qualname


@dataclass
class ClassInfo:
    """One class definition: its methods and raw base-class names."""

    name: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: Tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Everything the resolver needs to know about one module."""

    name: str
    path: str
    tree: ast.Module
    is_package: bool = False
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> dotted target (``from a.b import c as d`` =>
    #: ``d -> a.b.c``; ``import a.b as c`` => ``c -> a.b``;
    #: ``import a.b`` => ``a -> a``).
    imports: Dict[str, str] = field(default_factory=dict)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a file path.

    The segment after a ``src`` component anchors the package root
    (``src/repro/core/machine.py`` -> ``repro.core.machine``); without
    one, the full path relative to the filesystem root is used so names
    stay unique.  ``__init__.py`` maps to its package name.
    """
    normalized = path.replace("\\", "/")
    parts = [p for p in normalized.split("/") if p and p != "."]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<root>"


def _resolve_relative(module: ModuleInfo, level: int,
                      target: Optional[str]) -> str:
    """Absolute dotted name for a ``from ...x import y`` statement."""
    base = module.name.split(".")
    if not module.is_package:
        base = base[:-1]
    hops = level - 1
    if hops:
        base = base[:-hops] if hops < len(base) else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _collect_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the root name ``a``.
                    root = alias.name.split(".")[0]
                    module.imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, node.level, node.module)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = (
                    "%s.%s" % (base, alias.name) if base else alias.name)


def _collect_definitions(module: ModuleInfo) -> None:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualname="%s:%s" % (module.name, node.name),
                module=module.name, name=node.name, class_name=None,
                node=node, path=module.path,
                is_async=isinstance(node, ast.AsyncFunctionDef))
            module.functions[node.name] = info
        elif isinstance(node, ast.ClassDef):
            bases = tuple(b for b in (_dotted(base) for base in node.bases)
                          if b is not None)
            cls = ClassInfo(name=node.name, module=module.name, node=node,
                            bases=bases)
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        qualname="%s:%s.%s" % (module.name, node.name,
                                               child.name),
                        module=module.name, name=child.name,
                        class_name=node.name, node=child, path=module.path,
                        is_async=isinstance(child, ast.AsyncFunctionDef))
                    cls.methods[child.name] = info
                    module.functions["%s.%s" % (node.name, child.name)] = info
            module.classes[node.name] = cls


class Project:
    """An indexed set of modules with cross-module name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}

    @classmethod
    def from_sources(cls, sources: Iterable[Tuple[str, ast.Module]]
                     ) -> "Project":
        """Build a project from ``(path, tree)`` pairs."""
        project = cls()
        for path, tree in sources:
            name = module_name_for_path(path)
            is_package = path.replace("\\", "/").endswith("__init__.py")
            module = ModuleInfo(name=name, path=path, tree=tree,
                                is_package=is_package)
            _collect_imports(module)
            _collect_definitions(module)
            project.modules[name] = module
            for info in module.functions.values():
                project.functions[info.qualname] = info
        return project

    def iter_functions(self) -> Iterator[FunctionInfo]:
        seen: Set[str] = set()
        for module in self.modules.values():
            for info in module.functions.values():
                if info.qualname not in seen:
                    seen.add(info.qualname)
                    yield info

    # -- name resolution ---------------------------------------------------
    def _lookup_in_module(self, module_name: str, remainder: str,
                          depth: int) -> Optional[FunctionInfo]:
        module = self.modules.get(module_name)
        if module is None:
            return None
        if remainder in module.functions:
            return module.functions[remainder]
        head = remainder.split(".")[0]
        rest = remainder[len(head) + 1:]
        if head in module.classes and rest:
            return self.resolve_method(module.classes[head], rest)
        # Re-export chain: the name is imported into this module from
        # elsewhere (the package-``__init__`` idiom).
        if head in module.imports and depth < _REEXPORT_DEPTH:
            target = module.imports[head]
            if rest:
                target = "%s.%s" % (target, rest)
            return self._resolve_dotted(target, depth + 1)
        return None

    def _resolve_dotted(self, dotted: str,
                        depth: int = 0) -> Optional[FunctionInfo]:
        """Resolve an absolute dotted name to a function, if it is one."""
        parts = dotted.split(".")
        # Longest module-name prefix wins.
        for split in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:split])
            remainder = ".".join(parts[split:])
            found = self._lookup_in_module(module_name, remainder, depth)
            if found is not None:
                return found
        return None

    def resolve_class(self, module: ModuleInfo,
                      name: str) -> Optional[ClassInfo]:
        """Resolve a (possibly imported) class name seen in ``module``."""
        head = name.split(".")[0]
        if name in module.classes:
            return module.classes[name]
        if head in module.imports:
            dotted = module.imports[head] + name[len(head):]
            parts = dotted.split(".")
            for split in range(len(parts) - 1, 0, -1):
                target = self.modules.get(".".join(parts[:split]))
                if target is None:
                    continue
                remainder = ".".join(parts[split:])
                if remainder in target.classes:
                    return target.classes[remainder]
                rhead = remainder.split(".")[0]
                if rhead in target.imports:
                    chained = target.imports[rhead] + remainder[len(rhead):]
                    if chained != dotted:
                        fake = ModuleInfo(name=target.name, path=target.path,
                                          tree=target.tree,
                                          imports=target.imports)
                        return self.resolve_class(fake, remainder)
        return None

    def resolve_method(self, cls: ClassInfo, method: str,
                       _seen: Optional[Set[str]] = None
                       ) -> Optional[FunctionInfo]:
        """Find ``method`` on ``cls`` or, by name, on its base classes."""
        if method in cls.methods:
            return cls.methods[method]
        seen = _seen if _seen is not None else set()
        key = "%s:%s" % (cls.module, cls.name)
        if key in seen:
            return None
        seen.add(key)
        module = self.modules.get(cls.module)
        if module is None:
            return None
        for base_name in cls.bases:
            base = self.resolve_class(module, base_name)
            if base is not None:
                found = self.resolve_method(base, method, seen)
                if found is not None:
                    return found
        return None

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call,
                     local_types: Dict[str, ClassInfo]
                     ) -> Optional[FunctionInfo]:
        """Resolve one call site to a project function, or ``None``."""
        module = self.modules.get(caller.module)
        if module is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in module.functions:
                found = module.functions[name]
                # Prefer a plain function over a same-named method key.
                if found.class_name is None:
                    return found
            if name in module.classes:
                return self.resolve_method(module.classes[name], "__init__")
            if name in module.imports:
                target = self._resolve_dotted(module.imports[name])
                if target is not None:
                    return target
                cls = self.resolve_class(module, name)
                if cls is not None:
                    return self.resolve_method(cls, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            method = func.attr
            if isinstance(base, ast.Name):
                if base.id == "self" and caller.class_name is not None:
                    owner = module.classes.get(caller.class_name)
                    if owner is not None:
                        return self.resolve_method(owner, method)
                    return None
                if base.id in local_types:
                    return self.resolve_method(local_types[base.id], method)
                if base.id in module.classes:
                    return self.resolve_method(module.classes[base.id],
                                               method)
                cls = self.resolve_class(module, base.id)
                if cls is not None:
                    return self.resolve_method(cls, method)
            dotted = _dotted(func)
            if dotted is not None:
                head = dotted.split(".")[0]
                if head in module.imports:
                    absolute = module.imports[head] + dotted[len(head):]
                    return self._resolve_dotted(absolute)
            return None
        return None

    def infer_local_types(self, caller: FunctionInfo
                          ) -> Dict[str, ClassInfo]:
        """Map local names to project classes, where statically obvious.

        Two sources: parameter annotations (``machine: AgentMachine``)
        and single-assignment construction (``protocol = DMWProtocol(...)``).
        """
        module = self.modules.get(caller.module)
        if module is None:
            return {}
        types: Dict[str, ClassInfo] = {}
        args = caller.node.args  # type: ignore[attr-defined]
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if arg.annotation is not None:
                annotation = _dotted(arg.annotation)
                if annotation is not None:
                    cls = self.resolve_class(module, annotation)
                    if cls is not None:
                        types[arg.arg] = cls
        for node in ast.walk(caller.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = _dotted(node.value.func)
            if ctor is None:
                continue
            cls = self.resolve_class(module, ctor)
            if cls is not None:
                types[target.id] = cls
        return types


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: caller -> callee at ``node``."""

    caller: str
    callee: str
    node: ast.Call


class CallGraph:
    """Resolved call edges over a :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[str, List[CallEdge]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self._build()

    def _build(self) -> None:
        for caller in self.project.iter_functions():
            local_types = self.project.infer_local_types(caller)
            sites: List[CallEdge] = []
            for node in ast.walk(caller.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.project.resolve_call(caller, node, local_types)
                if callee is None or callee.qualname == caller.qualname:
                    continue
                sites.append(CallEdge(caller=caller.qualname,
                                      callee=callee.qualname, node=node))
                self.callers.setdefault(callee.qualname,
                                        set()).add(caller.qualname)
            self.edges[caller.qualname] = sites

    def callees(self, qualname: str) -> List[CallEdge]:
        return self.edges.get(qualname, [])

    def reachable(self, seeds: Iterable[str]) -> Set[str]:
        """Every function reachable from ``seeds`` (cycle-safe BFS)."""
        seen: Set[str] = set()
        frontier = [s for s in seeds if s in self.edges or
                    s in self.project.functions]
        seen.update(frontier)
        while frontier:
            current = frontier.pop()
            for edge in self.callees(current):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    frontier.append(edge.callee)
        return seen
