"""Rule framework for dmwlint: violations, file context, visitor base.

A :class:`Rule` owns a stable identifier (``DMW00x``), a one-line
description, the *paper invariant* it protects (surfaced in ``--list-rules``
and in ``docs/STATIC_ANALYSIS.md``), and path scoping: ``include_parts``
restricts the rule to files whose path contains one of the given directory
names, ``exempt_names`` exempts specific file names (e.g. the module that
legitimately implements the guarded primitive).

Rules are written against :class:`FileContext`, which bundles the parsed
AST, raw source, and module-relative path, so each rule stays a pure
function from file to violations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Violation:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format_human(self) -> str:
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col + 1,
                                    self.rule_id, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def normalized_path(self) -> str:
        return self.path.replace("\\", "/")

    @property
    def filename(self) -> str:
        return self.normalized_path.rsplit("/", 1)[-1]

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(p for p in self.normalized_path.split("/") if p)

    def line_text(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for all dmwlint rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes
    ----------
    rule_id:
        Stable identifier, e.g. ``"DMW001"``.
    description:
        One-line summary shown in reports.
    invariant:
        The paper-level invariant the rule protects (for the catalog).
    include_parts:
        Directory names the file path must contain for the rule to apply
        (empty tuple = applies everywhere).
    exempt_names:
        File names exempt from the rule (modules that legitimately
        implement the guarded primitive).
    default_enabled:
        Whether the rule runs without an explicit ``--select``.
    """

    rule_id: str = "DMW000"
    description: str = ""
    invariant: str = ""
    include_parts: Tuple[str, ...] = ()
    exempt_names: Tuple[str, ...] = ()
    default_enabled: bool = True

    def applies_to(self, context: FileContext) -> bool:
        if context.filename in self.exempt_names:
            return False
        if not self.include_parts:
            return True
        parts = context.parts
        return any(part in parts for part in self.include_parts)

    def check(self, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, context: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules run once per lint invocation over a
    :class:`~repro.analysis.static.project.ProjectContext` holding every
    parsed file, instead of once per file; they are how interprocedural
    properties (cross-module taint, protocol phase order, call-graph
    reachability) become lintable.  ``check`` defaults to producing
    nothing so a project rule slots into the per-file pass as a no-op;
    a rule may override *both* to combine a local and a global pass
    (DMW004 does).

    ``check_project`` must itself honor path scoping by only reporting
    violations whose file satisfies :meth:`Rule.applies_to` — the engine
    cannot pre-filter, because a project rule may need out-of-scope
    files (helpers a secret flows through) to analyze in-scope ones.
    """

    def check(self, context: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Any) -> Iterator[Violation]:
        """Yield violations computed over the whole project.

        ``project`` is a
        :class:`~repro.analysis.static.project.ProjectContext` (typed
        loosely here to keep ``base`` free of circular imports).
        """
        raise NotImplementedError


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None.

    ``x`` -> ``"x"``; ``self.coefficients`` -> ``"coefficients"``;
    ``a.b.c`` -> ``"c"``; anything else -> ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c``, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield every function/async-function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name of a call target, else None."""
    return dotted_name(node.func)


def assigned_names(target: ast.AST) -> Sequence[str]:
    """Plain names bound by an assignment target (tuples flattened)."""
    if isinstance(target, ast.Name):
        return (target.id,)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(assigned_names(element))
        return tuple(names)
    return ()
