"""Whole-program context shared by project-scoped dmwlint rules.

The engine parses every file once into :class:`FileContext` objects;
:class:`ProjectContext` bundles them and lazily derives the expensive
whole-program structures — the :class:`~.callgraph.Project` index, the
:class:`~.callgraph.CallGraph`, and the interprocedural
:class:`~.dataflow.TaintSummary` table — so several project rules share
one computation per run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import FileContext
from .callgraph import CallGraph, Project
from .dataflow import TaintSummary, compute_summaries


class ProjectContext:
    """Everything a project rule can see: all files, parsed once."""

    def __init__(self, contexts: List[FileContext]) -> None:
        self.contexts = list(contexts)
        self.by_path: Dict[str, FileContext] = {
            context.path: context for context in self.contexts}
        self._project: Optional[Project] = None
        self._graph: Optional[CallGraph] = None
        self._summaries: Optional[Dict[str, TaintSummary]] = None

    @property
    def project(self) -> Project:
        if self._project is None:
            self._project = Project.from_sources(
                (context.path, context.tree) for context in self.contexts)
        return self._project

    @property
    def callgraph(self) -> CallGraph:
        if self._graph is None:
            self._graph = CallGraph(self.project)
        return self._graph

    @property
    def taint_summaries(self) -> Dict[str, TaintSummary]:
        if self._summaries is None:
            self._summaries = compute_summaries(self.project, self.callgraph)
        return self._summaries

    def context_for(self, path: str) -> Optional[FileContext]:
        return self.by_path.get(path)
