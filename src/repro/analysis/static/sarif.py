"""SARIF 2.1.0 export for dmwlint reports.

SARIF (Static Analysis Results Interchange Format, OASIS 2.1.0) is the
lingua franca of code-scanning backends; emitting it lets CI upload
dmwlint findings to GitHub code scanning and lets editors render them
inline.  The exporter covers the required-property shape of the spec:

* ``version``/``$schema`` at the log level;
* one ``run`` with ``tool.driver`` metadata and the full rule catalog
  (``id``, ``shortDescription``, ``help`` carrying the paper invariant);
* one ``result`` per violation with ``ruleId``, ``ruleIndex``,
  ``level``, ``message.text``, a ``physicalLocation`` (URI + 1-based
  ``startLine``/``startColumn``), and the dmwlint baseline fingerprint
  under ``partialFingerprints`` so scanning backends deduplicate
  findings exactly the way ``--baseline`` does;
* parse errors as ``invocations[0].toolExecutionNotifications``.

Only the standard library is used, matching the rest of dmwlint.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .base import Rule
from .baseline import fingerprint_violations
from .engine import LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
#: ``partialFingerprints`` key carrying the dmwlint baseline fingerprint.
FINGERPRINT_KEY = "dmwlintFingerprint/v1"


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    descriptor: Dict[str, Any] = {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
    }
    if rule.invariant:
        descriptor["help"] = {"text": rule.invariant}
    return descriptor


def _uri(path: str) -> str:
    return path.replace("\\", "/")


def to_sarif(report: LintReport, rules: Sequence[Rule]) -> Dict[str, Any]:
    """Render ``report`` as a SARIF 2.1.0 log dictionary."""
    descriptors = [_rule_descriptor(rule) for rule in rules]
    rule_index = {descriptor["id"]: position
                  for position, descriptor in enumerate(descriptors)}
    results: List[Dict[str, Any]] = []
    fingerprinted = fingerprint_violations(report.sorted_violations())
    for violation, fingerprint in fingerprinted:
        result: Dict[str, Any] = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(violation.path)},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                },
            }],
            "partialFingerprints": {FINGERPRINT_KEY: fingerprint},
        }
        if violation.rule_id in rule_index:
            result["ruleIndex"] = rule_index[violation.rule_id]
        results.append(result)
    notifications = [
        {
            "level": "error",
            "message": {"text": "parse error: %s" % error},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(path)},
                },
            }],
        }
        for path, error in report.parse_errors
    ]
    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": "dmwlint",
                "informationUri":
                    "https://example.invalid/dmw-repro/docs/STATIC_ANALYSIS.md",
                "version": "1.0.0",
                "rules": descriptors,
            },
        },
        "results": results,
        "invocations": [{
            "executionSuccessful": not report.parse_errors,
            "toolExecutionNotifications": notifications,
        }],
    }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def render_sarif(report: LintReport, rules: Sequence[Rule]) -> str:
    return json.dumps(to_sarif(report, rules), indent=2, sort_keys=True)
